//! Urban-sensing campaign with *textual* task descriptions: the full ETA²
//! pipeline — pair-word semantics, skip-gram embeddings, dynamic
//! hierarchical clustering, expertise-aware truth analysis and max-quality
//! allocation.
//!
//! The survey-like generator produces questions such as "What is the noise
//! measurement around the construction street?" over eight everyday topics;
//! ETA² must *discover* those topics from the text before it can route
//! tasks to the right users.
//!
//! ```sh
//! cargo run --release -p eta2 --example noise_mapping
//! ```

use eta2::datasets::survey::{survey_topics, SurveyConfig};
use eta2::sim::{train_embedding_for, ApproachKind, SimConfig, Simulation};

fn main() {
    let dataset = SurveyConfig::default().generate(3);
    let config = SimConfig::default();

    println!("== 1. semantic substrate ==");
    let embedding = train_embedding_for(&dataset, &config)
        .expect("embedding trains")
        .expect("survey descriptions need an embedding");
    println!(
        "skip-gram trained: {} words x {} dims",
        embedding.len(),
        embedding.dim()
    );
    for probe in ["noise", "parking", "salary"] {
        let near: Vec<String> = embedding
            .nearest(probe, 3)
            .into_iter()
            .map(|(w, s)| format!("{w} ({s:.2})"))
            .collect();
        println!("  nearest to {probe:<8}: {}", near.join(", "));
    }

    println!();
    println!("== 2. example task descriptions ==");
    for t in dataset.tasks.iter().take(4) {
        println!(
            "  [{}] {}",
            survey_topics()[t.oracle_domain.0 as usize].name,
            t.description.as_deref().unwrap()
        );
    }

    println!();
    println!("== 3. five-day campaign ==");
    let sim = Simulation::new(config);
    let seeds = 5;
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "approach", "day1", "day2", "day3", "day4", "day5"
    );
    for approach in [
        ApproachKind::Eta2,
        ApproachKind::HubsAuthorities,
        ApproachKind::AverageLog,
        ApproachKind::TruthFinder,
        ApproachKind::Baseline,
    ] {
        let mut daily = vec![0.0; 5];
        let mut domains = 0;
        for seed in 0..seeds {
            let m = sim
                .run_with_embedding(&dataset, approach, seed, Some(&embedding))
                .expect("simulation runs");
            for (d, e) in m.daily_error.iter().enumerate() {
                daily[d] += e / seeds as f64;
            }
            domains = m.final_domains;
        }
        print!("{:<22}", approach.name());
        for e in &daily {
            print!(" {e:>8.4}");
        }
        if approach == ApproachKind::Eta2 {
            print!("   ({domains} domains discovered, 8 real)");
        }
        println!();
    }
}
