//! Quickstart: run ETA² against the mean baseline on the paper's synthetic
//! dataset and watch the estimation error fall as expertise is learned.
//!
//! ```sh
//! cargo run --release -p eta2 --example quickstart
//! ```

use eta2::datasets::synthetic::SyntheticConfig;
use eta2::sim::{ApproachKind, SimConfig, Simulation};

fn main() {
    // The synthetic dataset of §6.1.3, scaled down for a fast demo:
    // users with hidden per-domain expertise, tasks with hidden truth.
    let dataset = SyntheticConfig {
        n_users: 50,
        n_tasks: 300,
        n_domains: 5,
        ..SyntheticConfig::default()
    }
    .generate(7);

    let sim = Simulation::new(SimConfig::default());

    println!(
        "ETA2 quickstart — {} users, {} tasks, {} domains",
        50, 300, 5
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "approach", "day1", "day2", "day3", "day4", "day5", "overall"
    );
    for approach in [
        ApproachKind::Eta2,
        ApproachKind::TruthFinder,
        ApproachKind::Baseline,
    ] {
        // Average a few seeds for stable output.
        let seeds = 5;
        let mut daily = vec![0.0; 5];
        let mut overall = 0.0;
        for seed in 0..seeds {
            let m = sim.run(&dataset, approach, seed).expect("simulation runs");
            for (d, e) in m.daily_error.iter().enumerate() {
                daily[d] += e / seeds as f64;
            }
            overall += m.overall_error / seeds as f64;
        }
        print!("{:<22}", approach.name());
        for e in &daily {
            print!(" {e:>8.4}");
        }
        println!(" {overall:>9.4}");
    }
    println!();
    println!("ETA2's error drops after the warm-up day (day 1 is random");
    println!("allocation); the reliability and mean baselines improve less");
    println!("because they ignore that expertise is domain-specific.");
}
