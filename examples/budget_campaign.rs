//! Budgeted crowdsourcing with ETA²-mc: meet a quality requirement at
//! minimum recruiting cost (paper §5.2 / §6.4.3).
//!
//! Compares ETA² (max-quality: spend every available capacity-hour) with
//! ETA²-mc at several per-round budgets `c°`, reporting the estimation
//! error and the total cost of each.
//!
//! ```sh
//! cargo run --release -p eta2 --example budget_campaign
//! ```

use eta2::datasets::synthetic::SyntheticConfig;
use eta2::sim::config::MinCostTuning;
use eta2::sim::{ApproachKind, SimConfig, Simulation};

fn main() {
    let dataset = SyntheticConfig {
        n_users: 60,
        n_tasks: 200,
        n_domains: 4,
        ..SyntheticConfig::default()
    }
    .generate(11);
    let seeds = 5;

    let run = |config: SimConfig, approach: ApproachKind| -> (f64, f64) {
        let sim = Simulation::new(config);
        let mut err = 0.0;
        let mut cost = 0.0;
        for seed in 0..seeds {
            let m = sim.run(&dataset, approach, seed).expect("simulation runs");
            err += m.overall_error / seeds as f64;
            cost += m.total_cost / seeds as f64;
        }
        (err, cost)
    };

    println!("budget campaign — quality requirement: error < 0.5 at 95% confidence");
    println!("{:<28} {:>10} {:>12}", "approach", "error", "total cost");

    let (err, cost) = run(SimConfig::default(), ApproachKind::Eta2);
    println!("{:<28} {err:>10.4} {cost:>12.1}", "ETA2 (max-quality)");

    for round_budget in [25.0, 50.0, 100.0] {
        let config = SimConfig {
            min_cost: MinCostTuning {
                round_budget,
                ..MinCostTuning::default()
            },
            ..SimConfig::default()
        };
        let (err, cost) = run(config, ApproachKind::Eta2MinCost);
        println!(
            "{:<28} {err:>10.4} {cost:>12.1}",
            format!("ETA2-mc (c° = {round_budget})")
        );
    }

    println!();
    println!("ETA2-mc stops recruiting as soon as each task's confidence");
    println!("interval (Eq. 24) is inside the quality band — the error is");
    println!("slightly higher but the recruiting bill is a fraction of");
    println!("max-quality's.");
}
