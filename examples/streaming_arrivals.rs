//! Streaming task arrival with dynamic domain discovery — the §3.3.2 /
//! §4.2 machinery driven directly, without the simulator.
//!
//! Day by day, new textual tasks arrive; the dynamic hierarchical clusterer
//! assigns them to existing expertise domains, founds new domains, or
//! merges domains, and the decayed expertise accumulators follow along.
//!
//! ```sh
//! cargo run --release -p eta2 --example streaming_arrivals
//! ```

use eta2::cluster::{DomainEvent, DynamicClusterer};
use eta2::core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
use eta2::core::truth::dynamic::DynamicExpertise;
use eta2::core::truth::mle::MleConfig;
use eta2::embed::corpus::TopicCorpus;
use eta2::embed::pairword::pairword_distance;
use eta2::embed::{PairWordExtractor, SkipGramConfig, SkipGramTrainer};
use rand::{Rng, SeedableRng};

/// Three days of arriving task descriptions: day 1 establishes two topics,
/// day 2 adds a task to each, day 3 introduces a brand-new topic.
const DAYS: [&[&str]; 3] = [
    &[
        "What is the noise measurement around the municipal building?",
        "What is the decibel volume near the construction street?",
        "How many parking spots are at the garage entrance?",
        "How many parking spaces are at the deck gate?",
    ],
    &[
        "What is the ambient sound volume near the street?",
        "How many cars are at the parking lot?",
    ],
    &[
        "What is the average temperature of the forecast near the coast?",
        "What is the rainfall precipitation around the storm?",
    ],
];

fn main() {
    // 1. Semantic substrate: skip-gram over the bundled topic corpus.
    let sentences = TopicCorpus::builtin().generate(300, 1);
    let embedding = SkipGramTrainer::new(SkipGramConfig {
        dim: 24,
        epochs: 3,
        ..SkipGramConfig::default()
    })
    .train_sentences(&sentences)
    .expect("corpus yields a vocabulary");
    let extractor = PairWordExtractor::new();
    let vectorize = |text: &str| -> Vec<f32> {
        extractor
            .extract(text)
            .semantic_vector(&embedding)
            .unwrap_or_else(|| vec![0.0; 2 * embedding.dim()])
    };

    // 2. Dynamic clustering + decayed expertise.
    let mut clusterer =
        DynamicClusterer::new(|a: &Vec<f32>, b: &Vec<f32>| pairword_distance(a, b), 0.6);
    let n_users = 6;
    let mut expertise = DynamicExpertise::new(n_users, 0.5, MleConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut next_task = 0u32;

    for (day, descriptions) in DAYS.iter().enumerate() {
        println!("== day {} ==", day + 1);
        let points: Vec<Vec<f32>> = descriptions.iter().map(|d| vectorize(d)).collect();
        let update = if day == 0 {
            clusterer.warm_up(points)
        } else {
            clusterer.add(points)
        };
        for event in &update.events {
            match event {
                DomainEvent::Created { domain } => println!("  new domain #{domain} founded"),
                DomainEvent::Merged { kept, absorbed } => {
                    expertise.merge_domains(DomainId(*kept), DomainId(*absorbed));
                    println!("  domain #{absorbed} merged into #{kept}");
                }
            }
        }

        // Simulate everyone answering every task: users 0-2 are experts in
        // even domains, users 3-5 in odd domains.
        let mut tasks = Vec::new();
        let mut obs = ObservationSet::new();
        for (k, (&desc, &domain)) in descriptions.iter().zip(&update.assignments).enumerate() {
            let task = Task::new(TaskId(next_task), DomainId(domain), 1.0, 1.0);
            next_task += 1;
            let truth = 50.0 + 10.0 * k as f64;
            for i in 0..n_users {
                let expert = (i < 3) == (domain % 2 == 0);
                let std = if expert { 0.5 } else { 4.0 };
                let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                obs.insert(UserId(i as u32), task.id, truth + z * std);
            }
            println!("  task {:>2} -> domain #{domain}: {desc}", task.id.0);
            tasks.push(task);
        }
        let out = expertise.ingest_batch(&tasks, &obs);
        println!(
            "  truth analysis converged in {} iterations over {} tasks",
            out.iterations,
            out.truths.len()
        );
    }

    println!();
    println!("== learned expertise (per live domain) ==");
    for &(domain, _) in clusterer.domains() {
        let d = DomainId(domain);
        let row: Vec<String> = (0..n_users)
            .map(|i| format!("{:.2}", expertise.expertise(UserId(i as u32), d)))
            .collect();
        println!("  domain #{domain}: [{}]", row.join(", "));
    }
}
