//! Embedding ETA² in an application with the online [`Eta2Server`] API —
//! the paper's Figure-1 loop without the evaluation simulator.
//!
//! A fictional city-sensing app registers textual tasks as they are
//! created, asks ETA² whom to query, pushes the returned reports back, and
//! reads truths and per-domain expertise.
//!
//! ```sh
//! cargo run --release -p eta2 --example embedded_server
//! ```

use eta2::core::model::{ObservationSet, UserId, UserProfile};
use eta2::embed::corpus::TopicCorpus;
use eta2::embed::{SkipGramConfig, SkipGramTrainer};
use eta2::server::{ServerBuilder, TaskInput};
use rand::{Rng, SeedableRng};

fn main() {
    // One-time setup: word embeddings for the domain-discovery pipeline.
    let corpus = TopicCorpus::builtin().generate(300, 1);
    let embedding = SkipGramTrainer::new(SkipGramConfig {
        dim: 24,
        epochs: 3,
        ..SkipGramConfig::default()
    })
    .train_sentences(&corpus)
    .expect("corpus yields vocabulary");

    let n_users = 12;
    let mut server = ServerBuilder::new(n_users).embedding(embedding).build();
    let users: Vec<UserProfile> = (0..n_users as u32)
        .map(|i| UserProfile::new(UserId(i), 6.0))
        .collect();

    // Ground truth for the demo: users 0-5 are noise experts, 6-11 parking
    // experts.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let day_batches: [&[(&str, f64)]; 3] = [
        &[
            (
                "What is the noise level around the municipal building?",
                61.0,
            ),
            (
                "What is the decibel measurement near the construction street?",
                84.0,
            ),
            ("How many parking spots are at the garage entrance?", 42.0),
            ("How many parking spaces are at the deck gate?", 17.0),
        ],
        &[
            ("What is the ambient sound volume near the street?", 55.0),
            ("How many cars are at the parking lot?", 130.0),
        ],
        &[
            ("What is the loud siren volume around the building?", 92.0),
            ("How many vehicle stalls are at the curb?", 8.0),
        ],
    ];

    for (day, batch) in day_batches.iter().enumerate() {
        println!("== day {} ==", day + 1);
        let inputs: Vec<TaskInput> = batch
            .iter()
            .map(|(desc, _)| TaskInput::described(desc, 1.0, 1.0))
            .collect();
        let ids = server.register_tasks(inputs).expect("described mode");

        let allocation = server.allocate_max_quality(&ids, &users);
        let mut reports = ObservationSet::new();
        for (&id, &(desc, truth)) in ids.iter().zip(batch.iter()) {
            let domain = server.domain_of(id).expect("registered");
            for &u in allocation.users_for(id) {
                // Noise domain tasks mention sound words; our fake users'
                // skill depends on the *true* topic, which we key off the
                // description for the demo.
                let is_noise = desc.contains("noise")
                    || desc.contains("decibel")
                    || desc.contains("sound")
                    || desc.contains("siren");
                let expert = (u.0 < 6) == is_noise;
                let std = if expert { 1.0 } else { 12.0 };
                let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                reports.insert(u, id, truth + z * std);
            }
            println!(
                "  task {:>2} (domain #{}) <- {} reporters",
                id.0,
                domain.0,
                allocation.users_for(id).len()
            );
        }

        let outcome = server.ingest(&reports).expect("finite reports");
        for &id in &ids {
            let est = server.truth(id).expect("analysed");
            let truth = batch[ids.iter().position(|&x| x == id).unwrap()].1;
            println!(
                "  task {:>2}: estimated {:>7.2} (true {truth:>6.1})",
                id.0, est.mu
            );
        }
        println!(
            "  truth analysis: {} iterations, {} domains live",
            outcome.iterations,
            server.domain_count()
        );
    }

    println!();
    println!("== final expertise snapshot ==");
    let ex = server.expertise();
    let domains: Vec<_> = ex.domains().collect();
    for d in domains {
        let row: Vec<String> = (0..n_users as u32)
            .map(|i| format!("{:.1}", ex.get(UserId(i), d)))
            .collect();
        println!("  domain #{}: [{}]", d.0, row.join(", "));
    }
    println!("(users 0-5 were built as noise experts, 6-11 as parking experts)");
}
