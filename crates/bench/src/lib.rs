//! Experiment harness for the ETA² reproduction.
//!
//! Every table and figure of the paper's evaluation (§6) has a
//! corresponding experiment function in [`experiments`] and a thin binary
//! in `src/bin/`; `run_all` executes the full battery. Results are printed
//! as tables mirroring the paper's rows/series and also written as JSON to
//! `target/experiments/` so EXPERIMENTS.md numbers are regenerable.
//!
//! Knobs (environment variables):
//!
//! * `ETA2_SEEDS` — seeds averaged per experiment point (default 10; the
//!   paper uses 100).
//! * `ETA2_FAST` — set to `1`/`true` to shrink datasets for a smoke run
//!   (`0`, `false`, `off` and empty all mean off).
//! * `ETA2_TRACE` — write structured JSONL trace events to this file.
//! * `ETA2_QUIET` / `ETA2_VERBOSE` — adjust stdout chatter (binaries only).
//!
//! Span-timing histograms (`mle.solve`, `alloc.greedy`, `sim.run`, …) are
//! recorded during every experiment and attached to each persisted JSON
//! result under a `"span_timing"` key.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod loadgen;

pub use harness::Settings;
