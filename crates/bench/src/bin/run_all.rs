//! Runs the full experiment battery — every table and figure of the
//! paper's evaluation plus the DESIGN.md ablations — and writes all JSON
//! results to `target/experiments/`.
//!
//! Observability (environment variables, since this binary takes no
//! flags): `ETA2_TRACE=FILE` writes structured JSONL events, `ETA2_QUIET`
//! suppresses stdout chatter, `ETA2_VERBOSE` adds per-step detail.

use eta2_bench::{experiments, Settings};

fn main() {
    if eta2_obs::env_flag("ETA2_QUIET") {
        eta2_obs::set_verbosity(eta2_obs::Verbosity::Quiet);
    } else if eta2_obs::env_flag("ETA2_VERBOSE") {
        eta2_obs::set_verbosity(eta2_obs::Verbosity::Verbose);
    }
    if let Some(path) = eta2_obs::env_path("ETA2_TRACE") {
        if let Err(e) = eta2_obs::init_file(&path) {
            eprintln!("error: cannot open trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    let settings = Settings::from_env();
    eta2_obs::progress!(
        "running full ETA2 experiment battery: seeds = {}, fast = {}",
        settings.seeds,
        settings.fast
    );
    let battery: [(&str, fn(&Settings) -> serde_json::Value); 12] = [
        ("fig2", experiments::fig2),
        ("table1", experiments::table1),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9_10", experiments::fig9_10),
        ("fig11", experiments::fig11),
        ("fig12", experiments::fig12),
        ("table2", experiments::table2),
        ("ablations", experiments::ablations),
    ];
    for (id, f) in battery {
        let start = std::time::Instant::now();
        let value = f(&settings);
        settings.write_json(id, &value);
        eta2_obs::progress!("[{id} took {:.1?}]", start.elapsed());
    }
    eta2_obs::flush();
    eta2_obs::progress!();
    eta2_obs::progress!("battery complete — results in target/experiments/");
}
