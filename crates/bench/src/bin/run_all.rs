//! Runs the full experiment battery — every table and figure of the
//! paper's evaluation plus the DESIGN.md ablations — and writes all JSON
//! results to `target/experiments/`.

use eta2_bench::{experiments, Settings};

fn main() {
    let settings = Settings::from_env();
    println!(
        "running full ETA2 experiment battery: seeds = {}, fast = {}",
        settings.seeds, settings.fast
    );
    let battery: [(&str, fn(&Settings) -> serde_json::Value); 12] = [
        ("fig2", experiments::fig2),
        ("table1", experiments::table1),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9_10", experiments::fig9_10),
        ("fig11", experiments::fig11),
        ("fig12", experiments::fig12),
        ("table2", experiments::table2),
        ("ablations", experiments::ablations),
    ];
    for (id, f) in battery {
        let start = std::time::Instant::now();
        let value = f(&settings);
        settings.write_json(id, &value);
        println!("[{id} took {:.1?}]", start.elapsed());
    }
    println!();
    println!("battery complete — results in target/experiments/");
}
