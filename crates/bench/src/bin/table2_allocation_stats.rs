//! Experiment binary: regenerates the paper artifact via
//! `eta2_bench::experiments::table2`. Seeds via `ETA2_SEEDS` (default 10).

fn main() {
    let settings = eta2_bench::Settings::from_env();
    let value = eta2_bench::experiments::table2(&settings);
    settings.write_json("table2", &value);
}
