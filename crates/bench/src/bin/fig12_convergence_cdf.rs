//! Experiment binary: regenerates the paper artifact via
//! `eta2_bench::experiments::fig12`. Seeds via `ETA2_SEEDS` (default 10).

fn main() {
    let settings = eta2_bench::Settings::from_env();
    let value = eta2_bench::experiments::fig12(&settings);
    settings.write_json("fig12", &value);
}
