//! `perf_suite` — the hot-path performance baseline.
//!
//! Times the optimized implementations against their pre-optimization
//! references on fixed synthetic workloads and persists everything as one
//! JSON document (default `BENCH_perf.json` in the working directory):
//!
//! * **MLE** — the frozen reference solver
//!   (`eta2_core::truth::reference`, per-task leave-one-out rescans) vs the
//!   incremental-sufficient-statistics solver, sequential and parallel.
//! * **Skip-gram** — the frozen scalar pair kernel
//!   (`train_encoded_reference`) vs the vectorized sequential trainer vs
//!   the opt-in Hogwild trainer.
//! * **Allocation** — the exhaustive-rescan greedy (`allocate_scan`) vs the
//!   lazy-heap greedy, plus the min-cost allocator end to end.
//! * **Incremental** — dirty-set flushes (the serving engine's default) vs
//!   full-recompute flushes at 1 % / 10 % / 100 % dirty-domain fractions;
//!   the recorded speedups back CI's >= 5x gate at 1 % dirty.
//! * **Observability** — serving-engine ingest throughput with obs fully
//!   disabled vs metrics-only vs full causal tracing; the recorded
//!   overhead fractions back CI's <= 10 % full-tracing gate.
//! * **Durability** — the same ingest workload volatile vs WAL-backed
//!   under each fsync posture (off, per-batch group commit, per-record);
//!   the recorded overhead fractions back CI's group-commit ingest gate.
//!
//! Each comparison also re-checks the parity contracts (sequential MLE
//! within `PARITY_REL_TOL` of the frozen reference, parallel MLE
//! bit-identical to sequential, heap allocation bit-identical to scan;
//! Hogwild vectors finite) so the numbers can never silently describe
//! diverging implementations. Alongside the relative speedups each
//! kernel section records absolute throughput — observations/sec for
//! the MLE, training pairs/sec for the skip-gram, assignment picks/sec
//! for allocation — which is what CI's perf-smoke regression gate
//! compares run-over-run (as ratios vs the frozen references, so the
//! gate transfers across machines).
//!
//! ```sh
//! cargo run --release -p eta2-bench --bin perf_suite            # full
//! cargo run --release -p eta2-bench --bin perf_suite -- --quick # CI-sized
//! # flags: --quick  --threads N  --repeat N  --out PATH
//! ```

use eta2_core::allocation::{MaxQualityAllocator, MinCostAllocator, MinCostConfig};
use eta2_core::model::{
    DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId, UserProfile,
};
use eta2_core::truth::mle::{ExpertiseAwareMle, MleConfig, PARITY_REL_TOL};
use eta2_core::truth::reference;
use eta2_embed::corpus::TopicCorpus;
use eta2_embed::{SkipGramConfig, SkipGramTrainer, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::time::Instant;

struct Options {
    quick: bool,
    threads: usize,
    repeat: usize,
    out: String,
}

fn parse_options() -> Options {
    let mut opts = Options {
        quick: false,
        threads: 0,
        repeat: 0,
        out: "BENCH_perf.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                opts.threads = value_of("--threads").parse().expect("--threads: integer")
            }
            "--repeat" => opts.repeat = value_of("--repeat").parse().expect("--repeat: integer"),
            "--out" => opts.out = value_of("--out"),
            other => panic!("unknown flag {other:?} (try --quick/--threads/--repeat/--out)"),
        }
    }
    if opts.repeat == 0 {
        opts.repeat = if opts.quick { 2 } else { 3 };
    }
    opts
}

/// Runs `f` `repeat` times; reports best and mean wall seconds.
fn time_runs<T>(repeat: usize, mut f: impl FnMut() -> T) -> (Value, T) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut last = None;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        best = best.min(secs);
        total += secs;
        last = Some(out);
    }
    (
        json!({
            "secs_best": best,
            "secs_mean": total / repeat as f64,
            "runs": repeat,
        }),
        last.expect("repeat >= 1"),
    )
}

fn speedup(before: &Value, after: &Value) -> f64 {
    before["secs_best"].as_f64().unwrap() / after["secs_best"].as_f64().unwrap()
}

/// Random multi-domain MLE workload: ~80 % observation density with a
/// heavy-tailed mix of good and bad reporters.
fn mle_world(
    n_tasks: u32,
    n_users: usize,
    n_domains: u32,
    seed: u64,
) -> (Vec<Task>, ObservationSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|j| Task::new(TaskId(j), DomainId(j % n_domains), 1.0, 1.0))
        .collect();
    let skills: Vec<f64> = (0..n_users).map(|_| rng.gen_range(0.2..3.0)).collect();
    let mut obs = ObservationSet::new();
    for t in &tasks {
        let truth = rng.gen_range(-50.0..50.0);
        for (i, &skill) in skills.iter().enumerate() {
            if !rng.gen_bool(0.8) {
                continue;
            }
            let noise: f64 = rng.gen_range(-1.0..1.0);
            obs.insert(UserId(i as u32), t.id, truth + 3.0 * noise / skill);
        }
    }
    (tasks, obs)
}

fn bench_mle(opts: &Options, threads: usize) -> Value {
    let (n_tasks, n_users, n_domains) = if opts.quick {
        (120u32, 60usize, 3u32)
    } else {
        (500, 200, 4)
    };
    let (tasks, obs) = mle_world(n_tasks, n_users, n_domains, 42);

    let cfg_seq = MleConfig::default();
    let cfg_par = MleConfig {
        threads,
        ..MleConfig::default()
    };
    let (t_ref, r_ref) = time_runs(opts.repeat, || {
        reference::estimate_with_initial(&cfg_seq, &tasks, &obs, ExpertiseMatrix::new(n_users))
    });
    let (t_seq, r_seq) = time_runs(opts.repeat, || {
        ExpertiseAwareMle::new(cfg_seq).estimate(&tasks, &obs, n_users)
    });
    let (t_par, r_par) = time_runs(opts.repeat, || {
        ExpertiseAwareMle::new(cfg_par).estimate(&tasks, &obs, n_users)
    });
    if let Err(why) = eta2_core::truth::results_match(&r_ref, &r_seq, PARITY_REL_TOL) {
        panic!("optimized MLE diverged from the reference beyond {PARITY_REL_TOL}: {why}");
    }
    assert_eq!(r_seq, r_par, "parallel MLE diverged from sequential");
    eprintln!(
        "mle {n_tasks}x{n_users}x{n_domains}: reference {:.3}s, sequential {:.3}s, parallel({threads}) {:.3}s",
        t_ref["secs_best"].as_f64().unwrap(),
        t_seq["secs_best"].as_f64().unwrap(),
        t_par["secs_best"].as_f64().unwrap(),
    );
    let obs_per_sec = |t: &Value| obs.len() as f64 / t["secs_best"].as_f64().unwrap();
    json!({
        "n_tasks": n_tasks,
        "n_users": n_users,
        "n_domains": n_domains,
        "n_observations": obs.len(),
        "threads": threads,
        "iterations": r_seq.iterations,
        "reference": t_ref,
        "sequential": t_seq,
        "parallel": t_par,
        "obs_per_sec_reference": obs_per_sec(&t_ref),
        "obs_per_sec_sequential": obs_per_sec(&t_seq),
        "obs_per_sec_parallel": obs_per_sec(&t_par),
        "speedup_sequential_vs_reference": speedup(&t_ref, &t_seq),
        "speedup_parallel_vs_sequential": speedup(&t_seq, &t_par),
        // The vectorized solver reassociates the accumulations, so parity
        // vs the frozen reference is within this relative tolerance (the
        // same bound the proptest parity suite and eta2-check enforce);
        // parallel vs sequential is still bit-exact.
        "parity_rel_tol_vs_reference": PARITY_REL_TOL,
        "parallel_bit_identical": true,
    })
}

fn bench_skipgram(opts: &Options, threads: usize) -> Value {
    let (docs, dim, epochs) = if opts.quick {
        (120usize, 16usize, 2usize)
    } else {
        (400, 24, 4)
    };
    let sentences = TopicCorpus::builtin().generate(docs, 9);
    let base = SkipGramConfig {
        dim,
        epochs,
        ..SkipGramConfig::default()
    };
    let vocab = Vocabulary::build(&sentences, base.min_count).expect("vocabulary");
    let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode(s)).collect();

    // The sequential trainer is deterministic, so one metrics-on pass
    // reads the exact `sg.pairs` count every timed sequential run below
    // performs; the timed passes then run metrics-off so the counter
    // write is not charged to the kernels.
    let before = eta2_obs::registry::global().snapshot();
    let _ = SkipGramTrainer::new(base).train_encoded(&vocab, &encoded);
    let after = eta2_obs::registry::global().snapshot();
    let pairs = after.counters.get("sg.pairs").copied().unwrap_or(0)
        - before.counters.get("sg.pairs").copied().unwrap_or(0);
    assert!(pairs > 0, "sg.pairs counted no training pairs");

    eta2_obs::set_metrics(false);
    let (t_ref, _) = time_runs(opts.repeat, || {
        SkipGramTrainer::new(base).train_encoded_reference(&vocab, &encoded)
    });
    let (t_seq, _) = time_runs(opts.repeat, || {
        SkipGramTrainer::new(base).train_encoded(&vocab, &encoded)
    });
    let par_cfg = SkipGramConfig { threads, ..base };
    let (t_par, emb) = time_runs(opts.repeat, || {
        SkipGramTrainer::new(par_cfg).train_encoded(&vocab, &encoded)
    });
    eta2_obs::set_metrics(true);
    for w in emb.words() {
        assert!(
            emb.vector(w).unwrap().iter().all(|v| v.is_finite()),
            "hogwild produced a non-finite vector for {w:?}"
        );
    }
    let pairs_per_sec = |t: &Value| pairs as f64 / t["secs_best"].as_f64().unwrap();
    eprintln!(
        "skipgram {docs} docs, dim {dim}, {epochs} epochs, {pairs} pairs: \
         reference {:.3}s, sequential {:.3}s, hogwild({threads}) {:.3}s",
        t_ref["secs_best"].as_f64().unwrap(),
        t_seq["secs_best"].as_f64().unwrap(),
        t_par["secs_best"].as_f64().unwrap(),
    );
    json!({
        "documents": docs,
        "dim": dim,
        "epochs": epochs,
        "threads": threads,
        // Exact for reference/sequential (identical RNG stream); the
        // Hogwild shards draw their own windows, so its rate is computed
        // against the same count and is approximate.
        "training_pairs": pairs,
        "reference": t_ref,
        "sequential": t_seq,
        "parallel": t_par,
        "pairs_per_sec_reference": pairs_per_sec(&t_ref),
        "pairs_per_sec_sequential": pairs_per_sec(&t_seq),
        "pairs_per_sec_parallel": pairs_per_sec(&t_par),
        "speedup_sequential_vs_reference": speedup(&t_ref, &t_seq),
        "speedup_parallel_vs_sequential": speedup(&t_seq, &t_par),
    })
}

/// Random allocation instance: multi-domain tasks, mixed expertise.
fn alloc_world(
    n_tasks: u32,
    n_users: usize,
    seed: u64,
) -> (Vec<Task>, Vec<UserProfile>, ExpertiseMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|j| {
            Task::new(
                TaskId(j),
                DomainId(j % 4),
                rng.gen_range(0.2..4.0),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    let users: Vec<UserProfile> = (0..n_users)
        .map(|i| UserProfile::new(UserId(i as u32), rng.gen_range(2.0..12.0)))
        .collect();
    let mut ex = ExpertiseMatrix::new(n_users);
    for d in 0..4 {
        for i in 0..n_users {
            ex.set(UserId(i as u32), DomainId(d), rng.gen_range(0.05..3.0));
        }
    }
    (tasks, users, ex)
}

fn bench_allocation(opts: &Options) -> Value {
    let sizes: &[(u32, usize)] = if opts.quick {
        &[(60, 30), (150, 60)]
    } else {
        &[(100, 50), (300, 100), (600, 200)]
    };
    let alloc = MaxQualityAllocator::default();
    let mut max_quality = Vec::new();
    for &(m, n) in sizes {
        let (tasks, users, ex) = alloc_world(m, n, 7);
        let (t_scan, a_scan) = time_runs(opts.repeat, || alloc.allocate_scan(&tasks, &users, &ex));
        let (t_heap, a_heap) = time_runs(opts.repeat, || alloc.allocate(&tasks, &users, &ex));
        assert_eq!(a_scan, a_heap, "heap greedy diverged from scan greedy");
        let picks = a_heap.assignment_count();
        let picks_per_sec = |t: &Value| picks as f64 / t["secs_best"].as_f64().unwrap();
        eprintln!(
            "max_quality {m}x{n} ({picks} picks): scan {:.4}s, heap {:.4}s",
            t_scan["secs_best"].as_f64().unwrap(),
            t_heap["secs_best"].as_f64().unwrap(),
        );
        max_quality.push(json!({
            "n_tasks": m,
            "n_users": n,
            "picks": picks,
            "scan": t_scan,
            "heap": t_heap,
            "picks_per_sec_scan": picks_per_sec(&t_scan),
            "picks_per_sec_heap": picks_per_sec(&t_heap),
            "speedup_heap_vs_scan": speedup(&t_scan, &t_heap),
        }));
    }

    let (m, n) = if opts.quick {
        (25u32, 20usize)
    } else {
        (40, 30)
    };
    let (tasks, users, ex) = alloc_world(m, n, 11);
    let mc = MinCostAllocator::new(MinCostConfig::default());
    let (t_mc, a_mc) = time_runs(opts.repeat, || {
        let mut rng = StdRng::seed_from_u64(3);
        let mut source = |_u: UserId, t: &Task| 10.0 + t.id.0 as f64 + rng.gen_range(-0.5..0.5);
        mc.allocate(&tasks, &users, &ex, &mut source)
    });
    let mc_picks = a_mc.allocation.assignment_count();
    eprintln!(
        "min_cost {m}x{n} ({mc_picks} picks): {:.4}s",
        t_mc["secs_best"].as_f64().unwrap()
    );
    json!({
        "max_quality": max_quality,
        "min_cost": {
            "n_tasks": m,
            "n_users": n,
            "picks": mc_picks,
            "timing": t_mc,
            "picks_per_sec": mc_picks as f64 / t_mc["secs_best"].as_f64().unwrap(),
        },
    })
}

/// A fixed serving-engine ingest workload, timed under three
/// observability postures: everything off, metrics-only (counters /
/// gauges / per-shard flush histograms), and full tracing (metrics plus
/// causal trace events into a JSONL file sink). The acceptance target —
/// full tracing costs at most 10 % of ingest throughput — is asserted by
/// CI's perf-smoke gate over the fractions recorded here.
fn bench_observability(opts: &Options) -> Value {
    use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};

    let rounds: u64 = if opts.quick { 500 } else { 2_000 };
    // One root trace span covers one submitted batch; 32 reports/submit is
    // the batched-ingest posture the serving API is designed around, and
    // the granularity the overhead target is defined against.
    let reports_per_submit = 32u64;
    let (n_tasks, n_domains) = (128u32, 16u32);
    // The runs are milliseconds each; a deeper best-of keeps the overhead
    // fractions (and CI's 10 % gate on them) out of scheduler noise.
    let repeat = opts.repeat.max(5);

    // splitmix64 finalizer, as in serve-bench: deterministic workload.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    let run_ingest = || {
        let mut cfg = ServeConfig::default();
        cfg.n_users = 64;
        cfg.n_shards = 4;
        cfg.batch_capacity = 128;
        cfg.threads = 1;
        let engine = ServeEngine::new(cfg);
        let ids = engine
            .register_tasks(
                &(0..n_tasks)
                    .map(|j| TaskSpec::new(DomainId(j % n_domains), 1.0, 1.0))
                    .collect::<Vec<_>>(),
            )
            .expect("register tasks");
        let mut accepted = 0usize;
        for r in 0..rounds {
            let mut obs = ObservationSet::new();
            for k in 0..reports_per_submit {
                let h = mix(r ^ mix(k));
                let task = ids[(h % ids.len() as u64) as usize];
                let user = UserId((mix(h) % 64) as u32);
                obs.insert(user, task, 10.0 + (h % 100) as f64 * 0.01);
            }
            accepted += engine.submit(&obs).accepted;
        }
        engine.tick();
        accepted
    };

    let trace_path =
        std::env::temp_dir().join(format!("eta2-perf-trace-{}.jsonl", std::process::id()));
    eta2_obs::trace::seed_ids(42);

    // Untimed warm-up, then the three postures interleaved inside each
    // repeat with best-of taken per posture: machine load drifts on the
    // scale of whole posture blocks (especially on shared CI runners), so
    // measuring the postures in separate blocks would charge whichever one
    // ran during a spike. Interleaving exposes all three to the same
    // noise, which is what makes the overhead *fractions* gateable.
    eta2_obs::set_metrics(false);
    let mut accepted = run_ingest();
    let timed = |accepted: &mut usize| {
        let t0 = Instant::now();
        *accepted = run_ingest();
        t0.elapsed().as_secs_f64()
    };
    let mut best = [f64::INFINITY; 3];
    let mut sum = [0.0f64; 3];
    for _ in 0..repeat {
        eta2_obs::set_metrics(false);
        let s = timed(&mut accepted);
        best[0] = best[0].min(s);
        sum[0] += s;
        eta2_obs::set_metrics(true);
        let s = timed(&mut accepted);
        best[1] = best[1].min(s);
        sum[1] += s;
        if let Err(e) = eta2_obs::init_file(&trace_path) {
            eprintln!(
                "error: trace sink i/o failed for {}: {e}",
                trace_path.display()
            );
            std::process::exit(2);
        }
        let s = timed(&mut accepted);
        best[2] = best[2].min(s);
        sum[2] += s;
        eta2_obs::disable();
    }
    let _ = std::fs::remove_file(&trace_path);
    eta2_obs::set_metrics(true); // main()'s posture for span attachment
    let posture = |i: usize| {
        json!({
            "secs_best": best[i],
            "secs_mean": sum[i] / repeat as f64,
            "runs": repeat,
        })
    };
    let (t_off, t_metrics, t_tracing) = (posture(0), posture(1), posture(2));

    let base = t_off["secs_best"].as_f64().unwrap();
    let overhead = |t: &Value| (t["secs_best"].as_f64().unwrap() - base) / base;
    let throughput = |t: &Value| accepted as f64 / t["secs_best"].as_f64().unwrap();
    let (o_metrics, o_tracing) = (overhead(&t_metrics), overhead(&t_tracing));
    eprintln!(
        "observability {accepted} reports: off {:.3}s, metrics {:.3}s ({:+.1}%), tracing {:.3}s ({:+.1}%)",
        base,
        t_metrics["secs_best"].as_f64().unwrap(),
        o_metrics * 100.0,
        t_tracing["secs_best"].as_f64().unwrap(),
        o_tracing * 100.0,
    );
    json!({
        "rounds": rounds,
        "reports_per_submit": reports_per_submit,
        "reports_accepted": accepted,
        "n_tasks": n_tasks,
        "n_domains": n_domains,
        "disabled": t_off,
        "metrics_only": t_metrics,
        "full_tracing": t_tracing,
        "ingest_per_sec_disabled": throughput(&t_off),
        "ingest_per_sec_metrics": throughput(&t_metrics),
        "ingest_per_sec_tracing": throughput(&t_tracing),
        "overhead_metrics_frac": o_metrics,
        "overhead_tracing_frac": o_tracing,
    })
}

/// The serving-engine ingest workload again, timed under four durability
/// postures: volatile (no WAL), and WAL-backed with fsync off, per-batch
/// (group commit at flush boundaries — the recommended posture) and
/// per-record. Volatile and fsync-off isolate the pure logging cost;
/// the batch-vs-record gap is the price of the stronger guarantee. CI's
/// perf-smoke gate bounds `overhead_wal_batch_frac`.
fn bench_durability(opts: &Options) -> Value {
    use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
    use eta2_wal::{FsyncPolicy, WalConfig};

    // Per-record fsync pays one fsync per submit, so the round count is
    // kept below the observability section's to hold the wall time down.
    let rounds: u64 = if opts.quick { 200 } else { 1_000 };
    let reports_per_submit = 32u64;
    let (n_tasks, n_domains) = (128u32, 16u32);
    let repeat = opts.repeat.max(5);

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    let root = std::env::temp_dir().join(format!("eta2-perf-wal-{}", std::process::id()));
    let run_ingest = |fsync: Option<FsyncPolicy>| {
        let mut cfg = ServeConfig::default();
        cfg.n_users = 64;
        cfg.n_shards = 4;
        cfg.batch_capacity = 128;
        cfg.threads = 1;
        let engine = match fsync {
            None => ServeEngine::new(cfg),
            Some(policy) => {
                // A fresh log per run: recovery cost is measured by the
                // crash sweep, not here.
                let _ = std::fs::remove_dir_all(&root);
                let mut wal_cfg = WalConfig::new(root.join("wal"));
                wal_cfg.fsync = policy;
                let (engine, _) = ServeEngine::recover(cfg, &root.join("checkpoints"), wal_cfg)
                    .expect("fresh durable engine");
                engine
            }
        };
        let ids = engine
            .register_tasks(
                &(0..n_tasks)
                    .map(|j| TaskSpec::new(DomainId(j % n_domains), 1.0, 1.0))
                    .collect::<Vec<_>>(),
            )
            .expect("register tasks");
        let mut accepted = 0usize;
        for r in 0..rounds {
            let mut obs = ObservationSet::new();
            for k in 0..reports_per_submit {
                let h = mix(r ^ mix(k));
                let task = ids[(h % ids.len() as u64) as usize];
                let user = UserId((mix(h) % 64) as u32);
                obs.insert(user, task, 10.0 + (h % 100) as f64 * 0.01);
            }
            accepted += engine.submit(&obs).accepted;
        }
        engine.tick();
        accepted
    };

    // Metrics off and postures interleaved per repeat, best-of per
    // posture — same noise-exposure argument as the observability
    // section, and the reason the overhead fractions are gateable.
    eta2_obs::set_metrics(false);
    const POSTURES: [Option<FsyncPolicy>; 4] = [
        None,
        Some(FsyncPolicy::Off),
        Some(FsyncPolicy::PerBatch),
        Some(FsyncPolicy::PerRecord),
    ];
    let mut accepted = run_ingest(None); // untimed warm-up
    let mut best = [f64::INFINITY; 4];
    let mut sum = [0.0f64; 4];
    for _ in 0..repeat {
        for (i, &posture) in POSTURES.iter().enumerate() {
            let t0 = Instant::now();
            accepted = run_ingest(posture);
            let s = t0.elapsed().as_secs_f64();
            best[i] = best[i].min(s);
            sum[i] += s;
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    eta2_obs::set_metrics(true); // main()'s posture for span attachment

    let posture = |i: usize| {
        json!({
            "secs_best": best[i],
            "secs_mean": sum[i] / repeat as f64,
            "runs": repeat,
        })
    };
    let (t_none, t_off, t_batch, t_record) = (posture(0), posture(1), posture(2), posture(3));
    let base = best[0];
    let overhead = |i: usize| (best[i] - base) / base;
    let (o_off, o_batch, o_record) = (overhead(1), overhead(2), overhead(3));
    eprintln!(
        "durability {accepted} reports: volatile {base:.3}s, wal-off {:.3}s ({:+.1}%), \
         wal-batch {:.3}s ({:+.1}%), wal-record {:.3}s ({:+.1}%)",
        best[1],
        o_off * 100.0,
        best[2],
        o_batch * 100.0,
        best[3],
        o_record * 100.0,
    );
    json!({
        "rounds": rounds,
        "reports_per_submit": reports_per_submit,
        "reports_accepted": accepted,
        "n_tasks": n_tasks,
        "n_domains": n_domains,
        "volatile": t_none,
        "wal_fsync_off": t_off,
        "wal_fsync_batch": t_batch,
        "wal_fsync_record": t_record,
        "ingest_per_sec_volatile": accepted as f64 / best[0],
        "ingest_per_sec_wal_batch": accepted as f64 / best[2],
        "overhead_wal_off_frac": o_off,
        "overhead_wal_batch_frac": o_batch,
        "overhead_wal_record_frac": o_record,
        // CI's committed bound targets this amortized cost rather than
        // the fractions: the fractions divide fsync latency by a
        // sub-microsecond in-memory baseline, so they swing with the
        // runner's storage stack, while group commit pins the fsync
        // count per report (1 / batch_capacity) and keeps this number
        // stable across machines.
        "wal_batch_us_per_report": best[2] / accepted as f64 * 1e6,
    })
}

/// Dirty-set flush cost (the incremental truth-analysis path): twin
/// serving engines ingest the same skewed steady-state workload — a
/// seeded corpus of `n_domains` domains, then rounds that touch only a
/// fraction of them — once with `incremental: true` (dirty-set solve,
/// copy-on-write truth layers, per-domain column refresh; the default)
/// and once with `incremental: false` (the historical full-recompute
/// flush). Both fold identical reports, so the final states must agree
/// bit-for-bit; the win is flush cost proportional to the dirty set
/// instead of the shard. CI's perf-smoke gate bounds
/// `speedup_full_vs_incremental` at the 1 % fraction.
fn bench_incremental(opts: &Options) -> Value {
    use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};

    // City-scale crowdsensing: 200 regions, 512 workers, 10k tasks — big
    // enough that the full path's O(total-state) costs (per-flush
    // compaction, all-column refresh, dense solver slots) separate cleanly
    // from the incremental path's O(dirty-set) costs. Deliberately NOT
    // shrunk under --quick: the CI speedup gate compares against the
    // committed BENCH_perf.json incremental section, so it has to measure
    // the same workload (at 1% dirty a run folds only 4.8k reports, so the
    // un-shrunk section stays cheap anyway).
    let (n_tasks, n_users, rounds, n_domains) = (10_000u32, 512usize, 16u32, 200u32);
    let repeat = opts.repeat.max(3);

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    let make = |incremental: bool| {
        let mut cfg = ServeConfig::default();
        cfg.n_users = n_users;
        cfg.n_shards = 4;
        cfg.batch_capacity = 0; // flush via tick: one flush per round
        cfg.threads = 1;
        cfg.incremental = incremental;
        let engine = ServeEngine::new(cfg);
        let ids = engine
            .register_tasks(
                &(0..n_tasks)
                    .map(|j| TaskSpec::new(DomainId(j % n_domains), 1.0, 1.0))
                    .collect::<Vec<_>>(),
            )
            .expect("register tasks");
        // Seed epoch: every task reported, so every domain carries
        // accumulated expertise and every truth sits in the base layer —
        // the steady state the dirty fractions perturb.
        let mut obs = ObservationSet::new();
        for (j, &id) in ids.iter().enumerate() {
            for u in 0..4u64 {
                let h = mix(j as u64 ^ mix(u));
                obs.insert(
                    UserId((h % n_users as u64) as u32),
                    id,
                    10.0 + (h % 100) as f64 * 0.01,
                );
            }
        }
        engine.submit(&obs);
        engine.tick();
        (engine, ids)
    };

    let (inc, ids) = make(true);
    let (full, ids_full) = make(false);
    assert_eq!(ids, ids_full, "twin id allocation diverged");

    // Each round's reports come from a small rotating cohort of active
    // workers — the mobile-crowdsourcing steady state, where a collection
    // round hears from few workers in few regions. The sparse solver's
    // working set tracks the cohort; the dense baseline still walks every
    // user slot per iteration.
    const COHORT: u64 = 8;

    let mut fractions = Vec::new();
    for &pct in &[1u32, 10, 100] {
        let dirty_domains = (n_domains * pct / 100).max(1);
        // One pre-built batch per round, touching only tasks whose domain
        // falls in the dirty prefix (~3 reports per dirty task).
        let batches: Vec<ObservationSet> = (0..rounds)
            .map(|r| {
                let mut obs = ObservationSet::new();
                for (j, &id) in ids.iter().enumerate() {
                    if (j as u32) % n_domains < dirty_domains {
                        for u in 0..3u64 {
                            let h = mix(u64::from(pct) ^ mix(u64::from(r)) ^ mix(j as u64 ^ u));
                            let user = (h % COHORT + u64::from(r) * COHORT) % n_users as u64;
                            obs.insert(UserId(user as u32), id, 10.0 + (h % 100) as f64 * 0.01);
                        }
                    }
                }
                obs
            })
            .collect();
        let run = |engine: &ServeEngine| {
            let t0 = Instant::now();
            let mut accepted = 0usize;
            for batch in &batches {
                accepted += engine.submit(batch).accepted;
                engine.tick();
            }
            (t0.elapsed().as_secs_f64(), accepted)
        };
        // Interleave the twins inside each repeat (same noise-exposure
        // argument as the observability section); state keeps evolving
        // across repeats, identically on both sides.
        let mut best = [f64::INFINITY; 2];
        let mut sum = [0.0f64; 2];
        let mut accepted = 0usize;
        for _ in 0..repeat {
            let (s_inc, a_inc) = run(&inc);
            let (s_full, a_full) = run(&full);
            assert_eq!(a_inc, a_full, "twin receipts diverged");
            accepted = a_inc;
            best[0] = best[0].min(s_inc);
            sum[0] += s_inc;
            best[1] = best[1].min(s_full);
            sum[1] += s_full;
        }
        let timing = |i: usize| {
            json!({
                "secs_best": best[i],
                "secs_mean": sum[i] / repeat as f64,
                "runs": repeat,
            })
        };
        eprintln!(
            "incremental {pct}% dirty ({dirty_domains}/{n_domains} domains, {accepted} reports/run): \
             incremental {:.4}s, full {:.4}s ({:.1}x)",
            best[0],
            best[1],
            best[1] / best[0],
        );
        fractions.push(json!({
            "dirty_frac": f64::from(pct) / 100.0,
            "dirty_domains": dirty_domains,
            "reports_per_run": accepted,
            "rounds_per_run": rounds,
            "incremental": timing(0),
            "full": timing(1),
            "obs_per_sec_incremental": accepted as f64 / best[0],
            "obs_per_sec_full": accepted as f64 / best[1],
            "speedup_full_vs_incremental": best[1] / best[0],
        }));
    }

    // Both twins folded the identical report sequence: the dirty-set path
    // must land on bit-identical state (the same contract the eta2-check
    // incremental_vs_full oracle pair replays per op).
    for &id in &ids {
        let (a, b) = (inc.truth(id), full.truth(id));
        let key = |e: eta2_core::truth::TruthEstimate| (e.mu.to_bits(), e.sigma.to_bits());
        assert_eq!(a.map(key), b.map(key), "truth of {id:?} diverged");
    }
    assert_eq!(
        inc.snapshot().expertise_matrix(),
        full.snapshot().expertise_matrix(),
        "expertise diverged between incremental and full flushes"
    );

    json!({
        "n_tasks": n_tasks,
        "n_users": n_users,
        "n_domains": n_domains,
        "n_shards": 4,
        "fractions": fractions,
        "bit_identical": true,
    })
}

fn main() {
    let opts = parse_options();
    // Span timing on: the hot paths record `mle.solve` / `alloc.greedy` /
    // `alloc.min_cost` histograms that get attached below.
    eta2_obs::set_metrics(true);
    eta2_obs::registry::global().reset();

    let threads = match opts.threads {
        0 => eta2_par::available_parallelism().clamp(2, 8),
        n => n,
    };

    let mle = bench_mle(&opts, threads);
    let skipgram = bench_skipgram(&opts, threads);
    let allocation = bench_allocation(&opts);
    let incremental = bench_incremental(&opts);
    let observability = bench_observability(&opts);
    let durability = bench_durability(&opts);

    let mut out = json!({
        "meta": {
            "suite": "perf_suite",
            "quick": opts.quick,
            "threads": threads,
            "repeat": opts.repeat,
            "host_cores": eta2_par::available_parallelism(),
            "regenerate": "cargo run --release -p eta2-bench --bin perf_suite [-- --quick]",
        },
        "mle": mle,
        "skipgram": skipgram,
        "allocation": allocation,
        "incremental": incremental,
        "observability": observability,
        "durability": durability,
    });
    eta2_bench::harness::attach_span_timing(
        &mut out,
        &eta2_obs::registry::global().snapshot_and_reset(),
    );

    let body = serde_json::to_string_pretty(&out).expect("serialize result");
    if let Err(e) = eta2_bench::harness::write_output(&opts.out, body) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    eprintln!("[perf baseline written to {}]", opts.out);
}
