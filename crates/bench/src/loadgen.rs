//! Open-loop wire-protocol load generator — the million-client harness
//! behind `BENCH_serve.json` and the CI `net-smoke` job.
//!
//! The generator multiplexes a large population of *simulated clients*
//! (distinct `UserId`s, default 10⁵, scalable to 10⁶) over a small fixed
//! pool of worker threads, one binary-protocol connection each — the
//! standard open-loop trick for driving server-grade concurrency from a
//! single load host. Task popularity is Zipf-skewed, reads are
//! interleaved with ingest at a configurable ratio, and when `rate` is
//! set the workers pace requests against a global schedule and measure
//! latency from each request's *intended* start time, so queueing delay
//! under overload is charged to the server rather than hidden by
//! coordinated omission.
//!
//! Ingest and read latencies are recorded in separate distributions
//! (p50/p99/p999/max, microseconds); shed responses (`Overloaded`) are
//! counted but excluded from the ingest distribution, since a shed is
//! the server *refusing* work, not serving it slowly.
//!
//! Shed handling depends on the loop mode. In **closed-loop** mode (no
//! `rate`) a shed submit is retried up to [`LoadGenConfig::shed_retries`]
//! times, honoring the server's `retry_after_ms` hint (capped at
//! [`LoadGenConfig::max_backoff_ms`]); latency is still measured from the
//! *first* attempt, so backoff time is charged to the server and the
//! retries cannot hide queueing delay (coordinated omission). Only a
//! request whose retries are exhausted counts as `shed`; each backoff
//! sleep is counted in `backoffs`. In **open-loop** mode (`rate` set) the
//! schedule keeps sending regardless — retrying would silently lower the
//! offered rate — and sheds are only counted, exactly as before.
//! (`NetClient` itself stays policy-free: retry behavior belongs to the
//! caller, which knows its loop discipline.)

use crate::harness::write_output;
use eta2_core::model::{DomainId, Observation, TaskId, UserId};
use eta2_net::{NetClient, NetConfig, NetServer, Request, Response};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Server to drive, e.g. `"127.0.0.1:4980"`. `None` self-hosts a
    /// [`NetServer`] on a loopback port inside the process.
    pub addr: Option<String>,
    /// Simulated client population: reports carry `UserId`s cycling
    /// through `0..clients`, so with `requests * batch >= clients` every
    /// simulated client submits at least once.
    pub clients: usize,
    /// Total requests to issue across all connections.
    pub requests: u64,
    /// Worker threads, one multiplexed connection each.
    pub connections: usize,
    /// Reports per submit request.
    pub batch: usize,
    /// Registered tasks.
    pub tasks: usize,
    /// Expertise domains the tasks spread over.
    pub domains: usize,
    /// Every `read_every`-th request is a truth read instead of a submit
    /// (`0` = ingest only).
    pub read_every: u64,
    /// Zipf exponent for task popularity (`0` = uniform).
    pub zipf_s: f64,
    /// Open-loop target rate in requests/second across all workers
    /// (`None` = closed loop: each worker issues back-to-back).
    pub rate: Option<f64>,
    /// Closed-loop only: retries of a shed submit before giving up and
    /// counting it as `shed` (`0` = never retry, the pre-backoff
    /// behavior). Ignored in open-loop mode, which must keep its offered
    /// rate honest.
    pub shed_retries: u32,
    /// Upper bound in milliseconds on each backoff sleep, so a pathological
    /// `retry_after_ms` from the server cannot stall a worker.
    pub max_backoff_ms: u64,
    /// Self-hosted server's admission bound (pending reports); ignored
    /// when driving an external `addr`.
    pub queue_capacity: usize,
    /// Self-hosted server's background flush cadence in milliseconds
    /// (`0` = no ticker, flushes only at batch boundaries).
    pub tick_ms: u64,
    /// Deterministic workload seed.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            addr: None,
            clients: 100_000,
            requests: 20_000,
            connections: 8,
            batch: 8,
            tasks: 512,
            domains: 16,
            read_every: 10,
            zipf_s: 1.1,
            rate: None,
            shed_retries: 3,
            max_backoff_ms: 100,
            queue_capacity: 1 << 16,
            tick_ms: 25,
            seed: 42,
        }
    }
}

/// Summary of one latency distribution, microseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySummary {
    /// Requests in the distribution.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_sorted(lat_us: &[u64]) -> Option<LatencySummary> {
        let n = lat_us.len();
        if n == 0 {
            return None;
        }
        let pct = |q: f64| lat_us[(((n - 1) as f64) * q).round() as usize];
        Some(LatencySummary {
            count: n as u64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            p999_us: pct(0.999),
            max_us: lat_us[n - 1],
        })
    }
}

/// The committed result of one load-generator run (`BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Where the load went: the external address, or `"self-hosted"`.
    pub target: String,
    /// Simulated client population.
    pub clients: usize,
    /// Distinct simulated clients that actually appeared in submitted
    /// reports (equals `clients` when `requests * batch >= clients`).
    pub clients_covered: usize,
    /// Requests issued.
    pub requests: u64,
    /// Worker connections.
    pub connections: usize,
    /// Reports per submit.
    pub batch: usize,
    /// Zipf exponent of the task popularity skew.
    pub zipf_s: f64,
    /// Open-loop rate if one was set.
    pub rate: Option<f64>,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Achieved requests/second.
    pub throughput_rps: f64,
    /// Successful submits.
    pub submits_ok: u64,
    /// Reports carried by successful submits.
    pub reports_accepted: u64,
    /// Submits abandoned as `Overloaded` (closed loop: after exhausting
    /// `shed_retries`; open loop: on first shed). Excluded from ingest
    /// latency.
    pub shed: u64,
    /// Backoff sleeps taken on `Overloaded` responses (closed loop only;
    /// each honors the server's `retry_after_ms`, capped at
    /// `max_backoff_ms`).
    pub backoffs: u64,
    /// Successful truth reads.
    pub reads_ok: u64,
    /// Typed error responses (should be 0 under a healthy run).
    pub errors: u64,
    /// Ingest (submit) latency distribution. With `rate` set, measured
    /// from each request's intended start (coordinated-omission-safe);
    /// closed-loop otherwise.
    pub ingest_latency: Option<LatencySummary>,
    /// Read (truth) latency distribution, same clock discipline.
    pub read_latency: Option<LatencySummary>,
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Cumulative Zipf weights over `n` ranks with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|i| {
            acc += ((i + 1) as f64).powf(-s);
            acc
        })
        .collect()
}

fn zipf_pick(cdf: &[f64], u01: f64) -> usize {
    let target = u01 * cdf[cdf.len() - 1];
    cdf.partition_point(|&c| c < target).min(cdf.len() - 1)
}

struct WorkerOutcome {
    ingest_us: Vec<u64>,
    read_us: Vec<u64>,
    submits_ok: u64,
    reports_accepted: u64,
    shed: u64,
    backoffs: u64,
    reads_ok: u64,
    errors: u64,
}

/// Runs the load generator, returning the report. `out` (when given)
/// receives the report as pretty JSON via the shared harness writer.
pub fn run(cfg: &LoadGenConfig, out: Option<&str>) -> Result<LoadReport, String> {
    if cfg.requests == 0 || cfg.connections == 0 || cfg.batch == 0 || cfg.tasks == 0 {
        return Err("requests, connections, batch and tasks must all be nonzero".into());
    }
    // Self-host unless an external address was given.
    let server = match &cfg.addr {
        Some(_) => None,
        None => {
            let mut serve = ServeConfig::default();
            serve.n_users = cfg.clients;
            serve.n_shards = 2;
            serve.batch_capacity = 4096;
            serve.threads = 1;
            let engine = Arc::new(ServeEngine::new(serve));
            let mut net = NetConfig::default();
            net.max_connections = cfg.connections + 8;
            net.queue_capacity = cfg.queue_capacity;
            net.tick_ms = cfg.tick_ms;
            Some(
                NetServer::serve(engine, "127.0.0.1:0", net)
                    .map_err(|e| format!("self-hosted server failed to bind: {e}"))?,
            )
        }
    };
    let target = match (&cfg.addr, &server) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        (None, None) => unreachable!("no addr and no self-hosted server"),
    };

    // Register the task population over the wire (identical against
    // self-hosted and external servers).
    let domains = cfg.domains.max(1);
    let mut setup =
        NetClient::connect(&target).map_err(|e| format!("cannot connect to {target}: {e}"))?;
    let specs: Vec<TaskSpec> = (0..cfg.tasks)
        .map(|i| TaskSpec::new(DomainId((i % domains) as u32), 1.0, 1.0))
        .collect();
    let task_ids: Vec<TaskId> = match setup
        .register(specs)
        .map_err(|e| format!("register failed: {e}"))?
    {
        Response::Registered { ids } => ids,
        other => return Err(format!("register answered {other:?}")),
    };
    drop(setup);

    let cdf = Arc::new(zipf_cdf(task_ids.len(), cfg.zipf_s.max(0.0)));
    let task_ids = Arc::new(task_ids);
    let next_request = Arc::new(AtomicU64::new(0));
    let next_submit = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let workers: Vec<std::thread::JoinHandle<Result<WorkerOutcome, String>>> = (0..cfg.connections)
        .map(|w| {
            let cfg = cfg.clone();
            let target = target.clone();
            let cdf = cdf.clone();
            let task_ids = task_ids.clone();
            let next_request = next_request.clone();
            let next_submit = next_submit.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect(&target)
                    .map_err(|e| format!("worker {w}: connect failed: {e}"))?;
                let mut rng = mix(cfg.seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
                let mut outcome = WorkerOutcome {
                    ingest_us: Vec::new(),
                    read_us: Vec::new(),
                    submits_ok: 0,
                    reports_accepted: 0,
                    shed: 0,
                    backoffs: 0,
                    reads_ok: 0,
                    errors: 0,
                };
                loop {
                    let k = next_request.fetch_add(1, Ordering::Relaxed);
                    if k >= cfg.requests {
                        break;
                    }
                    // Open loop: pace against the global schedule and
                    // measure from the intended start, so server-side
                    // queueing shows up as latency.
                    let reference = match cfg.rate {
                        Some(rate) => {
                            let intended = Duration::from_secs_f64(k as f64 / rate);
                            while started.elapsed() < intended {
                                let behind = intended - started.elapsed();
                                std::thread::sleep(behind.min(Duration::from_millis(1)));
                            }
                            started.checked_add(intended).unwrap_or_else(Instant::now)
                        }
                        None => Instant::now(),
                    };
                    let is_read = cfg.read_every > 0 && k % cfg.read_every == 0;
                    if is_read {
                        rng = mix(rng);
                        let t =
                            task_ids[zipf_pick(&cdf, (rng % (1 << 24)) as f64 / (1 << 24) as f64)];
                        match client.truth(t) {
                            Ok(Response::Truth { .. }) => {
                                outcome.reads_ok += 1;
                                outcome.read_us.push(reference.elapsed().as_micros() as u64);
                            }
                            Ok(_) => outcome.errors += 1,
                            Err(e) => return Err(format!("worker {w}: read failed: {e}")),
                        }
                    } else {
                        let s = next_submit.fetch_add(1, Ordering::Relaxed);
                        let reports: Vec<Observation> = (0..cfg.batch as u64)
                            .map(|j| {
                                rng = mix(rng);
                                let idx =
                                    zipf_pick(&cdf, (rng % (1 << 24)) as f64 / (1 << 24) as f64);
                                let user = UserId(
                                    ((s * cfg.batch as u64 + j) % cfg.clients as u64) as u32,
                                );
                                let value =
                                    10.0 + idx as f64 * 0.1 + (mix(rng ^ j) % 1000) as f64 / 5000.0;
                                Observation {
                                    user,
                                    task: task_ids[idx],
                                    value,
                                }
                            })
                            .collect();
                        // Closed loop honors the shed's retry_after_ms
                        // with bounded backoff; open loop keeps to its
                        // schedule and only counts. Latency on eventual
                        // success is measured from the *first* attempt, so
                        // backoff time is charged to the server.
                        let mut retries_left = if cfg.rate.is_none() {
                            cfg.shed_retries
                        } else {
                            0
                        };
                        loop {
                            match client.submit(reports.clone()) {
                                Ok(Response::Submitted { accepted, .. }) => {
                                    outcome.submits_ok += 1;
                                    outcome.reports_accepted += accepted;
                                    outcome
                                        .ingest_us
                                        .push(reference.elapsed().as_micros() as u64);
                                    break;
                                }
                                Ok(Response::Overloaded { retry_after_ms }) => {
                                    if retries_left == 0 {
                                        outcome.shed += 1;
                                        break;
                                    }
                                    retries_left -= 1;
                                    outcome.backoffs += 1;
                                    let pause = retry_after_ms.clamp(1, cfg.max_backoff_ms.max(1));
                                    std::thread::sleep(Duration::from_millis(pause));
                                }
                                Ok(_) => {
                                    outcome.errors += 1;
                                    break;
                                }
                                Err(e) => return Err(format!("worker {w}: submit failed: {e}")),
                            }
                        }
                    }
                }
                Ok(outcome)
            })
        })
        .collect();

    let mut ingest_us = Vec::new();
    let mut read_us = Vec::new();
    let mut submits_ok = 0;
    let mut reports_accepted = 0;
    let mut shed = 0;
    let mut backoffs = 0;
    let mut reads_ok = 0;
    let mut errors = 0;
    for handle in workers {
        let outcome = handle
            .join()
            .map_err(|_| "load worker panicked".to_string())??;
        ingest_us.extend(outcome.ingest_us);
        read_us.extend(outcome.read_us);
        submits_ok += outcome.submits_ok;
        reports_accepted += outcome.reports_accepted;
        shed += outcome.shed;
        backoffs += outcome.backoffs;
        reads_ok += outcome.reads_ok;
        errors += outcome.errors;
    }
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(server) = server {
        server.shutdown();
    }

    ingest_us.sort_unstable();
    read_us.sort_unstable();
    let total_submits = submits_ok + shed;
    let clients_covered =
        (total_submits.saturating_mul(cfg.batch as u64)).min(cfg.clients as u64) as usize;
    let report = LoadReport {
        target: if cfg.addr.is_some() {
            target
        } else {
            "self-hosted".to_string()
        },
        clients: cfg.clients,
        clients_covered,
        requests: cfg.requests,
        connections: cfg.connections,
        batch: cfg.batch,
        zipf_s: cfg.zipf_s,
        rate: cfg.rate,
        elapsed_secs: elapsed,
        throughput_rps: cfg.requests as f64 / elapsed.max(1e-9),
        submits_ok,
        reports_accepted,
        shed,
        backoffs,
        reads_ok,
        errors,
        ingest_latency: LatencySummary::from_sorted(&ingest_us),
        read_latency: LatencySummary::from_sorted(&read_us),
    };
    if let Some(path) = out {
        let body = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("cannot serialize load report: {e}"))?;
        write_output(path, body + "\n")?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_skewed() {
        let cdf = zipf_cdf(100, 1.1);
        assert_eq!(cdf.len(), 100);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        // Rank 0 carries more mass than rank 99.
        let head = cdf[0];
        let tail = cdf[99] - cdf[98];
        assert!(head > 10.0 * tail);
        // Uniform when s = 0.
        let flat = zipf_cdf(10, 0.0);
        assert!((flat[9] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_pick_covers_all_ranks() {
        let cdf = zipf_cdf(8, 1.0);
        assert_eq!(zipf_pick(&cdf, 0.0), 0);
        assert!(zipf_pick(&cdf, 0.9999) == 7);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            seen.insert(zipf_pick(&cdf, i as f64 / 1000.0));
        }
        assert_eq!(seen.len(), 8, "{seen:?}");
    }

    #[test]
    fn latency_summary_percentiles() {
        let lat: Vec<u64> = (1..=1000).collect();
        let s = LatencySummary::from_sorted(&lat).unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_us, 500);
        assert_eq!(s.p99_us, 990);
        assert_eq!(s.p999_us, 999);
        assert_eq!(s.max_us, 1000);
        assert!(LatencySummary::from_sorted(&[]).is_none());
    }

    #[test]
    fn small_self_hosted_run_completes() {
        let cfg = LoadGenConfig {
            clients: 64,
            requests: 60,
            connections: 2,
            batch: 4,
            tasks: 16,
            domains: 4,
            read_every: 5,
            tick_ms: 5,
            ..LoadGenConfig::default()
        };
        let report = run(&cfg, None).expect("run succeeds");
        assert_eq!(report.submits_ok + report.shed + report.reads_ok, 60);
        assert_eq!(report.errors, 0);
        assert!(report.ingest_latency.is_some());
        assert_eq!(report.clients_covered, 64);
    }

    #[test]
    fn overload_sheds_instead_of_queueing() {
        // No ticker and a tiny admission bound: the queue cannot drain,
        // so most submits past the bound must shed. Retries are capped
        // at one short backoff so the test stays fast.
        let cfg = LoadGenConfig {
            clients: 64,
            requests: 200,
            connections: 2,
            batch: 8,
            tasks: 16,
            domains: 4,
            read_every: 0,
            queue_capacity: 32,
            tick_ms: 0,
            shed_retries: 1,
            max_backoff_ms: 2,
            ..LoadGenConfig::default()
        };
        let report = run(&cfg, None).expect("run succeeds");
        assert!(report.shed > 0, "no shedding under overload: {report:?}");
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn closed_loop_backs_off_on_shed() {
        // Closed-loop mode must honor the server's retry_after_ms hint:
        // with an undrainable queue every shed answer first burns the
        // retry budget (counted in `backoffs`) before it is abandoned
        // (counted in `shed`), and the request accounting still balances.
        let cfg = LoadGenConfig {
            clients: 32,
            requests: 120,
            connections: 2,
            batch: 8,
            tasks: 16,
            domains: 4,
            read_every: 0,
            queue_capacity: 16,
            tick_ms: 0,
            shed_retries: 2,
            max_backoff_ms: 2,
            ..LoadGenConfig::default()
        };
        let report = run(&cfg, None).expect("run succeeds");
        assert!(report.shed > 0, "queue never filled: {report:?}");
        assert!(
            report.backoffs > 0,
            "client never backed off before shedding: {report:?}"
        );
        // Every abandoned submit must have exhausted its full retry budget.
        assert!(
            report.backoffs >= report.shed * u64::from(cfg.shed_retries),
            "sheds skipped the retry budget: {report:?}"
        );
        assert_eq!(report.submits_ok + report.shed + report.reads_ok, 120);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn open_loop_rate_mode_never_backs_off() {
        // With --rate set the generator is open-loop: shed answers are
        // only counted, never retried, so the offered rate is preserved.
        let cfg = LoadGenConfig {
            clients: 32,
            requests: 80,
            connections: 2,
            batch: 8,
            tasks: 16,
            domains: 4,
            read_every: 0,
            queue_capacity: 16,
            tick_ms: 0,
            rate: Some(100_000.0),
            shed_retries: 3,
            max_backoff_ms: 2,
            ..LoadGenConfig::default()
        };
        let report = run(&cfg, None).expect("run succeeds");
        assert!(report.shed > 0, "queue never filled: {report:?}");
        assert_eq!(
            report.backoffs, 0,
            "open-loop mode must not retry shed submits: {report:?}"
        );
        assert_eq!(report.errors, 0);
    }
}
