//! Shared experiment plumbing: settings, dataset constructors, printing
//! and JSON persistence.

use eta2_datasets::sfv::SfvConfig;
use eta2_datasets::survey::SurveyConfig;
use eta2_datasets::synthetic::SyntheticConfig;
use eta2_datasets::Dataset;
use eta2_sim::SimConfig;
use serde_json::Value;
use std::path::PathBuf;

/// Experiment-wide settings, read from the environment.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Seeds averaged per experiment point (`ETA2_SEEDS`, default 10).
    pub seeds: u64,
    /// Shrink datasets for a smoke run (`ETA2_FAST`).
    pub fast: bool,
    /// Where JSON results are written.
    pub out_dir: PathBuf,
    /// Worker threads (`ETA2_THREADS`), forwarded to
    /// [`SimConfig::threads`]: `0` = historical behavior (parallel seed
    /// sweep, sequential MLE), `1` = fully sequential, `n` = `n` workers
    /// for both layers.
    pub threads: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings::from_env()
    }
}

impl Settings {
    /// Reads `ETA2_SEEDS` / `ETA2_FAST` / `ETA2_THREADS` from the
    /// environment.
    ///
    /// `ETA2_FAST` follows the usual boolean convention: unset, empty,
    /// `0`, `false`, `off` and `no` all mean off — not mere presence.
    ///
    /// Also turns on span timing so experiment runs accumulate wall-time
    /// histograms that [`Settings::write_json`] attaches to results.
    pub fn from_env() -> Self {
        eta2_obs::set_metrics(true);
        let seeds = std::env::var("ETA2_SEEDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
            .max(1);
        let fast = eta2_obs::env_flag("ETA2_FAST");
        let threads = std::env::var("ETA2_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Settings {
            seeds,
            fast,
            out_dir: PathBuf::from("target/experiments"),
            threads,
        }
    }

    /// The paper's survey dataset stand-in (§6.1.1).
    pub fn survey(&self, seed: u64) -> Dataset {
        let cfg = if self.fast {
            SurveyConfig {
                n_users: 20,
                n_tasks: 60,
                ..SurveyConfig::default()
            }
        } else {
            SurveyConfig::default()
        };
        cfg.generate(seed)
    }

    /// The paper's SFV dataset stand-in (§6.1.2).
    pub fn sfv(&self, seed: u64) -> Dataset {
        let cfg = if self.fast {
            SfvConfig {
                n_entities: 15,
                ..SfvConfig::default()
            }
        } else {
            SfvConfig {
                // Full 18 systems; 50 entities × 20 slots = 1000 tasks keeps
                // the default battery tractable (the paper's ~2000 works
                // too, at 4× the clustering time).
                n_entities: 50,
                ..SfvConfig::default()
            }
        };
        cfg.generate(seed)
    }

    /// The paper's synthetic dataset (§6.1.3).
    pub fn synthetic(&self, seed: u64) -> Dataset {
        let cfg = if self.fast {
            SyntheticConfig {
                n_users: 30,
                n_tasks: 150,
                ..SyntheticConfig::default()
            }
        } else {
            SyntheticConfig::default()
        };
        cfg.generate(seed)
    }

    /// The default simulation configuration used across experiments
    /// (best parameters per §6.4.1 unless an experiment sweeps them).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            threads: self.threads,
            ..SimConfig::default()
        }
    }

    /// Writes `value` as pretty JSON to `target/experiments/<id>.json`,
    /// attaching the span-timing histograms accumulated since the previous
    /// write under a `"span_timing"` key (and resetting them, so each
    /// experiment's timings cover only that experiment).
    pub fn write_json(&self, id: &str, value: &Value) {
        let mut value = value.clone();
        attach_span_timing(
            &mut value,
            &eta2_obs::registry::global().snapshot_and_reset(),
        );
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eta2_obs::warn!("cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{id}.json"));
        match serde_json::to_string_pretty(&value) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eta2_obs::warn!("cannot write {}: {e}", path.display());
                } else {
                    eta2_obs::progress!("[results written to {}]", path.display());
                }
            }
            Err(e) => eta2_obs::warn!("cannot serialize {id}: {e}"),
        }
    }
}

/// Merges a non-empty metrics snapshot into a JSON object result under
/// `"span_timing"`. Non-object results and empty snapshots are left alone.
/// Used by [`Settings::write_json`] and by the `perf_suite` binary.
pub fn attach_span_timing(value: &mut Value, spans: &eta2_obs::registry::Snapshot) {
    if spans.is_empty() {
        return;
    }
    if let (Some(obj), Ok(timing)) = (
        value.as_object_mut(),
        serde_json::from_str::<Value>(&spans.to_json()),
    ) {
        obj.insert("span_timing".to_string(), timing);
    }
}

/// Writes `body` to `path`, creating parent directories, with the same
/// path-context error phrasing as `eta2_datasets::io`: callers surface the
/// message and exit nonzero instead of panicking, so an unwritable
/// `--out` / `--metrics-out` target names the offending path.
pub fn write_output(
    path: impl AsRef<std::path::Path>,
    body: impl AsRef<[u8]>,
) -> Result<(), String> {
    let path = path.as_ref();
    let fail = |e: std::io::Error| format!("output file i/o failed for {}: {e}", path.display());
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(fail)?;
    }
    std::fs::write(path, body).map_err(fail)
}

/// Prints a header line for an experiment.
pub fn banner(id: &str, title: &str) {
    eta2_obs::progress!();
    eta2_obs::progress!("================================================================");
    eta2_obs::progress!("{id} — {title}");
    eta2_obs::progress!("================================================================");
}

/// Formats a row of f64 cells with a leading label.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<24}");
    for v in values {
        s.push_str(&format!(" {v:>9.4}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_defaults() {
        let s = Settings::from_env();
        assert!(s.seeds >= 1);
        assert_eq!(s.out_dir, PathBuf::from("target/experiments"));
    }

    #[test]
    fn datasets_construct() {
        let s = Settings {
            seeds: 1,
            fast: true,
            out_dir: PathBuf::from("/tmp/eta2_harness_test"),
            threads: 0,
        };
        assert_eq!(s.survey(0).name, "survey");
        assert_eq!(s.sfv(0).name, "sfv");
        assert_eq!(s.synthetic(0).name, "synthetic");
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row("x", &[1.0, 2.5]);
        assert!(r.contains("1.0000"));
        assert!(r.contains("2.5000"));
    }

    #[test]
    fn attach_span_timing_merges_histograms() {
        let r = eta2_obs::Registry::new();
        r.observe("mle.solve", 0.25);
        r.observe("mle.solve", 0.75);
        let mut v = serde_json::json!({"ok": true});
        attach_span_timing(&mut v, &r.snapshot());
        let timing = v.get("span_timing").expect("span_timing attached");
        let h = &timing["histograms"]["mle.solve"];
        assert_eq!(h["count"], 2);
        assert!((h["sum"].as_f64().unwrap() - 1.0).abs() < 1e-12);
        // The original payload is intact.
        assert_eq!(v["ok"], true);
    }

    #[test]
    fn attach_span_timing_skips_empty_snapshot() {
        let r = eta2_obs::Registry::new();
        let mut v = serde_json::json!({"ok": true});
        attach_span_timing(&mut v, &r.snapshot());
        assert!(v.get("span_timing").is_none());
    }

    #[test]
    fn write_output_creates_parents_and_reports_unwritable_paths() {
        let dir = std::env::temp_dir().join("eta2_harness_write_output");
        let nested = dir.join("a/b/out.json");
        write_output(&nested, "{}").expect("parents created on demand");
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "{}");
        std::fs::remove_dir_all(&dir).ok();

        let bad = std::path::Path::new("/dev/null/not-a-dir/out.json");
        let err = write_output(bad, "{}").expect_err("unwritable path must fail");
        assert!(
            err.contains("output file i/o failed for /dev/null/not-a-dir/out.json"),
            "{err}"
        );
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("eta2_harness_json");
        let s = Settings {
            seeds: 1,
            fast: true,
            out_dir: dir.clone(),
            threads: 0,
        };
        s.write_json("unit_test", &serde_json::json!({"ok": true}));
        assert!(dir.join("unit_test.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
