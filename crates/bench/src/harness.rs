//! Shared experiment plumbing: settings, dataset constructors, printing
//! and JSON persistence.

use eta2_datasets::sfv::SfvConfig;
use eta2_datasets::survey::SurveyConfig;
use eta2_datasets::synthetic::SyntheticConfig;
use eta2_datasets::Dataset;
use eta2_sim::SimConfig;
use serde_json::Value;
use std::path::PathBuf;

/// Experiment-wide settings, read from the environment.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Seeds averaged per experiment point (`ETA2_SEEDS`, default 10).
    pub seeds: u64,
    /// Shrink datasets for a smoke run (`ETA2_FAST`).
    pub fast: bool,
    /// Where JSON results are written.
    pub out_dir: PathBuf,
}

impl Default for Settings {
    fn default() -> Self {
        Settings::from_env()
    }
}

impl Settings {
    /// Reads `ETA2_SEEDS` / `ETA2_FAST` from the environment.
    pub fn from_env() -> Self {
        let seeds = std::env::var("ETA2_SEEDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
            .max(1);
        let fast = std::env::var("ETA2_FAST").is_ok();
        Settings {
            seeds,
            fast,
            out_dir: PathBuf::from("target/experiments"),
        }
    }

    /// The paper's survey dataset stand-in (§6.1.1).
    pub fn survey(&self, seed: u64) -> Dataset {
        let cfg = if self.fast {
            SurveyConfig {
                n_users: 20,
                n_tasks: 60,
                ..SurveyConfig::default()
            }
        } else {
            SurveyConfig::default()
        };
        cfg.generate(seed)
    }

    /// The paper's SFV dataset stand-in (§6.1.2).
    pub fn sfv(&self, seed: u64) -> Dataset {
        let cfg = if self.fast {
            SfvConfig {
                n_entities: 15,
                ..SfvConfig::default()
            }
        } else {
            SfvConfig {
                // Full 18 systems; 50 entities × 20 slots = 1000 tasks keeps
                // the default battery tractable (the paper's ~2000 works
                // too, at 4× the clustering time).
                n_entities: 50,
                ..SfvConfig::default()
            }
        };
        cfg.generate(seed)
    }

    /// The paper's synthetic dataset (§6.1.3).
    pub fn synthetic(&self, seed: u64) -> Dataset {
        let cfg = if self.fast {
            SyntheticConfig {
                n_users: 30,
                n_tasks: 150,
                ..SyntheticConfig::default()
            }
        } else {
            SyntheticConfig::default()
        };
        cfg.generate(seed)
    }

    /// The default simulation configuration used across experiments
    /// (best parameters per §6.4.1 unless an experiment sweeps them).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::default()
    }

    /// Writes `value` as pretty JSON to `target/experiments/<id>.json`.
    pub fn write_json(&self, id: &str, value: &Value) {
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{id}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    println!("[results written to {}]", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {id}: {e}"),
        }
    }
}

/// Prints a header line for an experiment.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

/// Formats a row of f64 cells with a leading label.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<24}");
    for v in values {
        s.push_str(&format!(" {v:>9.4}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_defaults() {
        let s = Settings::from_env();
        assert!(s.seeds >= 1);
        assert_eq!(s.out_dir, PathBuf::from("target/experiments"));
    }

    #[test]
    fn datasets_construct() {
        let s = Settings {
            seeds: 1,
            fast: true,
            out_dir: PathBuf::from("/tmp/eta2_harness_test"),
        };
        assert_eq!(s.survey(0).name, "survey");
        assert_eq!(s.sfv(0).name, "sfv");
        assert_eq!(s.synthetic(0).name, "synthetic");
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row("x", &[1.0, 2.5]);
        assert!(r.contains("1.0000"));
        assert!(r.contains("2.5000"));
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join("eta2_harness_json");
        let s = Settings {
            seeds: 1,
            fast: true,
            out_dir: dir.clone(),
        };
        s.write_json("unit_test", &serde_json::json!({"ok": true}));
        assert!(dir.join("unit_test.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
