//! One function per paper table/figure (§6), plus the ablations from
//! DESIGN.md. Each prints the same rows/series the paper reports and
//! returns a JSON value that the binaries persist.

use crate::harness::{banner, row, Settings};
use eta2_core::truth::mle::MleConfig;
use eta2_sim::config::MinCostTuning;
use eta2_sim::sweep::{average_over_seeds, sweep_tau};
use eta2_sim::{train_embedding_for, ApproachKind, FaultConfig, SimConfig, Simulation};
use eta2_stats::chi_square::NormalityGofTest;
use eta2_stats::descriptive::{empirical_cdf, Histogram, Summary};
use eta2_stats::Normal;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde_json::{json, Value};

/// The τ grid shared by the capability sweeps (Figs. 6/9/10/11).
const TAUS: [f64; 5] = [6.0, 9.0, 12.0, 15.0, 18.0];

/// Fig. 2 — the observation error `(x_ij − μ_j)/std_j` accumulated over all
/// tasks follows the standard normal.
pub fn fig2(settings: &Settings) -> Value {
    banner("FIG2", "observation error distribution vs N(0,1)");
    let mut out = serde_json::Map::new();
    for (name, ds) in [("survey", settings.survey(0)), ("sfv", settings.sfv(0))] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hist = Histogram::new(-4.0, 4.0, 32).expect("valid range");
        for t in &ds.tasks {
            let obs: Vec<f64> = ds
                .users
                .iter()
                .map(|u| ds.observe(u.id, t, &mut rng))
                .collect();
            let std = eta2_stats::descriptive::population_std(&obs)
                .unwrap_or(1.0)
                .max(1e-9);
            hist.extend(obs.iter().map(|x| (x - t.ground_truth) / std));
        }
        let normal = Normal::standard();
        eta2_obs::progress!("\n{name}: bin center | empirical density | N(0,1) pdf");
        let mut series = Vec::new();
        for b in 0..32 {
            let c = hist.bin_center(b);
            let d = hist.density(b);
            let p = normal.pdf(c);
            if b % 2 == 0 {
                eta2_obs::progress!("  {c:>6.2} {d:>10.4} {p:>10.4}");
            }
            series.push(json!({"center": c, "density": d, "normal_pdf": p}));
        }
        out.insert(name.to_string(), Value::Array(series));
    }
    Value::Object(out)
}

/// Table 1 — non-rejection rate of the χ² normality test per task at
/// α ∈ {0.5, 0.25, 0.1, 0.05} on the survey dataset.
pub fn table1(settings: &Settings) -> Value {
    banner("TAB1", "chi-square normality non-rejection rate (survey)");
    let ds = settings.survey(0);
    let alphas = [0.5, 0.25, 0.1, 0.05];
    let mut out = serde_json::Map::new();

    // Allocation-sized per-task samples (~12 responders), as in the live
    // system.
    let sample_task = |task_idx: usize, rng: &mut StdRng, rng_inner: &mut StdRng| -> Vec<f64> {
        let mut ids: Vec<usize> = (0..ds.users.len()).collect();
        ids.shuffle(rng);
        ids.truncate(12.min(ds.users.len()));
        ids.iter()
            .map(|&i| ds.observe(ds.users[i].id, &ds.tasks[task_idx], rng_inner))
            .collect()
    };
    type PassFn<'a> = Box<dyn Fn(&[f64], f64) -> bool + 'a>;
    let variants: Vec<(&str, PassFn)> = vec![
        (
            "naive dof (paper's variant)",
            Box::new(|obs, alpha| {
                NormalityGofTest::naive()
                    .test(obs)
                    .map(|o| o.passes(alpha))
                    .unwrap_or(false)
            }),
        ),
        (
            "adjusted dof (k-3)",
            Box::new(|obs, alpha| {
                NormalityGofTest::default()
                    .test(obs)
                    .map(|o| o.passes(alpha))
                    .unwrap_or(false)
            }),
        ),
        (
            "Kolmogorov-Smirnov",
            Box::new(|obs, alpha| {
                eta2_stats::ks::ks_normality_test(obs)
                    .map(|o| o.passes(alpha))
                    .unwrap_or(false)
            }),
        ),
    ];
    for (label, passes) in variants {
        let rates: Vec<f64> = alphas
            .iter()
            .map(|&alpha| {
                let mut rng = StdRng::seed_from_u64(3);
                let mut rng_inner = StdRng::seed_from_u64(3);
                let mut passed = 0;
                for j in 0..ds.tasks.len() {
                    if passes(&sample_task(j, &mut rng, &mut rng_inner), alpha) {
                        passed += 1;
                    }
                }
                passed as f64 / ds.tasks.len() as f64
            })
            .collect();
        eta2_obs::progress!("{}", row(label, &rates));
        out.insert(
            label.to_string(),
            json!(alphas
                .iter()
                .zip(&rates)
                .map(|(&a, &r)| json!({"alpha": a, "pass_rate": r}))
                .collect::<Vec<_>>()),
        );
    }
    eta2_obs::progress!("(paper, naive variant: 87.18 / 88.46 / 89.74 / 89.74 %)");
    Value::Object(out)
}

/// Fig. 4 — estimation error under different (α, γ) for survey/SFV and
/// different α for the synthetic dataset.
pub fn fig4(settings: &Settings) -> Value {
    banner("FIG4", "estimation error vs parameters (alpha, gamma)");
    let seeds = (settings.seeds / 2).max(1);
    let alphas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let gammas = [0.3, 0.45, 0.6, 0.75];
    let mut out = serde_json::Map::new();

    for (name, ds) in [("survey", settings.survey(0)), ("sfv", settings.sfv(0))] {
        let base = settings.sim_config();
        let emb = train_embedding_for(&ds, &base).expect("embedding trains");
        eta2_obs::progress!("\n{name}: rows = alpha {alphas:?}, cols = gamma {gammas:?}");
        let mut grid = Vec::new();
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for &alpha in &alphas {
            let mut cells = Vec::new();
            for &gamma in &gammas {
                let sim = Simulation::new(SimConfig {
                    alpha,
                    gamma,
                    ..base
                });
                let m = average_over_seeds(
                    &sim,
                    ApproachKind::Eta2,
                    seeds,
                    0,
                    |_| ds.clone(),
                    emb.as_ref(),
                )
                .expect("simulation runs");
                if m.overall_error < best.0 {
                    best = (m.overall_error, alpha, gamma);
                }
                cells.push(m.overall_error);
                grid.push(json!({"alpha": alpha, "gamma": gamma, "error": m.overall_error}));
            }
            eta2_obs::progress!("{}", row(&format!("alpha={alpha}"), &cells));
        }
        eta2_obs::progress!(
            "best: error {:.4} at alpha={}, gamma={}",
            best.0,
            best.1,
            best.2
        );
        out.insert(name.to_string(), Value::Array(grid));
    }

    // Synthetic: domains known, only alpha matters.
    let ds = settings.synthetic(0);
    let mut cells = Vec::new();
    let mut series = Vec::new();
    for &alpha in &alphas {
        let sim = Simulation::new(SimConfig {
            alpha,
            ..settings.sim_config()
        });
        let m = average_over_seeds(&sim, ApproachKind::Eta2, seeds, 0, |_| ds.clone(), None)
            .expect("simulation runs");
        cells.push(m.overall_error);
        series.push(json!({"alpha": alpha, "error": m.overall_error}));
    }
    eta2_obs::progress!("\nsynthetic (alpha only): {alphas:?}");
    eta2_obs::progress!("{}", row("error", &cells));
    out.insert("synthetic".into(), Value::Array(series));
    Value::Object(out)
}

/// Fig. 5 — estimation error per day, ETA² vs the four comparison
/// approaches, on all three datasets.
pub fn fig5(settings: &Settings) -> Value {
    banner("FIG5", "estimation error over days");
    let mut out = serde_json::Map::new();
    for (name, ds) in [
        ("survey", settings.survey(0)),
        ("sfv", settings.sfv(0)),
        ("synthetic", settings.synthetic(0)),
    ] {
        let config = settings.sim_config();
        let emb = train_embedding_for(&ds, &config).expect("embedding trains");
        let sim = Simulation::new(config);
        eta2_obs::progress!("\n{name}: columns = day 1..5");
        let mut per_ds = serde_json::Map::new();
        for approach in ApproachKind::COMPARISON {
            let m = average_over_seeds(
                &sim,
                approach,
                settings.seeds,
                0,
                |_| ds.clone(),
                emb.as_ref(),
            )
            .expect("simulation runs");
            eta2_obs::progress!("{}", row(approach.name(), &m.daily_error));
            per_ds.insert(approach.name().into(), json!(m.daily_error));
        }
        out.insert(name.to_string(), Value::Object(per_ds));
    }
    Value::Object(out)
}

/// Fig. 6 — estimation error vs average processing capability τ.
pub fn fig6(settings: &Settings) -> Value {
    banner("FIG6", "estimation error vs average processing capability");
    let mut out = serde_json::Map::new();
    for (name, ds) in [
        ("survey", settings.survey(0)),
        ("sfv", settings.sfv(0)),
        ("synthetic", settings.synthetic(0)),
    ] {
        let config = settings.sim_config();
        let emb = train_embedding_for(&ds, &config).expect("embedding trains");
        let sim = Simulation::new(config);
        let seeds = if name == "sfv" {
            (settings.seeds / 2).max(1)
        } else {
            settings.seeds
        };
        eta2_obs::progress!("\n{name}: columns = tau {TAUS:?}");
        let mut per_ds = serde_json::Map::new();
        for approach in ApproachKind::COMPARISON {
            let points = sweep_tau(&sim, approach, &TAUS, seeds, |_| ds.clone(), emb.as_ref())
                .expect("tau sweep runs");
            let errors: Vec<f64> = points.iter().map(|p| p.metrics.overall_error).collect();
            eta2_obs::progress!("{}", row(approach.name(), &errors));
            per_ds.insert(
                approach.name().into(),
                json!(points
                    .iter()
                    .map(|p| json!({"tau": p.x, "error": p.metrics.overall_error}))
                    .collect::<Vec<_>>()),
            );
        }
        out.insert(name.to_string(), Value::Object(per_ds));
    }
    Value::Object(out)
}

/// Fig. 7 — observation error vs (estimated) user expertise, boxplot
/// summaries per expertise bin, survey + SFV.
pub fn fig7(settings: &Settings) -> Value {
    banner("FIG7", "observation error vs user expertise");
    let mut out = serde_json::Map::new();
    let edges = [0.0, 0.5, 1.0, 1.5, 2.0, f64::INFINITY];
    for (name, ds) in [("survey", settings.survey(0)), ("sfv", settings.sfv(0))] {
        let config = SimConfig {
            record_observations: true,
            ..settings.sim_config()
        };
        let emb = train_embedding_for(&ds, &config).expect("embedding trains");
        let sim = Simulation::new(config);
        let m = average_over_seeds(
            &sim,
            ApproachKind::Eta2,
            settings.seeds.min(5),
            0,
            |_| ds.clone(),
            emb.as_ref(),
        )
        .expect("simulation runs");
        let mut per_ds = serde_json::Map::new();
        for (label, by_true) in [("estimated", false), ("true", true)] {
            eta2_obs::progress!(
                "\n{name} (binned by {label} expertise): bin | n | q1 | median | q3"
            );
            let mut bins = Vec::new();
            for w in edges.windows(2) {
                let errs: Vec<f64> = m
                    .observation_records
                    .iter()
                    .filter(|&&(est, tru, _)| {
                        let u = if by_true { tru } else { est };
                        u >= w[0] && u < w[1]
                    })
                    .map(|&(_, _, e)| e)
                    .collect();
                if errs.len() < 3 {
                    continue;
                }
                let s = Summary::from_slice(&errs).expect("non-empty, finite");
                eta2_obs::progress!(
                    "  [{:>4.1}, {:>4.1}) {:>7} {:>8.3} {:>8.3} {:>8.3}",
                    w[0],
                    w[1],
                    s.count,
                    s.q1,
                    s.median,
                    s.q3
                );
                bins.push(json!({
                    "lo": w[0], "hi": w[1], "count": s.count,
                    "q1": s.q1, "median": s.median, "q3": s.q3,
                }));
            }
            per_ds.insert(label.to_string(), Value::Array(bins));
        }
        out.insert(name.to_string(), Value::Object(per_ds));
    }
    Value::Object(out)
}

/// Fig. 8 — robustness to non-normal observations: estimation error as a
/// growing fraction of observations comes from a matched-moments uniform.
pub fn fig8(settings: &Settings) -> Value {
    banner("FIG8", "sensitivity to normality bias (synthetic)");
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let sim = Simulation::new(settings.sim_config());
    let mut errors = Vec::new();
    for &f in &fractions {
        let m = average_over_seeds(
            &sim,
            ApproachKind::Eta2,
            settings.seeds,
            0,
            |_seed| {
                let mut ds = settings.synthetic(0);
                ds.set_uniform_bias(f);
                ds
            },
            None,
        )
        .expect("simulation runs");
        errors.push(m.overall_error);
    }
    eta2_obs::progress!("fraction uniform: {fractions:?}");
    eta2_obs::progress!("{}", row("ETA2 error", &errors));
    json!(fractions
        .iter()
        .zip(&errors)
        .map(|(&f, &e)| json!({"bias_fraction": f, "error": e}))
        .collect::<Vec<_>>())
}

/// Figs. 9 & 10 — ETA² vs ETA²-mc across capability: estimation error
/// (Fig. 9) and allocation cost (Fig. 10), several round budgets c°.
pub fn fig9_10(settings: &Settings) -> Value {
    banner(
        "FIG9/10",
        "ETA2 vs ETA2-mc: error and allocation cost vs tau",
    );
    let mut out = serde_json::Map::new();
    for (name, ds) in [
        ("survey", settings.survey(0)),
        ("sfv", settings.sfv(0)),
        ("synthetic", settings.synthetic(0)),
    ] {
        let base = settings.sim_config();
        let emb = train_embedding_for(&ds, &base).expect("embedding trains");
        let seeds = (settings.seeds / 2).max(1);
        eta2_obs::progress!("\n{name}: columns = tau {TAUS:?}");
        let mut per_ds = serde_json::Map::new();

        let mut run = |label: String, config: SimConfig, approach: ApproachKind| {
            let sim = Simulation::new(config);
            let points = sweep_tau(&sim, approach, &TAUS, seeds, |_| ds.clone(), emb.as_ref())
                .expect("tau sweep runs");
            let errors: Vec<f64> = points.iter().map(|p| p.metrics.overall_error).collect();
            let costs: Vec<f64> = points.iter().map(|p| p.metrics.total_cost).collect();
            eta2_obs::progress!("{}", row(&format!("{label} error"), &errors));
            eta2_obs::progress!("{}", row(&format!("{label} cost"), &costs));
            per_ds.insert(
                label,
                json!(points
                    .iter()
                    .map(|p| json!({
                        "tau": p.x,
                        "error": p.metrics.overall_error,
                        "cost": p.metrics.total_cost,
                    }))
                    .collect::<Vec<_>>()),
            );
        };

        run("ETA2".into(), base, ApproachKind::Eta2);
        for budget in [25.0, 50.0, 100.0] {
            run(
                format!("ETA2-mc c°={budget}"),
                SimConfig {
                    min_cost: MinCostTuning {
                        round_budget: budget,
                        ..MinCostTuning::default()
                    },
                    ..base
                },
                ApproachKind::Eta2MinCost,
            );
        }
        // The paper's own (non-robustified) estimator produces larger
        // expertise values, so its quality gate passes with far fewer
        // users — this row reproduces the paper's cost separation.
        run(
            "ETA2-mc paper-exact".into(),
            SimConfig {
                mle: MleConfig {
                    leave_one_out: false,
                    prior_strength: 0.0,
                    ..MleConfig::default()
                },
                ..base
            },
            ApproachKind::Eta2MinCost,
        );
        out.insert(name.to_string(), Value::Object(per_ds));
    }
    eta2_obs::progress!("(quality requirement for ETA2-mc: error < 0.5 at 95% confidence)");
    Value::Object(out)
}

/// Fig. 11 — expertise estimation error vs capability (synthetic, where the
/// true expertise is known).
pub fn fig11(settings: &Settings) -> Value {
    banner(
        "FIG11",
        "expertise estimation error vs capability (synthetic)",
    );
    let ds = settings.synthetic(0);
    let sim = Simulation::new(settings.sim_config());
    let points = sweep_tau(
        &sim,
        ApproachKind::Eta2,
        &TAUS,
        settings.seeds,
        |_| ds.clone(),
        None,
    )
    .expect("tau sweep runs");
    let errors: Vec<f64> = points
        .iter()
        .map(|p| p.metrics.expertise_error.expect("synthetic reports it"))
        .collect();
    eta2_obs::progress!("tau: {TAUS:?}");
    eta2_obs::progress!("{}", row("expertise MAE", &errors));
    json!(points
        .iter()
        .zip(&errors)
        .map(|(p, &e)| json!({"tau": p.x, "expertise_mae": e}))
        .collect::<Vec<_>>())
}

/// Fig. 12 — CDF of MLE iterations until convergence, all three datasets.
pub fn fig12(settings: &Settings) -> Value {
    banner("FIG12", "CDF of truth-analysis iterations to convergence");
    let mut out = serde_json::Map::new();
    for (name, ds) in [
        ("survey", settings.survey(0)),
        ("sfv", settings.sfv(0)),
        ("synthetic", settings.synthetic(0)),
    ] {
        let config = settings.sim_config();
        let emb = train_embedding_for(&ds, &config).expect("embedding trains");
        let sim = Simulation::new(config);
        let m = average_over_seeds(
            &sim,
            ApproachKind::Eta2,
            settings.seeds.min(5),
            0,
            |_| ds.clone(),
            emb.as_ref(),
        )
        .expect("simulation runs");
        let iters: Vec<f64> = m.mle_iterations.iter().map(|&i| i as f64).collect();
        let cdf = empirical_cdf(&iters);
        let at = |x: f64| -> f64 {
            cdf.iter()
                .rev()
                .find(|&&(v, _)| v <= x)
                .map_or(0.0, |&(_, f)| f)
        };
        eta2_obs::progress!(
            "{name:<10} P(iters<=5) = {:.2}  P(<=10) = {:.2}  P(<=20) = {:.2}  P(<=60) = {:.2}",
            at(5.0),
            at(10.0),
            at(20.0),
            at(60.0)
        );
        out.insert(
            name.to_string(),
            json!({"p_le_5": at(5.0), "p_le_10": at(10.0), "p_le_20": at(20.0), "p_le_60": at(60.0)}),
        );
    }
    eta2_obs::progress!("(paper: majority within 10; survey/SFV within 20; synthetic within 60)");
    Value::Object(out)
}

/// Table 2 — number of users assigned per task and the average true
/// expertise of the assignees (synthetic, max-quality allocation).
///
/// Run in the paper-exact expertise mode (no leave-one-out, no prior):
/// the expertise-vs-count gradient the paper reports is a product of that
/// update's aggressive estimates; the robustified default flattens it
/// (both are reported).
pub fn table2(settings: &Settings) -> Value {
    banner(
        "TAB2",
        "users per task and their average expertise (synthetic)",
    );
    let ds = settings.synthetic(0);
    let buckets = [(2usize, 5usize), (6, 10), (11, 15), (16, 20)];
    let mut out = serde_json::Map::new();
    for (label, mle) in [
        (
            "paper-exact update",
            MleConfig {
                leave_one_out: false,
                prior_strength: 0.0,
                ..MleConfig::default()
            },
        ),
        ("robustified update", MleConfig::default()),
    ] {
        let sim = Simulation::new(SimConfig {
            mle,
            ..settings.sim_config()
        });
        let m = average_over_seeds(
            &sim,
            ApproachKind::Eta2,
            settings.seeds.min(5),
            0,
            |_| ds.clone(),
            None,
        )
        .expect("simulation runs");
        eta2_obs::progress!("\n{label}: users-assigned bucket | % of tasks | avg expertise");
        let total = m.assignment_stats.len().max(1);
        let mut rows = Vec::new();
        for &(lo, hi) in &buckets {
            let in_bucket: Vec<&(usize, f64)> = m
                .assignment_stats
                .iter()
                .filter(|&&(n, _)| n >= lo && n <= hi)
                .collect();
            let pct = 100.0 * in_bucket.len() as f64 / total as f64;
            let avg = if in_bucket.is_empty() {
                f64::NAN
            } else {
                in_bucket.iter().map(|&&(_, e)| e).sum::<f64>() / in_bucket.len() as f64
            };
            eta2_obs::progress!("  [{lo:>2}, {hi:>2}] {pct:>8.1}% {avg:>8.2}");
            rows.push(json!({"lo": lo, "hi": hi, "pct_tasks": pct, "avg_expertise": avg}));
        }
        out.insert(label.to_string(), Value::Array(rows));
    }
    eta2_obs::progress!(
        "(paper: [2,5] 20.9%/2.57, [6,10] 40.3%/1.85, [11,15] 20.9%/1.37, [16,20] 17.7%/1.27)"
    );
    Value::Object(out)
}

/// Ablations called out in DESIGN.md: leave-one-out expertise scoring, the
/// ½-approximation second greedy pass, expertise-awareness vs a single
/// collapsed domain, and clustering quality (oracle vs learned vs none).
pub fn ablations(settings: &Settings) -> Value {
    banner("ABLATIONS", "design-choice ablations");
    let seeds = (settings.seeds / 2).max(2);
    let mut out = serde_json::Map::new();

    // (1) Leave-one-out + prior in the expertise update.
    {
        let ds = settings.synthetic(0);
        eta2_obs::progress!("\nablation_loo_expertise (synthetic, ETA2 overall error):");
        let mut rows = Vec::new();
        for (label, loo, prior) in [
            ("robust (LOO + prior)", true, 1.0),
            ("LOO only", true, 0.0),
            ("prior only", false, 1.0),
            ("paper-exact", false, 0.0),
        ] {
            let sim = Simulation::new(SimConfig {
                mle: MleConfig {
                    leave_one_out: loo,
                    prior_strength: prior,
                    ..MleConfig::default()
                },
                ..settings.sim_config()
            });
            let m = average_over_seeds(&sim, ApproachKind::Eta2, seeds, 0, |_| ds.clone(), None)
                .expect("simulation runs");
            eta2_obs::progress!("  {label:<24} {:.4}", m.overall_error);
            rows.push(json!({"variant": label, "error": m.overall_error}));
        }
        out.insert("loo_expertise".into(), Value::Array(rows));
    }

    // (2) The ½-approximation second pass under heavy-tailed durations.
    {
        use eta2_core::allocation::{MaxQualityAllocator, MaxQualityConfig};
        use eta2_core::model::{DomainId, ExpertiseMatrix, UserId};
        use rand::Rng;
        eta2_obs::progress!("\nablation_approx_second_pass (objective, heavy-tailed durations):");
        let mut rng = StdRng::seed_from_u64(1);
        let mut with_sum = 0.0;
        let mut without_sum = 0.0;
        let trials = 50;
        for _ in 0..trials {
            // Adversarial mix for time-normalized greedy: a swarm of tiny
            // tasks in a domain where users are weak (high per-hour
            // efficiency, low value) plus a few capacity-sized tasks in a
            // domain where users are strong (the valuable ones a per-hour
            // greedy can lock itself out of).
            let mut tasks: Vec<eta2_core::model::Task> = (0..25u32)
                .map(|j| {
                    eta2_core::model::Task::new(
                        eta2_core::model::TaskId(j),
                        DomainId(0),
                        rng.gen_range(0.05..0.2),
                        1.0,
                    )
                })
                .collect();
            for j in 25..30u32 {
                tasks.push(eta2_core::model::Task::new(
                    eta2_core::model::TaskId(j),
                    DomainId(1),
                    rng.gen_range(7.0..10.0),
                    1.0,
                ));
            }
            let users: Vec<eta2_core::model::UserProfile> = (0..8)
                .map(|i| eta2_core::model::UserProfile::new(UserId(i), rng.gen_range(8.0..11.0)))
                .collect();
            let mut ex = ExpertiseMatrix::new(8);
            for i in 0..8 {
                ex.set(UserId(i), DomainId(0), rng.gen_range(0.05..0.3));
                ex.set(UserId(i), DomainId(1), rng.gen_range(2.0..3.0));
            }
            let with = MaxQualityAllocator::default();
            let without = MaxQualityAllocator::new(MaxQualityConfig {
                use_approximation_pass: false,
                ..MaxQualityConfig::default()
            });
            with_sum += with.objective(&tasks, &ex, &with.allocate(&tasks, &users, &ex));
            without_sum += with.objective(&tasks, &ex, &without.allocate(&tasks, &users, &ex));
        }
        eta2_obs::progress!("  with second pass   : {:.4}", with_sum / trials as f64);
        eta2_obs::progress!("  without second pass: {:.4}", without_sum / trials as f64);
        out.insert(
            "approx_second_pass".into(),
            json!({"with": with_sum / trials as f64, "without": without_sum / trials as f64}),
        );
    }

    // (3) Expertise-awareness: normal ETA2 vs domain-collapsed ETA2.
    {
        let ds = settings.synthetic(0);
        eta2_obs::progress!("\nablation_expertise_vs_reliability (synthetic, overall error):");
        let normal = average_over_seeds(
            &Simulation::new(settings.sim_config()),
            ApproachKind::Eta2,
            seeds,
            0,
            |_| ds.clone(),
            None,
        )
        .expect("simulation runs");
        let collapsed = average_over_seeds(
            &Simulation::new(SimConfig {
                collapse_domains: true,
                ..settings.sim_config()
            }),
            ApproachKind::Eta2,
            seeds,
            0,
            |_| ds.clone(),
            None,
        )
        .expect("simulation runs");
        eta2_obs::progress!("  per-domain expertise  : {:.4}", normal.overall_error);
        eta2_obs::progress!("  collapsed (one domain): {:.4}", collapsed.overall_error);
        out.insert(
            "expertise_vs_reliability".into(),
            json!({"per_domain": normal.overall_error, "collapsed": collapsed.overall_error}),
        );
    }

    // (4) Clustering quality: learned clusters vs oracle domains vs none.
    {
        let ds = settings.survey(0);
        eta2_obs::progress!("\nablation_clustering_quality (survey, overall error):");
        let config = settings.sim_config();
        let emb = train_embedding_for(&ds, &config).expect("embedding trains");
        let learned = average_over_seeds(
            &Simulation::new(config),
            ApproachKind::Eta2,
            seeds,
            0,
            |_| ds.clone(),
            emb.as_ref(),
        )
        .expect("simulation runs");
        let mut oracle_ds = ds.clone();
        oracle_ds.domains_known = true;
        let oracle = average_over_seeds(
            &Simulation::new(config),
            ApproachKind::Eta2,
            seeds,
            0,
            |_| oracle_ds.clone(),
            None,
        )
        .expect("simulation runs");
        let collapsed = average_over_seeds(
            &Simulation::new(SimConfig {
                collapse_domains: true,
                ..config
            }),
            ApproachKind::Eta2,
            seeds,
            0,
            |_| ds.clone(),
            None,
        )
        .expect("simulation runs");
        eta2_obs::progress!("  oracle domains : {:.4}", oracle.overall_error);
        eta2_obs::progress!("  learned (pipeline): {:.4}", learned.overall_error);
        eta2_obs::progress!("  no domains     : {:.4}", collapsed.overall_error);
        out.insert(
            "clustering_quality".into(),
            json!({
                "oracle": oracle.overall_error,
                "learned": learned.overall_error,
                "collapsed": collapsed.overall_error,
            }),
        );
    }

    Value::Object(out)
}

/// Fault sweep — not a paper figure: estimation error and the robustness
/// counters as the injected dropout / corruption rate grows (synthetic,
/// ETA² vs the random baseline). Documents the graceful-degradation
/// behaviour specified in DESIGN.md §7: error should rise smoothly with the
/// fault rate while every run still completes.
pub fn fault_sweep(settings: &Settings) -> Value {
    banner("FAULTS", "graceful degradation vs injected fault rate");
    let rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let seeds = (settings.seeds / 2).max(1);
    let ds = settings.synthetic(0);
    let mut out = serde_json::Map::new();
    for axis in ["dropout", "corrupt"] {
        eta2_obs::progress!("\n{axis} rate: {rates:?}");
        let mut per_axis = serde_json::Map::new();
        for approach in [ApproachKind::Eta2, ApproachKind::Baseline] {
            let mut errors = Vec::new();
            let mut points = Vec::new();
            for &rate in &rates {
                let faults = match axis {
                    "dropout" => FaultConfig {
                        dropout_rate: rate,
                        ..FaultConfig::default()
                    },
                    _ => FaultConfig {
                        corrupt_rate: rate,
                        ..FaultConfig::default()
                    },
                };
                let sim = Simulation::new(SimConfig {
                    faults,
                    ..settings.sim_config()
                });
                let m = average_over_seeds(&sim, approach, seeds, 0, |_| ds.clone(), None)
                    .expect("faulty runs degrade instead of failing");
                errors.push(m.overall_error);
                points.push(json!({
                    "rate": rate,
                    "error": m.overall_error,
                    "faults_injected": m.faults_injected,
                    "alloc_retries": m.alloc_retries,
                    "uncovered_tasks": m.uncovered_tasks,
                }));
            }
            eta2_obs::progress!("{}", row(approach.name(), &errors));
            per_axis.insert(approach.name().into(), Value::Array(points));
        }
        out.insert(axis.to_string(), Value::Object(per_axis));
    }
    Value::Object(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> Settings {
        Settings {
            seeds: 2,
            fast: true,
            out_dir: std::env::temp_dir().join("eta2_experiments_test"),
            threads: 0,
        }
    }

    #[test]
    fn fig2_produces_both_datasets() {
        let v = fig2(&fast_settings());
        assert!(v.get("survey").is_some());
        assert!(v.get("sfv").is_some());
    }

    #[test]
    fn table1_rates_are_probabilities() {
        let v = table1(&fast_settings());
        for (_, rows) in v.as_object().unwrap() {
            for r in rows.as_array().unwrap() {
                let p = r["pass_rate"].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn fig8_errors_finite_and_bounded() {
        let v = fig8(&fast_settings());
        for point in v.as_array().unwrap() {
            assert!(point["error"].as_f64().unwrap().is_finite());
        }
    }

    #[test]
    fn fault_sweep_completes_with_finite_errors() {
        let v = fault_sweep(&fast_settings());
        for (_, per_axis) in v.as_object().unwrap() {
            for (_, points) in per_axis.as_object().unwrap() {
                for p in points.as_array().unwrap() {
                    assert!(p["error"].as_f64().unwrap().is_finite());
                }
            }
        }
    }

    #[test]
    fn fig12_cdf_monotone() {
        let v = fig12(&fast_settings());
        for (_, stats) in v.as_object().unwrap() {
            let p5 = stats["p_le_5"].as_f64().unwrap();
            let p60 = stats["p_le_60"].as_f64().unwrap();
            assert!(p5 <= p60 + 1e-12);
        }
    }
}
