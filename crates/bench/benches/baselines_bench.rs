//! Criterion micro-benchmark: the four comparison truth-discovery methods
//! on a common observation set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta2_core::model::{ObservationSet, TaskId, UserId};
use eta2_core::truth::baselines::{
    AverageLog, HubsAuthorities, MeanBaseline, TruthFinder, TruthMethod,
};
use rand::{Rng, SeedableRng};

fn observations(n_users: usize, n_tasks: u32, seed: u64) -> ObservationSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut obs = ObservationSet::new();
    for j in 0..n_tasks {
        let mu: f64 = rng.gen_range(0.0..20.0);
        for i in 0..n_users {
            obs.insert(UserId(i as u32), TaskId(j), mu + rng.gen_range(-3.0..3.0));
        }
    }
    obs
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_truth_methods");
    group.sample_size(10);
    let n_users = 60;
    let obs = observations(n_users, 150, 0);
    let methods: Vec<Box<dyn TruthMethod>> = vec![
        Box::new(MeanBaseline),
        Box::new(HubsAuthorities::default()),
        Box::new(AverageLog::default()),
        Box::new(TruthFinder::default()),
    ];
    for method in methods {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name().replace(' ', "_")),
            &obs,
            |b, obs| b.iter(|| method.estimate(obs, n_users)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
