//! Criterion micro-benchmark: the Algorithm-1 greedy allocator as the
//! users × tasks instance grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta2_core::allocation::MaxQualityAllocator;
use eta2_core::model::{DomainId, ExpertiseMatrix, Task, TaskId, UserId, UserProfile};
use rand::{Rng, SeedableRng};

fn instance(
    n_users: usize,
    n_tasks: u32,
    seed: u64,
) -> (Vec<Task>, Vec<UserProfile>, ExpertiseMatrix) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|j| {
            Task::new(
                TaskId(j),
                DomainId(rng.gen_range(0..8)),
                rng.gen_range(0.5..1.5),
                1.0,
            )
        })
        .collect();
    let users: Vec<UserProfile> = (0..n_users)
        .map(|i| UserProfile::new(UserId(i as u32), rng.gen_range(8.0..16.0)))
        .collect();
    let mut ex = ExpertiseMatrix::new(n_users);
    for i in 0..n_users {
        for d in 0..8 {
            ex.set(UserId(i as u32), DomainId(d), rng.gen_range(0.05..3.0));
        }
    }
    (tasks, users, ex)
}

fn bench_max_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_quality_allocation");
    group.sample_size(10);
    for &(users, tasks) in &[(50usize, 100u32), (100, 200), (100, 500)] {
        let inst = instance(users, tasks, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{users}u_x_{tasks}t")),
            &inst,
            |b, (tasks, users, ex)| {
                let alloc = MaxQualityAllocator::default();
                b.iter(|| alloc.allocate(tasks, users, ex));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_max_quality);
criterion_main!(benches);
