//! Criterion micro-benchmark: skip-gram training throughput on the topic
//! corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta2_embed::corpus::TopicCorpus;
use eta2_embed::{SkipGramConfig, SkipGramTrainer};

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("skipgram_training");
    group.sample_size(10);
    for &docs in &[50usize, 200] {
        let sentences = TopicCorpus::builtin().generate(docs, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{docs}docs")),
            &sentences,
            |b, sentences| {
                let trainer = SkipGramTrainer::new(SkipGramConfig {
                    dim: 24,
                    epochs: 1,
                    ..SkipGramConfig::default()
                });
                b.iter(|| trainer.train_sentences(sentences).expect("vocab"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
