//! Criterion micro-benchmark: expertise-aware MLE truth analysis as the
//! batch grows in users × tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
use eta2_core::truth::mle::ExpertiseAwareMle;
use rand::{Rng, SeedableRng};

fn batch(n_users: usize, n_tasks: u32, n_domains: u32, seed: u64) -> (Vec<Task>, ObservationSet) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|j| Task::new(TaskId(j), DomainId(j % n_domains), 1.0, 1.0))
        .collect();
    let mut obs = ObservationSet::new();
    for t in &tasks {
        let mu: f64 = rng.gen_range(0.0..20.0);
        for i in 0..n_users {
            obs.insert(UserId(i as u32), t.id, mu + rng.gen_range(-2.0..2.0));
        }
    }
    (tasks, obs)
}

fn bench_mle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mle_truth_analysis");
    group.sample_size(10);
    for &(users, tasks) in &[(20usize, 50u32), (50, 200), (100, 500)] {
        let (task_list, obs) = batch(users, tasks, 8, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{users}u_x_{tasks}t")),
            &(task_list, obs),
            |b, (task_list, obs)| {
                let mle = ExpertiseAwareMle::default();
                b.iter(|| mle.estimate(task_list, obs, users));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mle);
criterion_main!(benches);
