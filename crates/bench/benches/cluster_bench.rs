//! Criterion micro-benchmark: average-linkage agglomeration and dynamic
//! insertion as the task count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eta2_cluster::{DistanceMatrix, DynamicClusterer, HierarchicalClusterer};
use rand::{Rng, SeedableRng};

fn points(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let center = (i % 8) as f32 * 10.0;
            (0..16)
                .map(|_| center + rng.gen_range(-1.0..1.0f32))
                .collect()
        })
        .collect()
}

fn metric(a: &Vec<f32>, b: &Vec<f32>) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum()
}

fn bench_batch_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_clustering");
    group.sample_size(10);
    for &n in &[100usize, 400, 800] {
        let pts = points(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| {
                let dm = DistanceMatrix::from_fn(pts.len(), |i, j| metric(&pts[i], &pts[j]));
                HierarchicalClusterer::new(0.3).cluster(&dm)
            });
        });
    }
    group.finish();
}

fn bench_dynamic_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_insertion");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut dc = DynamicClusterer::new(metric, 0.3);
                dc.warm_up(points(n, 1));
                dc.add(points(n / 5, 2))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_clustering, bench_dynamic_insertion);
criterion_main!(benches);
