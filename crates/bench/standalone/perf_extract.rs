//! Dependency-free extraction of the hot-path kernels, used to produce the
//! committed BENCH_perf.json on hosts where the full workspace cannot be
//! built. Mirrors the algorithmic structure of:
//!   * crates/core/src/truth/reference.rs (BTreeMap-based reference MLE)
//!   * crates/core/src/truth/mle.rs       (compact-slot SoA shard MLE)
//!   * crates/core/src/allocation/max_quality.rs (scan vs lazy-heap greedy)
//!   * crates/embed/src/skipgram.rs       (scalar vs four-lane SGNS pair kernel)
//! Parity is asserted inside the harness: the vectorized MLE must match the
//! reference within PARITY_REL_TOL (lane reassociation and the hoisted
//! 1/sigma multiply make it tolerance-close, not bit-identical) with the
//! same iteration count; greedy pick sequences must be identical; the
//! four-lane skip-gram embedding must stay within cosine 1 - 1e-3 of the
//! scalar kernel's.
//! Run: rustc -O perf_extract.rs && ./perf_extract

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::time::Instant;

// ---------- tiny RNG (splitmix64) ----------
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
    fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
    fn usize(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
    fn f32(&mut self) -> f32 {
        self.f64() as f32
    }
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    let s = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    s * y
}

fn time_runs<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, f64, T) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        let s = t0.elapsed().as_secs_f64();
        best = best.min(s);
        total += s;
        last = Some(out);
    }
    (best, total / reps as f64, last.unwrap())
}

// ---------- MLE world ----------
struct World {
    n_users: usize,
    n_domains: u32,
    /// per task: (domain, observations (user, value))
    tasks: Vec<(u32, Vec<(u32, f64)>)>,
}

fn mle_world(n_tasks: u32, n_users: usize, n_domains: u32, seed: u64) -> World {
    let mut rng = Rng::new(seed);
    let skills: Vec<f64> = (0..n_users).map(|_| rng.range(0.2, 3.0)).collect();
    let mut tasks = Vec::new();
    for j in 0..n_tasks {
        let truth = rng.range(-50.0, 50.0);
        let mut obs = Vec::new();
        for (i, &skill) in skills.iter().enumerate() {
            if !rng.bool(0.8) {
                continue;
            }
            let noise = rng.range(-1.0, 1.0);
            obs.push((i as u32, truth + 3.0 * noise / skill));
        }
        if !obs.is_empty() {
            tasks.push((j % n_domains, obs));
        }
    }
    World {
        n_users,
        n_domains,
        tasks,
    }
}

const CONV: f64 = 0.05;
const MAX_ITERS: usize = 100;
const FLOOR: f64 = 1e-3;
const CAP: f64 = 50.0;
const SIGMA_FLOOR: f64 = 1e-6;
const PRIOR: f64 = 1.0;
/// Mirrors truth::PARITY_REL_TOL: the vectorized kernel must agree with
/// the reference to nine significant digits on every truth estimate.
const PARITY_REL_TOL: f64 = 1e-9;

fn relative_change(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.abs().max(1e-9)
}

/// Mirrors reference.rs: BTreeMap-backed expertise lookups, map-keyed
/// truths, per-iteration accumulator map allocation.
fn mle_reference(w: &World) -> (Vec<f64>, usize) {
    let mut domains: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    let get = |domains: &BTreeMap<u32, Vec<f64>>, i: u32, d: u32| -> f64 {
        domains.get(&d).map_or(1.0, |v| v[i as usize])
    };
    let mut truths: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    let mut prev_mu: BTreeMap<usize, f64> = BTreeMap::new();
    let mut iterations = 0;
    while iterations < MAX_ITERS {
        iterations += 1;
        for (j, (d, obs)) in w.tasks.iter().enumerate() {
            let mut wsum = 0.0;
            let mut wxsum = 0.0;
            for &(user, x) in obs {
                let u = get(&domains, user, *d).max(FLOOR);
                wsum += u * u;
                wxsum += u * u * x;
            }
            let mu = wxsum / wsum;
            let mut ss = 0.0;
            for &(user, x) in obs {
                let u = get(&domains, user, *d).max(FLOOR);
                ss += u * u * (x - mu) * (x - mu);
            }
            let sigma = (ss / obs.len() as f64).sqrt().max(SIGMA_FLOOR);
            truths.insert(j, (mu, sigma));
        }
        let mut acc: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
        for (j, (d, obs)) in w.tasks.iter().enumerate() {
            let (mu, sigma) = truths[&j];
            let (mut wsum, mut wxsum) = (0.0, 0.0);
            for &(user, x) in obs {
                let u = get(&domains, user, *d).max(FLOOR);
                wsum += u * u;
                wxsum += u * u * x;
            }
            let per_user = acc.entry(*d).or_insert_with(|| vec![(0.0, 0.0); w.n_users]);
            for &(user, x) in obs {
                let reference = if obs.len() > 1 {
                    let u = get(&domains, user, *d).max(FLOOR);
                    (wxsum - u * u * x) / (wsum - u * u)
                } else {
                    mu
                };
                let e = (x - reference) / sigma;
                let slot = &mut per_user[user as usize];
                slot.0 += 1.0;
                slot.1 += e * e;
            }
        }
        for (&domain, per_user) in &acc {
            for (i, &(n, dsum)) in per_user.iter().enumerate() {
                if n > 0.0 {
                    let raw = ((n + PRIOR) / (dsum + PRIOR).max(1e-12)).sqrt();
                    let u = if raw.is_finite() {
                        raw.clamp(FLOOR, CAP)
                    } else {
                        FLOOR
                    };
                    domains
                        .entry(domain)
                        .or_insert_with(|| vec![1.0; w.n_users])[i] = u;
                }
            }
        }
        let done = !prev_mu.is_empty()
            && w.tasks
                .iter()
                .enumerate()
                .all(|(j, _)| relative_change(prev_mu[&j], truths[&j].0) < CONV);
        prev_mu = truths.iter().map(|(&j, &(mu, _))| (j, mu)).collect();
        if done {
            break;
        }
    }
    let mut mus = vec![0.0; w.tasks.len()];
    for (&j, &(mu, _)) in &truths {
        mus[j] = mu;
    }
    (mus, iterations)
}

/// Mirrors mle.rs SlotMap: open-addressing user-id -> compact-slot map so
/// the one-lookup-per-observation build phase stays a few ns per report.
struct SlotMap {
    /// (key, slot + 1); slot + 1 == 0 marks an empty bucket.
    table: Vec<(u32, u32)>,
    mask: usize,
    len: usize,
}

impl SlotMap {
    fn new() -> Self {
        SlotMap {
            table: vec![(0, 0); 16],
            mask: 15,
            len: 0,
        }
    }

    #[inline]
    fn bucket(key: u32, mask: usize) -> usize {
        (key.wrapping_mul(0x9e37_79b9) as usize) & mask
    }

    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        let mask = cap - 1;
        let mut table = vec![(0u32, 0u32); cap];
        for &(k, sp1) in &self.table {
            if sp1 != 0 {
                let mut i = Self::bucket(k, mask);
                while table[i].1 != 0 {
                    i = (i + 1) & mask;
                }
                table[i] = (k, sp1);
            }
        }
        self.table = table;
        self.mask = mask;
    }

    /// Slot of `key`, assigning `next` on first sight.
    #[inline]
    fn get_or_insert(&mut self, key: u32, next: u32) -> u32 {
        if (self.len + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let mut i = Self::bucket(key, self.mask);
        loop {
            let (k, sp1) = self.table[i];
            if sp1 == 0 {
                self.table[i] = (key, next + 1);
                self.len += 1;
                return next;
            }
            if k == key {
                return sp1 - 1;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Mirrors mle.rs Shard: SoA layout over compact per-shard reporter slots,
/// pre-clamped squared-expertise column, four-lane reductions, hoisted
/// per-task 1/sigma, branch-free expertise pass over precomputed slot_n.
struct Shard {
    task_ids: Vec<usize>,
    task_off: Vec<usize>,
    obs_slot: Vec<u32>,
    obs_x: Vec<f64>,
    slot_of: SlotMap,
    slot_users: usize,
    slot_n: Vec<f64>,
    mu: Vec<f64>,
    sigma: Vec<f64>,
    wsum: Vec<f64>,
    wxsum: Vec<f64>,
    prev_mu: Vec<f64>,
    expertise: Vec<f64>,
    w_col: Vec<f64>,
    acc_d: Vec<f64>,
}

impl Shard {
    fn iterate(&mut self) {
        // (0) Hoist the expertise floor out of the observation loops.
        for s in 0..self.expertise.len() {
            let u = self.expertise[s].max(FLOOR);
            self.w_col[s] = u * u;
        }
        // (1) mu_j and sigma_j via four-lane reductions.
        for j in 0..self.task_ids.len() {
            let (lo, hi) = (self.task_off[j], self.task_off[j + 1]);
            let slots = &self.obs_slot[lo..hi];
            let xs = &self.obs_x[lo..hi];

            let mut lw = [0.0f64; 4];
            let mut lwx = [0.0f64; 4];
            let mut cs = slots.chunks_exact(4);
            let mut cx = xs.chunks_exact(4);
            for (s4, x4) in (&mut cs).zip(&mut cx) {
                for k in 0..4 {
                    let w = self.w_col[s4[k] as usize];
                    lw[k] += w;
                    lwx[k] += w * x4[k];
                }
            }
            for (&s1, &x1) in cs.remainder().iter().zip(cx.remainder()) {
                let w = self.w_col[s1 as usize];
                lw[0] += w;
                lwx[0] += w * x1;
            }
            let wsum = (lw[0] + lw[1]) + (lw[2] + lw[3]);
            let wxsum = (lwx[0] + lwx[1]) + (lwx[2] + lwx[3]);
            let mu = wxsum / wsum;

            let mut lss = [0.0f64; 4];
            let mut cs = slots.chunks_exact(4);
            let mut cx = xs.chunks_exact(4);
            for (s4, x4) in (&mut cs).zip(&mut cx) {
                for k in 0..4 {
                    let w = self.w_col[s4[k] as usize];
                    let d = x4[k] - mu;
                    lss[k] += w * d * d;
                }
            }
            for (&s1, &x1) in cs.remainder().iter().zip(cx.remainder()) {
                let w = self.w_col[s1 as usize];
                let d = x1 - mu;
                lss[0] += w * d * d;
            }
            let ss = (lss[0] + lss[1]) + (lss[2] + lss[3]);

            self.mu[j] = mu;
            self.sigma[j] = (ss / (hi - lo) as f64).sqrt().max(SIGMA_FLOOR);
            self.wsum[j] = wsum;
            self.wxsum[j] = wxsum;
        }
        // (2) Error accumulation with the LOO decision and sigma division
        // hoisted per task.
        self.acc_d.fill(0.0);
        for j in 0..self.task_ids.len() {
            let (lo, hi) = (self.task_off[j], self.task_off[j + 1]);
            let slots = &self.obs_slot[lo..hi];
            let xs = &self.obs_x[lo..hi];
            let inv_sigma = 1.0 / self.sigma[j];
            if hi - lo > 1 {
                let (wsum, wxsum) = (self.wsum[j], self.wxsum[j]);
                for (&s1, &xv) in slots.iter().zip(xs) {
                    let s = s1 as usize;
                    let w = self.w_col[s];
                    let reference = (wxsum - w * xv) / (wsum - w);
                    let e = (xv - reference) * inv_sigma;
                    self.acc_d[s] += e * e;
                }
            } else {
                let mu = self.mu[j];
                for (&s1, &xv) in slots.iter().zip(xs) {
                    let e = (xv - mu) * inv_sigma;
                    self.acc_d[s1 as usize] += e * e;
                }
            }
        }
        // (3) Expertise per slot; every slot has >= 1 observation.
        for i in 0..self.expertise.len() {
            let raw = ((self.slot_n[i] + PRIOR) / (self.acc_d[i] + PRIOR).max(1e-12)).sqrt();
            self.expertise[i] = if raw.is_finite() {
                raw.clamp(FLOOR, CAP)
            } else {
                FLOOR
            };
        }
    }
}

fn mle_optimized(w: &World) -> (Vec<f64>, usize) {
    let mut shards: Vec<Shard> = (0..w.n_domains)
        .map(|_| Shard {
            task_ids: Vec::new(),
            task_off: vec![0],
            obs_slot: Vec::new(),
            obs_x: Vec::new(),
            slot_of: SlotMap::new(),
            slot_users: 0,
            slot_n: Vec::new(),
            mu: Vec::new(),
            sigma: Vec::new(),
            wsum: Vec::new(),
            wxsum: Vec::new(),
            prev_mu: Vec::new(),
            expertise: Vec::new(),
            w_col: Vec::new(),
            acc_d: Vec::new(),
        })
        .collect();
    // Pre-size every shard column so the build loop below never
    // reallocates mid-batch (mirrors mle.rs's per-domain sizing pre-pass;
    // the observation columns dominate and doubling copies are pure waste).
    {
        let mut nt = vec![0usize; w.n_domains as usize];
        let mut no = vec![0usize; w.n_domains as usize];
        for (d, obs) in w.tasks.iter() {
            nt[*d as usize] += 1;
            no[*d as usize] += obs.len();
        }
        for (i, s) in shards.iter_mut().enumerate() {
            s.task_ids.reserve(nt[i]);
            s.task_off.reserve(nt[i] + 1);
            s.obs_slot.reserve(no[i]);
            s.obs_x.reserve(no[i]);
        }
    }
    for (j, (d, obs)) in w.tasks.iter().enumerate() {
        let s = &mut shards[*d as usize];
        s.task_ids.push(j);
        for &(user, x) in obs {
            let slot = s.slot_of.get_or_insert(user, s.slot_users as u32);
            if slot as usize == s.slot_users {
                s.slot_users += 1;
                s.slot_n.push(0.0);
            }
            s.slot_n[slot as usize] += 1.0;
            s.obs_slot.push(slot);
            s.obs_x.push(x);
        }
        s.task_off.push(s.obs_slot.len());
    }
    for s in &mut shards {
        let nt = s.task_ids.len();
        let ns = s.slot_users;
        s.mu = vec![0.0; nt];
        s.sigma = vec![0.0; nt];
        s.wsum = vec![0.0; nt];
        s.wxsum = vec![0.0; nt];
        s.prev_mu = vec![0.0; nt];
        s.expertise = vec![1.0; ns];
        s.w_col = vec![0.0; ns];
        s.acc_d = vec![0.0; ns];
    }
    let mut iterations = 0;
    let mut first = true;
    while iterations < MAX_ITERS {
        iterations += 1;
        for s in &mut shards {
            s.iterate();
        }
        let done = !first
            && shards.iter().all(|s| {
                s.prev_mu
                    .iter()
                    .zip(&s.mu)
                    .all(|(&p, &m)| relative_change(p, m) < CONV)
            });
        for s in &mut shards {
            s.prev_mu.copy_from_slice(&s.mu);
        }
        first = false;
        if done {
            break;
        }
    }
    let mut mus = vec![0.0; w.tasks.len()];
    for s in &shards {
        for (j_local, &j) in s.task_ids.iter().enumerate() {
            mus[j] = s.mu[j_local];
        }
    }
    (mus, iterations)
}

// ---------- allocation ----------
struct AllocWorld {
    /// per task: (domain, processing_time)
    tasks: Vec<(u32, f64)>,
    capacity: Vec<f64>,
    /// expertise[d][i]
    expertise: Vec<Vec<f64>>,
}

fn alloc_world(m: u32, n: usize, seed: u64) -> AllocWorld {
    let mut rng = Rng::new(seed);
    let tasks = (0..m).map(|j| (j % 4, rng.range(0.2, 4.0))).collect();
    let capacity = (0..n).map(|_| rng.range(2.0, 12.0)).collect();
    let expertise = (0..4)
        .map(|_| (0..n).map(|_| rng.range(0.05, 3.0)).collect())
        .collect();
    AllocWorld {
        tasks,
        capacity,
        expertise,
    }
}

const EPSILON: f64 = 0.1;

struct GreedyState {
    n: usize,
    p: Vec<f64>,
    q: Vec<f64>,
    assigned: Vec<bool>,
}

impl GreedyState {
    fn build(w: &AllocWorld) -> GreedyState {
        let m = w.tasks.len();
        let n = w.capacity.len();
        let mut p = vec![0.0; m * n];
        for (j, &(d, _)) in w.tasks.iter().enumerate() {
            for i in 0..n {
                p[j * n + i] = erf(EPSILON * w.expertise[d as usize][i] / std::f64::consts::SQRT_2);
            }
        }
        GreedyState {
            n,
            p,
            q: vec![1.0; m],
            assigned: vec![false; m * n],
        }
    }
    fn best_pair(&self, j: usize, w: &AllocWorld, remaining: &[f64]) -> Option<(f64, usize)> {
        let pt = w.tasks[j].1;
        let n = self.n;
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if self.assigned[j * n + i] || remaining[i] < pt {
                continue;
            }
            let eff = self.p[j * n + i] * self.q[j] / pt;
            if eff > 0.0 && best.map_or(true, |(b, _)| eff > b) {
                best = Some((eff, i));
            }
        }
        best
    }
    fn commit(
        &mut self,
        w: &AllocWorld,
        out: &mut Vec<(usize, usize)>,
        remaining: &mut [f64],
        j: usize,
        i: usize,
    ) {
        out.push((j, i));
        self.assigned[j * self.n + i] = true;
        self.q[j] *= 1.0 - self.p[j * self.n + i];
        remaining[i] -= w.tasks[j].1;
    }
}

struct Entry {
    eff: f64,
    j: usize,
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.eff.total_cmp(&other.eff).then(other.j.cmp(&self.j))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

fn greedy_heap(w: &AllocWorld) -> Vec<(usize, usize)> {
    let m = w.tasks.len();
    let mut state = GreedyState::build(w);
    let mut remaining = w.capacity.clone();
    let mut out = Vec::new();
    let mut current: Vec<Option<(f64, usize)>> = vec![None; m];
    let mut stale = vec![false; m];
    let mut heap = BinaryHeap::with_capacity(m);
    for j in 0..m {
        current[j] = state.best_pair(j, w, &remaining);
        if let Some((eff, _)) = current[j] {
            heap.push(Entry { eff, j });
        }
    }
    while let Some(top) = heap.pop() {
        let j_star = top.j;
        if stale[j_star] {
            stale[j_star] = false;
            current[j_star] = state.best_pair(j_star, w, &remaining);
            if let Some((eff, _)) = current[j_star] {
                heap.push(Entry { eff, j: j_star });
            }
            continue;
        }
        let Some((eff, i_star)) = current[j_star] else {
            continue;
        };
        state.commit(w, &mut out, &mut remaining, j_star, i_star);
        stale[j_star] = true;
        heap.push(Entry { eff, j: j_star });
        for j in 0..m {
            if let Some((_, bi)) = current[j] {
                if bi == i_star {
                    stale[j] = true;
                }
            }
        }
    }
    out
}

fn greedy_scan(w: &AllocWorld) -> Vec<(usize, usize)> {
    let m = w.tasks.len();
    let mut state = GreedyState::build(w);
    let mut remaining = w.capacity.clone();
    let mut out = Vec::new();
    let mut best: Vec<Option<(f64, usize)>> = vec![None; m];
    let mut dirty = vec![true; m];
    loop {
        for j in 0..m {
            if dirty[j] {
                best[j] = state.best_pair(j, w, &remaining);
                dirty[j] = false;
            }
        }
        let Some((j_star, (eff, i_star))) = best
            .iter()
            .enumerate()
            .filter_map(|(j, b)| b.map(|b| (j, b)))
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(b.0.cmp(&a.0)))
        else {
            break;
        };
        if eff <= 0.0 {
            break;
        }
        state.commit(w, &mut out, &mut remaining, j_star, i_star);
        dirty[j_star] = true;
        for j in 0..m {
            if let Some((_, bi)) = best[j] {
                if bi == i_star {
                    dirty[j] = true;
                }
            }
        }
    }
    out
}

// ---------- skip-gram (scalar vs four-lane pair kernel) ----------
const TABLE_SIZE: usize = 4096;
static mut SIGMOID_TABLE: [f32; TABLE_SIZE + 1] = [0.0; TABLE_SIZE + 1];

fn sigmoid_lut(x: f32) -> f32 {
    if x > 8.0 {
        return 1.0;
    }
    if x < -8.0 {
        return 0.0;
    }
    let table = unsafe { &*std::ptr::addr_of!(SIGMOID_TABLE) };
    let pos = (x + 8.0) * (TABLE_SIZE as f32 / 16.0);
    let k = (pos as usize).min(TABLE_SIZE - 1);
    let frac = pos - k as f32;
    table[k] + frac * (table[k + 1] - table[k])
}

struct SgWorld {
    vocab: usize,
    sentences: Vec<Vec<u32>>,
}

fn sg_world(docs: usize, seed: u64) -> SgWorld {
    let mut rng = Rng::new(seed);
    let topics = 8usize;
    let per_topic = 50usize;
    let shared = 40usize;
    let vocab = topics * per_topic + shared;
    let sentences = (0..docs)
        .map(|_| {
            let t = rng.usize(topics);
            (0..30)
                .map(|_| {
                    if rng.bool(0.3) {
                        (topics * per_topic + rng.usize(shared)) as u32
                    } else {
                        (t * per_topic + rng.usize(per_topic)) as u32
                    }
                })
                .collect()
        })
        .collect();
    SgWorld { vocab, sentences }
}

const DIM: usize = 24;
const WINDOW: usize = 4;
const NEGATIVE: usize = 5;
const EPOCHS: usize = 4;
const LR: f32 = 0.05;
const LR_END: f32 = 0.0001;

type PairFn = fn(&mut [f32], &mut [f32], usize, usize, f32, usize, &mut Rng, &mut [f32]);

/// Mirrors skipgram.rs train_pair_reference: indexed scalar dot and
/// indexed update loops, the frozen pre-vectorization kernel.
fn sg_pair_reference(
    w_in: &mut [f32],
    w_out: &mut [f32],
    center: usize,
    context: usize,
    lr: f32,
    vocab: usize,
    rng: &mut Rng,
    grad: &mut [f32],
) {
    grad.fill(0.0);
    for k in 0..=NEGATIVE {
        let (target, label) = if k == 0 {
            (context, 1.0f32)
        } else {
            let mut neg = rng.usize(vocab);
            if neg == context {
                neg = rng.usize(vocab);
                if neg == context {
                    continue;
                }
            }
            (neg, 0.0f32)
        };
        let mut dot = 0.0f32;
        for d in 0..DIM {
            dot += w_in[center * DIM + d] * w_out[target * DIM + d];
        }
        let g = (label - sigmoid_lut(dot)) * lr;
        for d in 0..DIM {
            grad[d] += g * w_out[target * DIM + d];
            w_out[target * DIM + d] += g * w_in[center * DIM + d];
        }
    }
    for d in 0..DIM {
        w_in[center * DIM + d] += grad[d];
    }
}

/// Mirrors skipgram.rs dot_lanes: four independent f32 accumulation lanes
/// combined pairwise, so the multiply-adds pipeline instead of serializing
/// on FP-add latency.
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let mut l = [0.0f32; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (a4, b4) in (&mut ca).zip(&mut cb) {
        for k in 0..4 {
            l[k] += a4[k] * b4[k];
        }
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        l[0] += x * y;
    }
    (l[0] + l[1]) + (l[2] + l[3])
}

/// Mirrors skipgram.rs train_pair: contiguous row slices, four-lane dot,
/// fused grad/output update with the bounds checks hoisted into the slice
/// construction.
fn sg_pair_vectorized(
    w_in: &mut [f32],
    w_out: &mut [f32],
    center: usize,
    context: usize,
    lr: f32,
    vocab: usize,
    rng: &mut Rng,
    grad: &mut [f32],
) {
    grad.fill(0.0);
    let in_row = &mut w_in[center * DIM..(center + 1) * DIM];
    for k in 0..=NEGATIVE {
        let (target, label) = if k == 0 {
            (context, 1.0f32)
        } else {
            let mut neg = rng.usize(vocab);
            if neg == context {
                neg = rng.usize(vocab);
                if neg == context {
                    continue;
                }
            }
            (neg, 0.0f32)
        };
        let out_row = &mut w_out[target * DIM..(target + 1) * DIM];
        let pred = sigmoid_lut(dot_lanes(in_row, out_row));
        let g = (label - pred) * lr;
        for ((gr, o), &i) in grad.iter_mut().zip(out_row.iter_mut()).zip(in_row.iter()) {
            *gr += g * *o;
            *o += g * i;
        }
    }
    for (i, &gr) in in_row.iter_mut().zip(grad.iter()) {
        *i += gr;
    }
}

/// Shared training driver, parameterized by the pair kernel exactly like
/// skipgram.rs train_encoded_with. Both kernels consume the RNG stream
/// identically, so a fixed seed yields the same pair/negative schedule.
/// Returns the input embedding and the number of (center, context) pairs.
fn sg_train(w: &SgWorld, pair: PairFn, seed: u64) -> (Vec<f32>, u64) {
    let mut rng = Rng::new(seed);
    let n = w.vocab;
    let mut w_in: Vec<f32> = (0..n * DIM)
        .map(|_| (rng.f32() - 0.5) / DIM as f32)
        .collect();
    let mut w_out = vec![0.0f32; n * DIM];
    let tokens: usize = w.sentences.iter().map(|s| s.len()).sum();
    let total_steps = (tokens * EPOCHS).max(1);
    let mut step = 0usize;
    let mut pairs = 0u64;
    let mut grad = vec![0.0f32; DIM];
    for _ in 0..EPOCHS {
        for sent in &w.sentences {
            for (c, &center) in sent.iter().enumerate() {
                step += 1;
                let lr = (LR * (1.0 - step as f32 / total_steps as f32)).max(LR_END);
                let b = 1 + rng.usize(WINDOW);
                let lo = c.saturating_sub(b);
                let hi = (c + b + 1).min(sent.len());
                pairs += (hi - lo) as u64 - 1;
                for t in lo..hi {
                    if t == c {
                        continue;
                    }
                    pair(
                        &mut w_in,
                        &mut w_out,
                        center as usize,
                        sent[t] as usize,
                        lr,
                        n,
                        &mut rng,
                        &mut grad,
                    );
                }
            }
        }
    }
    (w_in, pairs)
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (x, y) in a.iter().zip(b) {
        dot += *x as f64 * *y as f64;
        na += *x as f64 * *x as f64;
        nb += *y as f64 * *y as f64;
    }
    dot / (na.sqrt() * nb.sqrt()).max(1e-12)
}

fn main() {
    unsafe {
        let table = &mut *std::ptr::addr_of_mut!(SIGMOID_TABLE);
        for (k, slot) in table.iter_mut().enumerate() {
            let x = -8.0 + 16.0 * k as f64 / TABLE_SIZE as f64;
            *slot = (1.0 / (1.0 + (-x).exp())) as f32;
        }
    }
    let reps = 5;

    // MLE 500x200x4
    let w = mle_world(500, 200, 4, 42);
    let n_obs: usize = w.tasks.iter().map(|t| t.1.len()).sum();
    let (ref_best, ref_mean, (ref_mu, ref_iters)) = time_runs(reps, || mle_reference(&w));
    let (opt_best, opt_mean, (opt_mu, opt_iters)) = time_runs(reps, || mle_optimized(&w));
    assert_eq!(ref_iters, opt_iters, "iteration counts diverged");
    let max_rel_dev = ref_mu
        .iter()
        .zip(&opt_mu)
        .map(|(a, b)| (a - b).abs() / a.abs().max(b.abs()).max(1.0))
        .fold(0.0f64, f64::max);
    assert!(
        max_rel_dev <= PARITY_REL_TOL,
        "mu diverged by {} rel (tol {})",
        max_rel_dev,
        PARITY_REL_TOL
    );
    println!(
        "{{\"mle\": {{\"n_tasks\": 500, \"n_users\": 200, \"n_domains\": 4, \"n_observations\": {n_obs}, \"iterations\": {ref_iters}, \"reference\": {{\"secs_best\": {ref_best:.6}, \"secs_mean\": {ref_mean:.6}, \"runs\": {reps}}}, \"sequential\": {{\"secs_best\": {opt_best:.6}, \"secs_mean\": {opt_mean:.6}, \"runs\": {reps}}}, \"obs_per_sec_reference\": {:.0}, \"obs_per_sec_sequential\": {:.0}, \"speedup_sequential_vs_reference\": {:.3}, \"parity_rel_tol_vs_reference\": {PARITY_REL_TOL:e}, \"parity_max_rel_dev\": {max_rel_dev:.3e}}}}}",
        n_obs as f64 / ref_best,
        n_obs as f64 / opt_best,
        ref_best / opt_best
    );

    // allocation at three sizes
    for &(m, n) in &[(100u32, 50usize), (300, 100), (600, 200)] {
        let aw = alloc_world(m, n, 7);
        let (scan_best, scan_mean, picks_scan) = time_runs(reps, || greedy_scan(&aw));
        let (heap_best, heap_mean, picks_heap) = time_runs(reps, || greedy_heap(&aw));
        assert_eq!(picks_scan, picks_heap, "pick sequences diverged at {m}x{n}");
        println!(
            "{{\"allocation\": {{\"n_tasks\": {m}, \"n_users\": {n}, \"picks\": {}, \"scan\": {{\"secs_best\": {scan_best:.6}, \"secs_mean\": {scan_mean:.6}, \"runs\": {reps}}}, \"heap\": {{\"secs_best\": {heap_best:.6}, \"secs_mean\": {heap_mean:.6}, \"runs\": {reps}}}, \"picks_per_sec_scan\": {:.0}, \"picks_per_sec_heap\": {:.0}, \"speedup_heap_vs_scan\": {:.3}, \"identical_picks\": true}}}}",
            picks_scan.len(),
            picks_scan.len() as f64 / scan_best,
            picks_heap.len() as f64 / heap_best,
            scan_best / heap_best
        );
    }

    // skip-gram: frozen scalar pair kernel vs four-lane kernel
    let sw = sg_world(400, 9);
    let (sg_ref_best, sg_ref_mean, (emb_ref, pairs_ref)) =
        time_runs(reps, || sg_train(&sw, sg_pair_reference, 0x5eed));
    let (sg_vec_best, sg_vec_mean, (emb_vec, pairs_vec)) =
        time_runs(reps, || sg_train(&sw, sg_pair_vectorized, 0x5eed));
    assert_eq!(pairs_ref, pairs_vec, "pair schedules diverged");
    let min_cos = (0..sw.vocab)
        .map(|i| {
            cosine(
                &emb_ref[i * DIM..(i + 1) * DIM],
                &emb_vec[i * DIM..(i + 1) * DIM],
            )
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_cos >= 1.0 - 1e-3,
        "vectorized embedding drifted: min cosine {min_cos}"
    );
    println!(
        "{{\"skipgram\": {{\"documents\": 400, \"dim\": {DIM}, \"epochs\": {EPOCHS}, \"training_pairs\": {pairs_ref}, \"reference\": {{\"secs_best\": {sg_ref_best:.6}, \"secs_mean\": {sg_ref_mean:.6}, \"runs\": {reps}}}, \"sequential\": {{\"secs_best\": {sg_vec_best:.6}, \"secs_mean\": {sg_vec_mean:.6}, \"runs\": {reps}}}, \"pairs_per_sec_reference\": {:.0}, \"pairs_per_sec_sequential\": {:.0}, \"speedup_sequential_vs_reference\": {:.3}, \"min_word_cosine_vectorized_vs_reference\": {min_cos:.8}}}}}",
        pairs_ref as f64 / sg_ref_best,
        pairs_vec as f64 / sg_vec_best,
        sg_ref_best / sg_vec_best
    );
}
