//! Observability-overhead measurement for hosts where the full workspace
//! cannot be built (this container has no crate-registry access). Links
//! the REAL `eta2-obs` crate — the gates, registry, span timers, trace
//! ids and JSONL sink being measured are the production code paths — and
//! mirrors the serving engine's ingest loop shape (per-round report
//! routing into a sharded pending map, batch-triggered incremental
//! least-squares fold, epoch publication) with the same instrumentation
//! density as `crates/serve/src/engine.rs`: one root trace event + one
//! counter + one gauge per submit, one labeled span + flush/publish trace
//! events per batch.
//!
//! Run:
//! ```sh
//! rustc -O --edition 2021 --crate-type rlib --crate-name eta2_obs \
//!     crates/obs/src/lib.rs -o /tmp/libeta2_obs.rlib
//! rustc -O --edition 2021 crates/bench/standalone/obs_overhead.rs \
//!     --extern eta2_obs=/tmp/libeta2_obs.rlib -o /tmp/obs_overhead
//! /tmp/obs_overhead
//! ```
//!
//! The real `perf_suite --bin` observability section (full workspace,
//! `bench_observability`) supersedes these numbers whenever it can run;
//! CI's perf-smoke gate enforces the <= 10 % full-tracing target there.

use std::collections::BTreeMap;
use std::time::Instant;

// One root trace span covers one submitted batch, so trace cost amortizes
// across the batch; 32 reports/submit matches the batched-ingest posture
// the serving API is designed around (and `bench_observability` uses).
const ROUNDS: u64 = 2_000;
const REPORTS_PER_ROUND: u64 = 32;
const N_TASKS: u64 = 128;
const N_SHARDS: usize = 4;
const BATCH_CAPACITY: usize = 128;
const REPEAT: usize = 5;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mini sharded ingest mirror: pending per-shard maps, batch-capacity
/// flush through an incremental weighted-mean fold, epoch counter.
struct MiniEngine {
    shards: Vec<BTreeMap<(u64, u64), f64>>,
    // Per-shard ingest spans awaiting a flush, exactly as the real
    // engine's `Shard::pending_traces`: the flush emits one fan-in
    // TraceFlush naming them all as parents, and the publication one
    // fan-in TracePublish over the flush spans, so mirror trace density
    // matches `crates/serve/src/engine.rs` event for event.
    pending_traces: Vec<Vec<u64>>,
    flushed_spans: Vec<u64>,
    truths: BTreeMap<u64, (f64, f64)>, // task -> (weight, weighted sum)
    epoch: u64,
}

impl MiniEngine {
    fn new() -> Self {
        MiniEngine {
            shards: (0..N_SHARDS).map(|_| BTreeMap::new()).collect(),
            pending_traces: (0..N_SHARDS).map(|_| Vec::new()).collect(),
            flushed_spans: Vec::new(),
            truths: BTreeMap::new(),
            epoch: 0,
        }
    }

    fn submit(&mut self, round: u64, ctx: Option<eta2_obs::TraceContext>) {
        let mut accepted = 0u64;
        let mut touched = [false; N_SHARDS];
        for k in 0..REPORTS_PER_ROUND {
            let h = mix(round ^ mix(k));
            let task = h % N_TASKS;
            let user = mix(h) % 64;
            let shard = (task % N_SHARDS as u64) as usize;
            self.shards[shard].insert((user, task), 10.0 + (h % 100) as f64 * 0.01);
            touched[shard] = true;
            accepted += 1;
        }
        eta2_obs::counter("serve.accepted_reports", accepted);
        if let Some(ctx) = ctx {
            eta2_obs::emit(&eta2_obs::Event::TraceIngest {
                trace: ctx.trace,
                span: ctx.span,
                parent: ctx.parent,
                accepted,
                quarantined: 0,
                unknown: 0,
            });
            for (k, hit) in touched.iter().enumerate() {
                if *hit {
                    self.pending_traces[k].push(ctx.span);
                }
            }
        }
        for k in 0..N_SHARDS {
            if self.shards[k].len() >= BATCH_CAPACITY {
                self.flush(k);
            }
        }
        let depth: usize = self.shards.iter().map(BTreeMap::len).sum();
        eta2_obs::gauge("serve.queue_depth", depth as f64);
    }

    fn flush(&mut self, k: usize) {
        let _span = eta2_obs::span!("serve.flush");
        let _shard_span = eta2_obs::Span::start_with(|| format!("serve.flush_seconds|shard={k}"));
        let pending = std::mem::take(&mut self.shards[k]);
        let reports = pending.len() as u64;
        // Joint truth/expertise-shaped iteration, as the real shard flush
        // runs (`DynamicExpertise::ingest_batch`): alternate re-weighted
        // truth estimates against per-user precision updates for a few
        // rounds over the whole batch. The arithmetic is simplified but
        // the work shape (iterations x batch walk + expertise column
        // update) and therefore the baseline cost per flush is
        // representative.
        let mut weights = [1.0f64; 64];
        let mut batch_truths: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
        for _iter in 0..3 {
            batch_truths.clear();
            for (&(user, task), &value) in &pending {
                let w = weights[(user % 64) as usize];
                let e = batch_truths.entry(task).or_insert((0.0, 0.0));
                e.0 += w;
                e.1 += w * value;
            }
            let mut residual = [0.0f64; 64];
            let mut n_obs = [0u32; 64];
            for (&(user, task), &value) in &pending {
                let (w, s) = batch_truths[&task];
                let mu = s / w.max(1e-12);
                let u = (user % 64) as usize;
                residual[u] += (value - mu) * (value - mu);
                n_obs[u] += 1;
            }
            for u in 0..64 {
                if n_obs[u] > 0 {
                    weights[u] = (n_obs[u] as f64 / (residual[u] + 1e-9)).min(1e6);
                }
            }
        }
        for (task, acc) in batch_truths {
            self.truths.insert(task, acc);
        }
        eta2_obs::counter("serve.batch_flush", 1);
        let parents = std::mem::take(&mut self.pending_traces[k]);
        if !parents.is_empty() {
            let span = eta2_obs::trace::next_id();
            eta2_obs::emit(&eta2_obs::Event::TraceFlush {
                span,
                parents,
                shard: k as u64,
                reports,
                iterations: 1,
                converged: true,
            });
            self.flushed_spans.push(span);
        }
        self.epoch += 1;
        eta2_obs::counter("serve.epoch_published", 1);
        eta2_obs::gauge("serve.epoch", self.epoch as f64);
        let closed = std::mem::take(&mut self.flushed_spans);
        if !closed.is_empty() {
            eta2_obs::emit(&eta2_obs::Event::TracePublish {
                span: eta2_obs::trace::next_id(),
                parents: closed,
                epoch: self.epoch,
            });
        }
    }
}

fn run_ingest() -> f64 {
    let mut engine = MiniEngine::new();
    for r in 0..ROUNDS {
        let ctx = eta2_obs::tracing_active().then(eta2_obs::TraceContext::root);
        engine.submit(r, ctx);
    }
    // Checksum defeats dead-code elimination across the whole fold.
    engine.truths.values().map(|&(w, s)| s / w.max(1e-12)).sum()
}

fn timed(sink: &mut f64) -> f64 {
    let t0 = Instant::now();
    *sink += run_ingest();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let reports = ROUNDS * REPORTS_PER_ROUND;
    let path = std::env::temp_dir().join(format!("eta2-obs-overhead-{}.jsonl", std::process::id()));
    eta2_obs::trace::seed_ids(42);

    // Untimed warm-up, then the three postures interleaved inside each
    // repeat and best-of taken per posture: background load drifts on the
    // scale of whole posture blocks, so grouped measurement would charge
    // whichever posture ran during a spike. Interleaving exposes every
    // posture to the same noise.
    let mut sink = 0.0;
    eta2_obs::set_metrics(false);
    let _ = timed(&mut sink);
    let (mut t_off, mut t_metrics, mut t_tracing) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut lines = 0usize;
    for _ in 0..REPEAT {
        eta2_obs::set_metrics(false);
        t_off = t_off.min(timed(&mut sink));
        eta2_obs::set_metrics(true);
        t_metrics = t_metrics.min(timed(&mut sink));
        eta2_obs::init_file(&path).expect("open trace file");
        t_tracing = t_tracing.min(timed(&mut sink));
        eta2_obs::disable();
        lines = std::fs::read_to_string(&path)
            .map(|s| s.lines().count())
            .unwrap_or(0);
    }
    assert!(sink.is_finite());
    let _ = std::fs::remove_file(&path);
    assert!(lines > 0, "tracing run produced no events");

    let frac = |t: f64| (t - t_off) / t_off;
    println!("{{");
    println!("  \"rounds\": {ROUNDS},");
    println!("  \"reports_accepted\": {reports},");
    println!("  \"disabled\":     {{ \"secs_best\": {t_off:.6} }},");
    println!("  \"metrics_only\": {{ \"secs_best\": {t_metrics:.6} }},");
    println!("  \"full_tracing\": {{ \"secs_best\": {t_tracing:.6} }},");
    println!(
        "  \"ingest_per_sec_disabled\": {:.0},",
        reports as f64 / t_off
    );
    println!(
        "  \"ingest_per_sec_metrics\": {:.0},",
        reports as f64 / t_metrics
    );
    println!(
        "  \"ingest_per_sec_tracing\": {:.0},",
        reports as f64 / t_tracing
    );
    println!("  \"overhead_metrics_frac\": {:.4},", frac(t_metrics));
    println!("  \"overhead_tracing_frac\": {:.4},", frac(t_tracing));
    println!("  \"trace_lines\": {lines}");
    println!("}}");
}
