//! Durable-ingest measurement for hosts where the full workspace cannot
//! be built (this container has no crate-registry access). Links the
//! REAL `eta2-wal` crate — the segment writer, CRC framing, fsync
//! gating, rotation, truncation, torn-tail chop and replay scanner being
//! measured are the production code paths — and mirrors the serving
//! engine's durable ingest loop shape (append the encoded op before
//! applying it, group commit at flush boundaries, checkpoint = log the
//! tick + write the snapshot + truncate) from
//! `crates/serve/src/engine.rs` / `crates/serve/src/durable.rs`.
//!
//! Two parts:
//!
//! 1. **Protocol validation** — a miniature kill-replay sweep with the
//!    same crash grammar as `eta2::check::crash`: the mirror engine runs
//!    a seeded workload durably, the log + checkpoint directories are
//!    snapshotted after every op, and every snapshot is killed three
//!    ways (clean, torn mid-record tail, corrupted-checksum tail) and
//!    recovered through the real `eta2_wal::replay`. Recovery must be
//!    bit-identical to an uninterrupted twin at the expected op prefix,
//!    including the checkpoint-file-supersedes-its-own-Tick-record rule.
//! 2. **Overhead timing** — the ingest loop volatile vs WAL-backed under
//!    each fsync posture, with WAL records sized like the real engine's
//!    JSON-encoded `WalOp::Submit` payloads.
//!
//! Run:
//! ```sh
//! rustc -O --edition 2021 --crate-type rlib --crate-name eta2_obs \
//!     crates/obs/src/lib.rs -o /tmp/libeta2_obs.rlib
//! rustc -O --edition 2021 --crate-type rlib --crate-name eta2_wal \
//!     crates/wal/src/lib.rs --extern eta2_obs=/tmp/libeta2_obs.rlib \
//!     -o /tmp/libeta2_wal.rlib
//! rustc -O --edition 2021 crates/bench/standalone/wal_overhead.rs \
//!     --extern eta2_obs=/tmp/libeta2_obs.rlib \
//!     --extern eta2_wal=/tmp/libeta2_wal.rlib -o /tmp/wal_overhead
//! /tmp/wal_overhead
//! ```
//!
//! The real `perf_suite` durability section (full workspace,
//! `bench_durability` over the real `ServeEngine`) supersedes these
//! numbers whenever it can run; CI's perf-smoke gate bounds the group
//! commit overhead fraction there.

use eta2_wal::{FsyncPolicy, Wal, WalConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

const ROUNDS: u64 = 1_000;
const REPORTS_PER_ROUND: u64 = 32;
const N_TASKS: u64 = 128;
const N_USERS: u64 = 64;
const N_SHARDS: usize = 4;
const BATCH_CAPACITY: usize = 128;
const REPEAT: usize = 5;

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One logged op, mirroring `eta2_serve::durable::WalOp`'s shape.
#[derive(Clone, Debug)]
enum Op {
    Submit(Vec<(u64, u64, f64)>), // (user, task, value)
    Tick,
}

/// Compact encoding for the validation sweep (decode must round-trip).
fn encode(op: &Op) -> Vec<u8> {
    let mut out = Vec::new();
    match op {
        Op::Submit(reports) => {
            out.push(1u8);
            out.extend_from_slice(&(reports.len() as u32).to_le_bytes());
            for &(u, t, v) in reports {
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Op::Tick => out.push(2u8),
    }
    out
}

fn decode(payload: &[u8]) -> Result<Op, String> {
    match payload.first() {
        Some(1) => {
            let n = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
            let mut reports = Vec::with_capacity(n);
            let mut at = 5usize;
            for _ in 0..n {
                let u = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
                let t = u64::from_le_bytes(payload[at + 8..at + 16].try_into().unwrap());
                let v = f64::from_bits(u64::from_le_bytes(
                    payload[at + 16..at + 24].try_into().unwrap(),
                ));
                reports.push((u, t, v));
                at += 24;
            }
            Ok(Op::Submit(reports))
        }
        Some(2) => Ok(Op::Tick),
        other => Err(format!("bad op tag {other:?}")),
    }
}

/// Sharded ingest mirror with flush-partition-sensitive state: the flush
/// fold decays the running accumulator before adding the batch, so two
/// runs agree bit-for-bit only if every flush boundary lands on the same
/// pending set — the same property that makes the real engine's MLE
/// state sensitive to where ticks partition the stream.
struct MiniEngine {
    shards: Vec<Vec<(u64, u64, f64)>>,
    truths: BTreeMap<u64, (f64, f64)>, // task -> (decayed weight, decayed sum)
    epoch: u64,
}

impl MiniEngine {
    fn new() -> MiniEngine {
        MiniEngine {
            shards: vec![Vec::new(); N_SHARDS],
            truths: BTreeMap::new(),
            epoch: 0,
        }
    }

    fn submit(&mut self, reports: &[(u64, u64, f64)]) {
        for &(u, t, v) in reports {
            let s = (t as usize) % N_SHARDS;
            self.shards[s].push((u, t, v));
        }
        for s in 0..N_SHARDS {
            if self.shards[s].len() >= BATCH_CAPACITY {
                self.flush(s);
            }
        }
    }

    fn flush(&mut self, s: usize) {
        if self.shards[s].is_empty() {
            return;
        }
        for (u, t, v) in std::mem::take(&mut self.shards[s]) {
            let e = self.truths.entry(t).or_insert((0.0, 0.0));
            let w = 1.0 + (u % 7) as f64 * 0.25;
            e.0 = e.0 * 0.9 + w;
            e.1 = e.1 * 0.9 + w * v;
        }
        self.epoch += 1;
    }

    fn tick(&mut self) {
        for s in 0..N_SHARDS {
            self.flush(s);
        }
        self.epoch += 1;
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Submit(reports) => self.submit(reports),
            Op::Tick => self.tick(),
        }
    }

    fn state_digest(&self) -> Vec<(u64, u64, u64)> {
        self.truths
            .iter()
            .map(|(&t, &(w, s))| (t, w.to_bits(), s.to_bits()))
            .collect()
    }
}

fn seeded_reports(seed: u64, round: u64) -> Vec<(u64, u64, f64)> {
    (0..REPORTS_PER_ROUND)
        .map(|k| {
            let h = mix(seed ^ mix(round) ^ k);
            (
                mix(h) % N_USERS,
                h % N_TASKS,
                10.0 + (h % 100) as f64 * 0.01,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Part 1: kill-replay protocol validation (crash grammar of check::crash)
// ---------------------------------------------------------------------

/// `Checkpoint` op marker for the validation workload: op index j is a
/// durable checkpoint when `j % 5 == 0` (several per sweep, so the
/// truncation + supersedes-Tick paths get exercised repeatedly).
fn is_checkpoint(j: usize) -> bool {
    j % 5 == 0
}

fn checkpoint_file(dir: &Path, position: u64) -> PathBuf {
    dir.join(format!("checkpoint-{position:020}.bin"))
}

fn write_checkpoint(dir: &Path, position: u64, engine: &MiniEngine) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut body = position.to_le_bytes().to_vec();
    body.extend_from_slice(&engine.epoch.to_le_bytes());
    for (t, w, s) in engine.state_digest() {
        body.extend_from_slice(&t.to_le_bytes());
        body.extend_from_slice(&w.to_le_bytes());
        body.extend_from_slice(&s.to_le_bytes());
    }
    let tmp = dir.join("checkpoint.tmp");
    std::fs::write(&tmp, &body)?;
    std::fs::rename(&tmp, checkpoint_file(dir, position))
}

fn load_latest_checkpoint(dir: &Path) -> Result<Option<(u64, MiniEngine)>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read {}: {e}", dir.display())),
    };
    let mut best: Option<PathBuf> = None;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if name.starts_with("checkpoint-") && best.as_ref().map_or(true, |b| path > *b) {
            best = Some(path);
        }
    }
    let Some(path) = best else { return Ok(None) };
    let body = std::fs::read(&path).map_err(|e| e.to_string())?;
    let position = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let mut engine = MiniEngine::new();
    engine.epoch = u64::from_le_bytes(body[8..16].try_into().unwrap());
    for chunk in body[16..].chunks_exact(24) {
        let t = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let w = f64::from_bits(u64::from_le_bytes(chunk[8..16].try_into().unwrap()));
        let s = f64::from_bits(u64::from_le_bytes(chunk[16..24].try_into().unwrap()));
        engine.truths.insert(t, (w, s));
    }
    Ok(Some((position, engine)))
}

/// `ServeEngine::recover`, in miniature: latest checkpoint, then replay
/// the log tail through the real `eta2_wal::replay` (which tolerates —
/// and reports — a torn or corrupt tail on the last segment).
fn recover(root: &Path) -> Result<(u64, MiniEngine), String> {
    let (position, mut engine) = match load_latest_checkpoint(&root.join("checkpoints"))? {
        Some(loaded) => loaded,
        None => (0, MiniEngine::new()),
    };
    let replayed = eta2_wal::replay(&root.join("wal")).map_err(|e| e.to_string())?;
    let mut next = position;
    for record in &replayed.records {
        if record.index < position {
            continue;
        }
        engine.apply(&decode(&record.payload)?);
        next = record.index + 1;
    }
    Ok((next, engine))
}

fn copy_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    if !src.exists() {
        return Ok(());
    }
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn reset_dir(dir: &Path) -> std::io::Result<()> {
    if dir.exists() {
        std::fs::remove_dir_all(dir)?;
    }
    std::fs::create_dir_all(dir)
}

fn wal_cfg(dir: PathBuf) -> WalConfig {
    let mut cfg = WalConfig::new(dir);
    cfg.fsync = FsyncPolicy::Off;
    cfg.segment_bytes = 256; // force rotation even on short workloads
    cfg
}

/// Runs the kill-replay sweep for one seed; returns (kill points, failures).
fn validate_seed(seed: u64, scratch: &Path) -> Result<(usize, Vec<String>), String> {
    let n_ops = 14usize;
    let ops: Vec<Op> = (1..=n_ops)
        .map(|j| {
            if is_checkpoint(j) {
                Op::Tick // the record a durable checkpoint logs
            } else {
                Op::Submit(seeded_reports(seed, j as u64))
            }
        })
        .collect();

    let root = scratch.join(format!("v-{seed:x}"));
    reset_dir(&root).map_err(|e| e.to_string())?;
    let live = root.join("live");
    let snap_for = |j: usize| root.join(format!("snap-{j:04}"));

    // Record pass: append-then-apply, exactly the engine's durable
    // protocol, snapshotting the durability dirs after every op.
    {
        let (mut wal, _) = Wal::open(wal_cfg(live.join("wal"))).map_err(|e| e.to_string())?;
        let mut engine = MiniEngine::new();
        copy_dir(&live, &snap_for(0)).map_err(|e| e.to_string())?;
        for (i, op) in ops.iter().enumerate() {
            let j = i + 1;
            wal.append(&encode(op)).map_err(|e| e.to_string())?;
            engine.apply(op);
            if is_checkpoint(j) {
                let position = wal.position();
                wal.sync().map_err(|e| e.to_string())?;
                write_checkpoint(&live.join("checkpoints"), position, &engine)
                    .map_err(|e| e.to_string())?;
                wal.truncate_up_to(position).map_err(|e| e.to_string())?;
            } else {
                wal.sync_batched().map_err(|e| e.to_string())?;
            }
            if wal.position() != j as u64 {
                return Err(format!("op {j} left wal position {}", wal.position()));
            }
            copy_dir(&live, &snap_for(j)).map_err(|e| e.to_string())?;
        }
    }

    let twin_digest = |prefix: usize| {
        let mut twin = MiniEngine::new();
        for op in &ops[..prefix] {
            twin.apply(op);
        }
        twin.state_digest()
    };

    let mut checkpoint_ops = vec![0usize; n_ops + 1];
    for j in 1..=n_ops {
        checkpoint_ops[j] = if is_checkpoint(j) {
            j
        } else {
            checkpoint_ops[j - 1]
        };
    }

    let mut failures = Vec::new();
    let mut kill_points = 0usize;
    let work = root.join("work");
    for j in 0..=n_ops {
        for variant in ["clean", "torn", "corrupt"] {
            if j == 0 && variant != "clean" {
                continue;
            }
            reset_dir(&work).map_err(|e| e.to_string())?;
            copy_dir(&snap_for(j), &work).map_err(|e| e.to_string())?;
            kill_points += 1;
            let expected = if variant == "clean" {
                j
            } else {
                // Mutilate the last record (index j-1) through the real
                // tail-layout scanner; a checkpoint file supersedes its
                // own trailing Tick record.
                let layout = eta2_wal::tail_segment_layout(&work.join("wal"))
                    .map_err(|e| e.to_string())?
                    .filter(|l| !l.records.is_empty());
                let Some(layout) = layout else {
                    failures.push(format!("op {j} {variant}: no tail records"));
                    continue;
                };
                let last = layout.records.last().unwrap();
                use std::io::{Read, Seek, SeekFrom, Write};
                let mut f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&layout.segment)
                    .map_err(|e| e.to_string())?;
                if variant == "torn" {
                    f.set_len(last.offset + last.frame_len / 2)
                        .map_err(|e| e.to_string())?;
                } else {
                    let at = last.offset + eta2_wal::FRAME_PREFIX_BYTES;
                    let mut byte = [0u8];
                    f.seek(SeekFrom::Start(at)).map_err(|e| e.to_string())?;
                    f.read_exact(&mut byte).map_err(|e| e.to_string())?;
                    byte[0] ^= 0xff;
                    f.seek(SeekFrom::Start(at)).map_err(|e| e.to_string())?;
                    f.write_all(&byte).map_err(|e| e.to_string())?;
                }
                checkpoint_ops[j].max(j - 1)
            };
            match recover(&work) {
                Err(e) => failures.push(format!("op {j} {variant}: recovery failed: {e}")),
                Ok((_, recovered)) => {
                    if recovered.state_digest() != twin_digest(expected) {
                        failures.push(format!(
                            "op {j} {variant}: recovered state != twin at prefix {expected}"
                        ));
                    }
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    Ok((kill_points, failures))
}

// ---------------------------------------------------------------------
// Part 2: ingest overhead per fsync posture
// ---------------------------------------------------------------------

/// A WAL record sized like the real engine's JSON `WalOp::Submit`: the
/// production encoding is serde_json over the report batch, so the bytes
/// hitting the log are this order of magnitude (~35 bytes/report).
fn json_sized_payload(seed: u64, round: u64) -> Vec<u8> {
    let mut s = String::with_capacity(64 + 40 * REPORTS_PER_ROUND as usize);
    s.push_str("{\"Submit\":[");
    for (i, (u, t, v)) in seeded_reports(seed, round).into_iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"user\":{u},\"task\":{t},\"value\":{v}}}"));
    }
    s.push_str("]}");
    s.into_bytes()
}

fn run_ingest(root: &Path, fsync: Option<FsyncPolicy>) -> u64 {
    let mut wal = fsync.map(|policy| {
        let _ = std::fs::remove_dir_all(root);
        let mut cfg = WalConfig::new(root.join("wal"));
        cfg.fsync = policy;
        Wal::open(cfg).expect("fresh wal").0
    });
    let mut engine = MiniEngine::new();
    let mut accepted = 0u64;
    for r in 0..ROUNDS {
        let payload = json_sized_payload(42, r);
        let reports = seeded_reports(42, r);
        if let Some(wal) = wal.as_mut() {
            wal.append(&payload).expect("append");
        }
        let before = engine.epoch;
        engine.submit(&reports);
        if engine.epoch != before {
            // A flush boundary: the engine group-commits here.
            if let Some(wal) = wal.as_mut() {
                wal.sync_batched().expect("group commit");
            }
        }
        accepted += REPORTS_PER_ROUND;
    }
    engine.tick();
    if let Some(wal) = wal.as_mut() {
        wal.sync_batched().expect("final group commit");
    }
    accepted
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("eta2-wal-overhead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Part 1: the kill-replay protocol must hold before the numbers mean
    // anything.
    let mut total_kill_points = 0usize;
    for seed in 0..8u64 {
        match validate_seed(seed, &scratch) {
            Err(e) => {
                eprintln!("validation seed {seed}: sweep failed to run: {e}");
                std::process::exit(1);
            }
            Ok((kill_points, failures)) => {
                total_kill_points += kill_points;
                if !failures.is_empty() {
                    eprintln!("validation seed {seed}: {} divergence(s):", failures.len());
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    std::process::exit(1);
                }
            }
        }
    }
    println!("validation: 8 seeds, {total_kill_points} kill points, all recovered bit-identical");

    // Part 2: postures interleaved per repeat, best-of per posture.
    let root = scratch.join("bench");
    let postures: [(&str, Option<FsyncPolicy>); 4] = [
        ("volatile", None),
        ("wal_fsync_off", Some(FsyncPolicy::Off)),
        ("wal_fsync_batch", Some(FsyncPolicy::PerBatch)),
        ("wal_fsync_record", Some(FsyncPolicy::PerRecord)),
    ];
    let mut accepted = run_ingest(&root, None); // warm-up
    let mut best = [f64::INFINITY; 4];
    let mut sum = [0.0f64; 4];
    for _ in 0..REPEAT {
        for (i, &(_, posture)) in postures.iter().enumerate() {
            let t0 = Instant::now();
            accepted = run_ingest(&root, posture);
            let s = t0.elapsed().as_secs_f64();
            best[i] = best[i].min(s);
            sum[i] += s;
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let base = best[0];
    println!(
        "workload: {ROUNDS} rounds x {REPORTS_PER_ROUND} reports = {accepted} accepted, \
         batch_capacity {BATCH_CAPACITY}, {N_SHARDS} shards, repeat {REPEAT}"
    );
    for (i, &(name, _)) in postures.iter().enumerate() {
        println!(
            "{name:>18}: best {:.6}s mean {:.6}s overhead {:+.4} ingest/s {:.0}",
            best[i],
            sum[i] / REPEAT as f64,
            (best[i] - base) / base,
            accepted as f64 / best[i],
        );
    }
}
