//! The SFV-like dataset (paper §6.1.2).
//!
//! The original data — 18 slot-filling systems answering ~2 000 numeric
//! questions about 100 entities from the TAC-KBP 2013 Slot-Filling
//! Validation track — is LDC-licensed. This generator reproduces the shape
//! the evaluation depends on: *few* users (the 18 systems), *many* tasks,
//! and expertise varying by slot family (a system good at biographical
//! slots may be poor at financial ones). Slot families play the role of
//! expertise domains; each question's description names the slot and a
//! family context word, so the pair-word pipeline can cluster questions by
//! family even though entity names are out-of-vocabulary.

use crate::types::{Dataset, NoiseModel, TaskSpec, UserSpec};
use eta2_core::model::{DomainId, TaskId, UserId};
use eta2_embed::corpus::Topic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Slot families of the SFV-like dataset; these drive both the question
/// templates and the embedding corpus for the SFV pipeline.
pub const SFV_TOPICS: &[Topic] = &[
    Topic {
        name: "biographical",
        words: &[
            "age",
            "birthday",
            "height",
            "weight",
            "children",
            "person",
            "born",
            "years",
            "old",
            "famous",
            "actor",
            "politician",
            "spouse",
            "siblings",
            "biography",
            "birthplace",
            "celebrity",
            "life",
            "married",
            "deceased",
        ],
    },
    Topic {
        name: "organizational",
        words: &[
            "employees",
            "subsidiaries",
            "members",
            "branches",
            "organization",
            "company",
            "staff",
            "offices",
            "divisions",
            "departments",
            "workforce",
            "headquarters",
            "corporation",
            "firm",
            "agency",
            "executives",
            "board",
            "shareholders",
            "ceo",
            "managers",
        ],
    },
    Topic {
        name: "financial",
        words: &[
            "revenue",
            "profit",
            "assets",
            "shares",
            "earnings",
            "billion",
            "million",
            "stock",
            "market",
            "valuation",
            "capital",
            "dividend",
            "quarterly",
            "fiscal",
            "income",
            "turnover",
            "funding",
            "investment",
            "sales",
            "losses",
        ],
    },
    Topic {
        name: "geographic",
        words: &[
            "population",
            "area",
            "distance",
            "elevation",
            "city",
            "country",
            "region",
            "territory",
            "square",
            "kilometers",
            "residents",
            "inhabitants",
            "density",
            "border",
            "coast",
            "river",
            "mountain",
            "latitude",
            "longitude",
            "island",
        ],
    },
    Topic {
        name: "temporal",
        words: &[
            "founded",
            "established",
            "duration",
            "tenure",
            "year",
            "date",
            "century",
            "decade",
            "anniversary",
            "started",
            "ended",
            "period",
            "era",
            "history",
            "timeline",
            "since",
            "until",
            "lasted",
            "reign",
            "term",
        ],
    },
];

/// Per-family slot phrases (4 slots each → 20 slot types per entity).
const SLOTS: [[&str; 4]; 5] = [
    ["age", "height", "weight", "children"],
    ["employees", "subsidiaries", "members", "branches"],
    ["revenue", "profit", "assets", "shares"],
    ["population", "area", "distance", "elevation"],
    ["founded", "established", "duration", "tenure"],
];

/// Per-family ground-truth ranges (magnitudes differ wildly, as in KBP).
const TRUTH_RANGES: [(f64, f64); 5] = [
    (1.0, 100.0),         // biographical
    (10.0, 50_000.0),     // organizational
    (1.0, 900.0),         // financial (millions)
    (100.0, 1_000_000.0), // geographic
    (1800.0, 2013.0),     // temporal
];

/// Configuration of the SFV generator; defaults mirror §6.1.2/§6.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SfvConfig {
    /// Number of slot-filling systems acting as users (paper: 18).
    pub n_systems: usize,
    /// Number of entities (paper: 100).
    pub n_entities: usize,
    /// Slots generated per entity (4 per family × 5 families = 20 →
    /// ~2 000 tasks, matching the paper).
    pub slots_per_entity: usize,
    /// Per-family expertise range of each system.
    pub expertise_range: (f64, f64),
    /// Processing-time range in hours (§6.2: `[1, 2]`).
    pub time_range: (f64, f64),
    /// Average capability `τ` (§6.2: 12).
    pub tau: f64,
    /// Capability spread (§6.2: 4).
    pub capacity_spread: f64,
    /// Per-assignment recruiting cost.
    pub cost: f64,
    /// Fraction of answers drawn from the matched-moments uniform.
    pub contamination: f64,
}

impl Default for SfvConfig {
    fn default() -> Self {
        SfvConfig {
            n_systems: 18,
            n_entities: 100,
            slots_per_entity: 20,
            expertise_range: (0.3, 3.0),
            time_range: (1.0, 2.0),
            tau: 12.0,
            capacity_spread: 4.0,
            cost: 1.0,
            contamination: 0.08,
        }
    }
}

impl SfvConfig {
    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if counts are zero, `slots_per_entity > 20`, or ranges are
    /// inverted.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.n_systems > 0 && self.n_entities > 0 && self.slots_per_entity > 0);
        assert!(
            self.slots_per_entity <= 20,
            "at most 20 slot types are defined"
        );
        assert!(self.expertise_range.0 > 0.0 && self.expertise_range.0 < self.expertise_range.1);
        assert!(self.time_range.0 > 0.0 && self.time_range.0 < self.time_range.1);
        let mut rng = StdRng::seed_from_u64(seed);
        let n_families = SFV_TOPICS.len();

        let users: Vec<UserSpec> = (0..self.n_systems)
            .map(|i| UserSpec {
                id: UserId(i as u32),
                expertise: (0..n_families)
                    .map(|_| rng.gen_range(self.expertise_range.0..self.expertise_range.1))
                    .collect(),
                capacity: (self.tau + rng.gen_range(-self.capacity_spread..=self.capacity_spread))
                    .max(0.0),
            })
            .collect();

        let mut tasks = Vec::with_capacity(self.n_entities * self.slots_per_entity);
        let mut next_id = 0u32;
        for entity in 0..self.n_entities {
            for slot_idx in 0..self.slots_per_entity {
                let family = slot_idx % n_families;
                let slot = SLOTS[family][slot_idx / n_families % 4];
                let context =
                    SFV_TOPICS[family].words[rng.gen_range(0..SFV_TOPICS[family].words.len())];
                let (lo, hi) = TRUTH_RANGES[family];
                let sigma = (hi - lo) * rng.gen_range(0.01..0.08);
                tasks.push(TaskSpec {
                    id: TaskId(next_id),
                    description: Some(format!(
                        "What is the {slot} of the {context} entity{entity}?"
                    )),
                    oracle_domain: DomainId(family as u32),
                    ground_truth: rng.gen_range(lo..hi),
                    base_sigma: sigma,
                    processing_time: rng.gen_range(self.time_range.0..self.time_range.1),
                    cost: self.cost,
                });
                next_id += 1;
            }
        }

        Dataset {
            name: "sfv".into(),
            users,
            tasks,
            n_domains: n_families,
            noise: NoiseModel {
                uniform_bias_fraction: self.contamination,
            },
            domains_known: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta2_embed::PairWordExtractor;
    use std::collections::HashSet;

    #[test]
    fn matches_paper_shape() {
        let ds = SfvConfig::default().generate(0);
        assert_eq!(ds.users.len(), 18);
        assert_eq!(ds.tasks.len(), 2000);
        assert_eq!(ds.n_domains, 5);
        assert!(!ds.domains_known);
    }

    #[test]
    fn slot_topics_are_disjoint() {
        let mut seen: HashSet<&str> = HashSet::new();
        for t in SFV_TOPICS {
            for w in t.words {
                assert!(seen.insert(w), "word {w:?} in two families");
            }
        }
    }

    #[test]
    fn slots_belong_to_their_family_vocabulary() {
        for (family, slots) in SLOTS.iter().enumerate() {
            for slot in slots {
                assert!(
                    SFV_TOPICS[family].words.contains(slot),
                    "slot {slot} missing from family {family}"
                );
            }
        }
    }

    #[test]
    fn descriptions_extract_with_entity_target() {
        let ds = SfvConfig::default().generate(1);
        let ex = PairWordExtractor::new();
        for t in ds.tasks.iter().take(50) {
            let s = ex.extract(t.description.as_ref().unwrap());
            assert!(!s.query.is_empty(), "{:?}", t.description);
            assert!(!s.target.is_empty(), "{:?}", t.description);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            SfvConfig::default().generate(9),
            SfvConfig::default().generate(9)
        );
    }

    #[test]
    fn all_families_used_and_balanced() {
        let ds = SfvConfig::default().generate(2);
        let mut counts = [0usize; 5];
        for t in &ds.tasks {
            counts[t.oracle_domain.0 as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 400);
        }
    }

    #[test]
    fn magnitudes_differ_across_families() {
        let ds = SfvConfig::default().generate(3);
        let geo_max = ds
            .tasks
            .iter()
            .filter(|t| t.oracle_domain == DomainId(3))
            .map(|t| t.ground_truth)
            .fold(f64::MIN, f64::max);
        let bio_max = ds
            .tasks
            .iter()
            .filter(|t| t.oracle_domain == DomainId(0))
            .map(|t| t.ground_truth)
            .fold(f64::MIN, f64::max);
        assert!(geo_max > 100.0 * bio_max);
    }

    #[test]
    fn invalid_config_panics() {
        let cfg = SfvConfig {
            slots_per_entity: 25,
            ..SfvConfig::default()
        };
        assert!(std::panic::catch_unwind(move || cfg.generate(0)).is_err());
    }
}
