//! Dataset substrate for the ETA² reproduction.
//!
//! The paper evaluates on two real-world datasets and one synthetic dataset
//! (§6.1). The real ones are not redistributable — the survey dataset is
//! IRB-protected and the TAC-KBP SFV data is LDC-licensed — so this crate
//! generates faithful stand-ins that reproduce the *statistics the
//! evaluation depends on* (see DESIGN.md §3 for the substitution argument):
//!
//! * [`survey`] — 60 users × 150 templated campus questions over 8 topics,
//!   heterogeneous per-topic expertise, mild outlier contamination so the
//!   χ² normality pass rate lands near the paper's ~90 % (Table 1).
//! * [`sfv`] — 18 "slot-filling systems" × ~2 000 numeric questions about
//!   100 entities, expertise varying by slot family.
//! * [`synthetic`] — exactly the recipe of §6.1.3: 100 users, 8 known
//!   domains, 1 000 tasks, `u ~ U[0,3]`, `μ ~ U[0,20]`, `σ ~ U[0.5,5]`.
//!
//! All three produce the same [`Dataset`] type, which owns the hidden
//! ground truth and expertise and exposes [`Dataset::observe`] — the
//! observation model `x_ij ~ N(μ_j, (σ_j/u_ij)²)` with optional uniform
//! contamination (the paper's Fig. 8 robustness experiment).
//!
//! # Examples
//!
//! ```
//! use eta2_datasets::synthetic::SyntheticConfig;
//! use rand::SeedableRng;
//!
//! let ds = SyntheticConfig::default().generate(7);
//! assert_eq!(ds.users.len(), 100);
//! assert_eq!(ds.tasks.len(), 1000);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let x = ds.observe(ds.users[0].id, &ds.tasks[0], &mut rng);
//! assert!(x.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod sfv;
pub mod survey;
pub mod synthetic;
pub mod types;

pub use types::{Dataset, NoiseModel, TaskSpec, UserSpec};
