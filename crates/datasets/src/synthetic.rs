//! The synthetic dataset, exactly as specified in the paper's §6.1.3.
//!
//! 100 users, 8 expertise domains, per-domain expertise `u ~ U[0, 3]`
//! (floored just above 0 — see [`SyntheticConfig::expertise_floor`]),
//! 1 000 tasks with `μ_j ~ U[0, 20]` and base number `σ_j ~ U[0.5, 5]`;
//! each task is *explicitly* assigned to a domain known to the server, so no
//! clustering is involved. Processing times are `U[0.5, 1.5]` hours (§6.2)
//! and the recruiting cost is one unit per assignment (§6.4.3).

use crate::types::{Dataset, NoiseModel, TaskSpec, UserSpec};
use eta2_core::model::{DomainId, TaskId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic generator; defaults mirror §6.1.3/§6.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of users (paper: 100).
    pub n_users: usize,
    /// Number of expertise domains (paper: 8).
    pub n_domains: usize,
    /// Number of tasks (paper: 1000).
    pub n_tasks: usize,
    /// Expertise upper bound (paper: `U[0, 3]`).
    pub expertise_max: f64,
    /// Lower floor applied to the drawn expertise: the paper draws from
    /// `[0, 3]` but `u = 0` means infinite observation variance, which the
    /// model cannot represent.
    pub expertise_floor: f64,
    /// Ground-truth range (paper: `[0, 20]`).
    pub truth_range: (f64, f64),
    /// Base-number range (paper: `[0.5, 5]`).
    pub sigma_range: (f64, f64),
    /// Processing-time range in hours (§6.2: `[0.5, 1.5]`).
    pub time_range: (f64, f64),
    /// Average capability `τ` (§6.2: 12) — capacities drawn from
    /// `[τ − spread, τ + spread]`.
    pub tau: f64,
    /// Capability spread (§6.2: 4).
    pub capacity_spread: f64,
    /// Per-assignment recruiting cost (§6.4.3: 1).
    pub cost: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_users: 100,
            n_domains: 8,
            n_tasks: 1000,
            expertise_max: 3.0,
            expertise_floor: 0.05,
            truth_range: (0.0, 20.0),
            sigma_range: (0.5, 5.0),
            time_range: (0.5, 1.5),
            tau: 12.0,
            capacity_spread: 4.0,
            cost: 1.0,
        }
    }
}

impl SyntheticConfig {
    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or a range is inverted.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.n_users > 0 && self.n_domains > 0 && self.n_tasks > 0);
        assert!(self.truth_range.0 < self.truth_range.1);
        assert!(self.sigma_range.0 < self.sigma_range.1 && self.sigma_range.0 > 0.0);
        assert!(self.time_range.0 < self.time_range.1 && self.time_range.0 > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);

        let users: Vec<UserSpec> = (0..self.n_users)
            .map(|i| UserSpec {
                id: UserId(i as u32),
                expertise: (0..self.n_domains)
                    .map(|_| {
                        rng.gen_range(0.0..self.expertise_max)
                            .max(self.expertise_floor)
                    })
                    .collect(),
                capacity: (self.tau + rng.gen_range(-self.capacity_spread..=self.capacity_spread))
                    .max(0.0),
            })
            .collect();

        let tasks: Vec<TaskSpec> = (0..self.n_tasks)
            .map(|j| TaskSpec {
                id: TaskId(j as u32),
                description: None,
                oracle_domain: DomainId(rng.gen_range(0..self.n_domains) as u32),
                ground_truth: rng.gen_range(self.truth_range.0..self.truth_range.1),
                base_sigma: rng.gen_range(self.sigma_range.0..self.sigma_range.1),
                processing_time: rng.gen_range(self.time_range.0..self.time_range.1),
                cost: self.cost,
            })
            .collect();

        Dataset {
            name: "synthetic".into(),
            users,
            tasks,
            n_domains: self.n_domains,
            noise: NoiseModel::default(),
            domains_known: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matches_paper_defaults() {
        let ds = SyntheticConfig::default().generate(0);
        assert_eq!(ds.users.len(), 100);
        assert_eq!(ds.tasks.len(), 1000);
        assert_eq!(ds.n_domains, 8);
        assert!(ds.domains_known);
        for u in &ds.users {
            assert_eq!(u.expertise.len(), 8);
            for &e in &u.expertise {
                assert!((0.05..=3.0).contains(&e));
            }
            assert!((8.0..=16.0).contains(&u.capacity));
        }
        for t in &ds.tasks {
            assert!((0.0..20.0).contains(&t.ground_truth));
            assert!((0.5..5.0).contains(&t.base_sigma));
            assert!((0.5..1.5).contains(&t.processing_time));
            assert_eq!(t.cost, 1.0);
            assert!(t.description.is_none());
            assert!((t.oracle_domain.0 as usize) < 8);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticConfig::default().generate(42);
        let b = SyntheticConfig::default().generate(42);
        assert_eq!(a, b);
        let c = SyntheticConfig::default().generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn every_domain_used() {
        let ds = SyntheticConfig::default().generate(1);
        let used: HashSet<u32> = ds.tasks.iter().map(|t| t.oracle_domain.0).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn custom_config_respected() {
        let cfg = SyntheticConfig {
            n_users: 5,
            n_domains: 2,
            n_tasks: 10,
            ..SyntheticConfig::default()
        };
        let ds = cfg.generate(0);
        assert_eq!(ds.users.len(), 5);
        assert_eq!(ds.tasks.len(), 10);
        assert_eq!(ds.n_domains, 2);
    }

    #[test]
    fn invalid_config_panics() {
        let cfg = SyntheticConfig {
            n_tasks: 0,
            ..SyntheticConfig::default()
        };
        assert!(std::panic::catch_unwind(move || cfg.generate(0)).is_err());
        let cfg = SyntheticConfig {
            sigma_range: (5.0, 0.5),
            ..SyntheticConfig::default()
        };
        assert!(std::panic::catch_unwind(move || cfg.generate(0)).is_err());
    }
}
