//! Common dataset types: specs with hidden ground truth, and the
//! observation model.

use eta2_core::model::{DomainId, Task, TaskId, UserId, UserProfile};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A task with its *hidden* evaluation data: the oracle domain, the ground
/// truth `μ_j` and the base number `σ_j` the observation model uses.
///
/// The algorithms under test never see `ground_truth`, `base_sigma` or
/// (except for the synthetic dataset, §6.1.3) `oracle_domain`; the
/// evaluation harness uses them for error measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task identifier.
    pub id: TaskId,
    /// Natural-language description (None for the synthetic dataset, whose
    /// domains are pre-known and need no clustering).
    pub description: Option<String>,
    /// The true expertise domain.
    pub oracle_domain: DomainId,
    /// The true value `μ_j`.
    pub ground_truth: f64,
    /// The base number `σ_j` scaling observation noise.
    pub base_sigma: f64,
    /// Processing time `t_j` (hours).
    pub processing_time: f64,
    /// Recruiting cost `c_j`.
    pub cost: f64,
}

impl TaskSpec {
    /// The allocator-facing [`Task`] with the given (estimated or oracle)
    /// domain.
    pub fn to_task(&self, domain: DomainId) -> Task {
        Task::new(self.id, domain, self.processing_time, self.cost)
    }

    /// The allocator-facing [`Task`] using the oracle domain.
    pub fn to_oracle_task(&self) -> Task {
        self.to_task(self.oracle_domain)
    }
}

/// A user with hidden true expertise per oracle domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserSpec {
    /// User identifier.
    pub id: UserId,
    /// True expertise `u_i^k` indexed by oracle domain id.
    pub expertise: Vec<f64>,
    /// Processing capability `T_i` (hours per time step).
    pub capacity: f64,
}

impl UserSpec {
    /// The allocator-facing profile.
    pub fn to_profile(&self) -> UserProfile {
        UserProfile::new(self.id, self.capacity)
    }
}

/// How observation noise is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Fraction of observations drawn from a *uniform* distribution with
    /// the same mean and standard deviation instead of the normal — the
    /// paper's Fig. 8 robustness knob. `0.0` is the pure model.
    pub uniform_bias_fraction: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            uniform_bias_fraction: 0.0,
        }
    }
}

/// A complete generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name ("survey", "sfv", "synthetic").
    pub name: String,
    /// Users with hidden expertise.
    pub users: Vec<UserSpec>,
    /// Tasks with hidden truth.
    pub tasks: Vec<TaskSpec>,
    /// Number of oracle domains.
    pub n_domains: usize,
    /// The noise model for [`Dataset::observe`].
    pub noise: NoiseModel,
    /// Whether the oracle domains are visible to the system under test
    /// (true only for the synthetic dataset, §6.1.3).
    pub domains_known: bool,
}

impl Dataset {
    /// Draws the observation of `user` for `task` from the paper's model
    /// `N(μ_j, (σ_j/u_ij)²)`, with the configured uniform contamination.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn observe<R: Rng + ?Sized>(&self, user: UserId, task: &TaskSpec, rng: &mut R) -> f64 {
        let spec = &self.users[user.0 as usize];
        assert_eq!(spec.id, user, "user ids must be dense and ordered");
        let u = spec.expertise[task.oracle_domain.0 as usize].max(1e-3);
        let std = task.base_sigma / u;
        if self.noise.uniform_bias_fraction > 0.0
            && rng.gen::<f64>() < self.noise.uniform_bias_fraction
        {
            // Uniform with the same mean and std: half-width √3·std.
            let half = 3f64.sqrt() * std;
            rng.gen_range(task.ground_truth - half..task.ground_truth + half)
        } else {
            task.ground_truth + eta2_stats::normal::standard_sample(rng) * std
        }
    }

    /// The true expertise of `user` in `domain` (evaluation only).
    ///
    /// # Panics
    ///
    /// Panics if `user` or `domain` is out of range.
    pub fn true_expertise(&self, user: UserId, domain: DomainId) -> f64 {
        self.users[user.0 as usize].expertise[domain.0 as usize]
    }

    /// Allocator-facing profiles for all users.
    pub fn profiles(&self) -> Vec<UserProfile> {
        self.users.iter().map(UserSpec::to_profile).collect()
    }

    /// Re-draws every user's capacity uniformly from
    /// `[tau − spread, tau + spread]`, floored at 0 — the paper's §6.2
    /// capability model, re-rolled per experiment point.
    pub fn regenerate_capacities<R: Rng + ?Sized>(&mut self, tau: f64, spread: f64, rng: &mut R) {
        assert!(spread >= 0.0, "spread must be non-negative");
        for u in &mut self.users {
            u.capacity = (tau + rng.gen_range(-spread..=spread)).max(0.0);
        }
    }

    /// Sets the uniform-contamination fraction (Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction ≤ 1`.
    pub fn set_uniform_bias(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        self.noise.uniform_bias_fraction = fraction;
    }

    /// Splits the task list into `days` arrival batches of near-equal size
    /// (§6.2: tasks evenly distributed over five days). Returns indices
    /// into `self.tasks`.
    pub fn arrival_schedule(&self, days: usize) -> Vec<Vec<usize>> {
        assert!(days > 0, "need at least one day");
        let mut schedule = vec![Vec::new(); days];
        for (idx, _) in self.tasks.iter().enumerate() {
            schedule[idx * days / self.tasks.len().max(1)].push(idx);
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        Dataset {
            name: "tiny".into(),
            users: vec![
                UserSpec {
                    id: UserId(0),
                    expertise: vec![2.0, 0.5],
                    capacity: 10.0,
                },
                UserSpec {
                    id: UserId(1),
                    expertise: vec![1.0, 1.0],
                    capacity: 8.0,
                },
            ],
            tasks: vec![
                TaskSpec {
                    id: TaskId(0),
                    description: Some("What is the noise level near the building?".into()),
                    oracle_domain: DomainId(0),
                    ground_truth: 10.0,
                    base_sigma: 1.0,
                    processing_time: 1.0,
                    cost: 1.0,
                },
                TaskSpec {
                    id: TaskId(1),
                    description: None,
                    oracle_domain: DomainId(1),
                    ground_truth: -4.0,
                    base_sigma: 2.0,
                    processing_time: 2.0,
                    cost: 1.0,
                },
            ],
            n_domains: 2,
            noise: NoiseModel::default(),
            domains_known: false,
        }
    }

    #[test]
    fn observe_concentrates_for_experts() {
        let ds = tiny_dataset();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 4000;
        let spread = |user: UserId, task: &TaskSpec, rng: &mut rand::rngs::StdRng| -> f64 {
            let mut ss = 0.0;
            for _ in 0..n {
                let x = ds.observe(user, task, rng);
                ss += (x - task.ground_truth).powi(2);
            }
            (ss / n as f64).sqrt()
        };
        // User 0 has expertise 2.0 in domain 0 → std 0.5; user 1 → std 1.0.
        let s0 = spread(UserId(0), &ds.tasks[0], &mut rng);
        let s1 = spread(UserId(1), &ds.tasks[0], &mut rng);
        assert!((s0 - 0.5).abs() < 0.05, "s0 = {s0}");
        assert!((s1 - 1.0).abs() < 0.05, "s1 = {s1}");
    }

    #[test]
    fn uniform_bias_keeps_mean_and_std() {
        let mut ds = tiny_dataset();
        ds.set_uniform_bias(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let task = &ds.tasks[0];
        let n = 30_000;
        let (mut sum, mut ss, mut min, mut max) = (0.0, 0.0, f64::MAX, f64::MIN);
        for _ in 0..n {
            let x = ds.observe(UserId(1), task, &mut rng);
            sum += x;
            ss += (x - task.ground_truth).powi(2);
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        let std = (ss / n as f64).sqrt();
        assert!((mean - 10.0).abs() < 0.03, "mean = {mean}");
        assert!((std - 1.0).abs() < 0.03, "std = {std}");
        // Uniform support is bounded by √3·std.
        assert!(min >= 10.0 - 3f64.sqrt() - 1e-9);
        assert!(max <= 10.0 + 3f64.sqrt() + 1e-9);
    }

    #[test]
    fn set_uniform_bias_validates() {
        let mut ds = tiny_dataset();
        assert!(std::panic::catch_unwind(move || ds.set_uniform_bias(1.5)).is_err());
    }

    #[test]
    fn task_and_user_conversions() {
        let ds = tiny_dataset();
        let t = ds.tasks[1].to_oracle_task();
        assert_eq!(t.domain, DomainId(1));
        assert_eq!(t.processing_time, 2.0);
        let t2 = ds.tasks[1].to_task(DomainId(5));
        assert_eq!(t2.domain, DomainId(5));
        let profiles = ds.profiles();
        assert_eq!(profiles[1].capacity, 8.0);
    }

    #[test]
    fn regenerate_capacities_within_band() {
        let mut ds = tiny_dataset();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        ds.regenerate_capacities(12.0, 4.0, &mut rng);
        for u in &ds.users {
            assert!((8.0..=16.0).contains(&u.capacity), "{}", u.capacity);
        }
        // tau smaller than spread floors at zero.
        ds.regenerate_capacities(1.0, 4.0, &mut rng);
        for u in &ds.users {
            assert!(u.capacity >= 0.0);
        }
    }

    #[test]
    fn arrival_schedule_partitions_tasks() {
        let ds = tiny_dataset();
        let schedule = ds.arrival_schedule(5);
        assert_eq!(schedule.len(), 5);
        let total: usize = schedule.iter().map(Vec::len).sum();
        assert_eq!(total, ds.tasks.len());
        // Balanced to within one task.
        let sizes: Vec<usize> = schedule.iter().map(Vec::len).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1);
    }

    #[test]
    fn true_expertise_lookup() {
        let ds = tiny_dataset();
        assert_eq!(ds.true_expertise(UserId(0), DomainId(1)), 0.5);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = tiny_dataset();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
