//! The survey-like dataset (paper §6.1.1).
//!
//! The original dataset — 60 campus participants answering 150 everyday
//! questions — is IRB-protected, so this generator reproduces its shape:
//! templated English questions over eight everyday topics (the same topics
//! the bundled embedding corpus is built from, so the pair-word pipeline
//! can actually cluster them), heterogeneous per-topic user expertise, and
//! mild uniform contamination so the χ² normality pass rate lands near the
//! paper's ~90 % (Table 1) instead of a sterile 100 %.

use crate::types::{Dataset, NoiseModel, TaskSpec, UserSpec};
use eta2_core::model::{DomainId, TaskId, UserId};
use eta2_embed::corpus::{Topic, BUILTIN_TOPICS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The topics survey questions are drawn from: the first eight built-in
/// corpus topics (parking, commute, salary, noise, dining, weather, sports,
/// academics).
pub fn survey_topics() -> &'static [Topic] {
    &BUILTIN_TOPICS[..8]
}

/// Per-topic ground-truth ranges, giving the magnitude diversity the paper
/// notes ("the magnitude of the data may vary tremendously").
const TRUTH_RANGES: [(f64, f64); 8] = [
    (0.0, 50.0),   // parking lots open
    (0.5, 10.0),   // driving hours
    (40.0, 120.0), // salary (k$)
    (30.0, 90.0),  // noise (dB)
    (1.0, 15.0),   // meal price ($)
    (-10.0, 35.0), // temperature (°C)
    (0.0, 500.0),  // attendance (hundreds)
    (5.0, 400.0),  // students in a class
];

/// Configuration of the survey generator; defaults mirror §6.1.1/§6.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Number of participants (paper: 60).
    pub n_users: usize,
    /// Number of questions (paper: 150 after replication).
    pub n_tasks: usize,
    /// Per-topic expertise range.
    pub expertise_range: (f64, f64),
    /// Processing-time range in hours (§6.2: `[2, 4]`).
    pub time_range: (f64, f64),
    /// Average capability `τ` (§6.2: 12).
    pub tau: f64,
    /// Capability spread (§6.2: 4).
    pub capacity_spread: f64,
    /// Per-assignment recruiting cost.
    pub cost: f64,
    /// Fraction of answers drawn from the matched-moments uniform instead
    /// of the normal — keeps Table 1's pass rate realistic.
    pub contamination: f64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            n_users: 60,
            n_tasks: 150,
            expertise_range: (0.3, 3.0),
            time_range: (2.0, 4.0),
            tau: 12.0,
            capacity_spread: 4.0,
            cost: 1.0,
            contamination: 0.10,
        }
    }
}

impl SurveyConfig {
    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if counts are zero or ranges are inverted.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.n_users > 0 && self.n_tasks > 0);
        assert!(self.expertise_range.0 > 0.0 && self.expertise_range.0 < self.expertise_range.1);
        assert!(self.time_range.0 > 0.0 && self.time_range.0 < self.time_range.1);
        let topics = survey_topics();
        let mut rng = StdRng::seed_from_u64(seed);

        let users: Vec<UserSpec> = (0..self.n_users)
            .map(|i| UserSpec {
                id: UserId(i as u32),
                expertise: (0..topics.len())
                    .map(|_| rng.gen_range(self.expertise_range.0..self.expertise_range.1))
                    .collect(),
                capacity: (self.tau + rng.gen_range(-self.capacity_spread..=self.capacity_spread))
                    .max(0.0),
            })
            .collect();

        let tasks: Vec<TaskSpec> = (0..self.n_tasks)
            .map(|j| {
                // Round-robin topics so every domain is populated evenly.
                let topic_idx = j % topics.len();
                let topic = &topics[topic_idx];
                let (lo, hi) = TRUTH_RANGES[topic_idx];
                let sigma = (hi - lo) * rng.gen_range(0.02..0.10);
                TaskSpec {
                    id: TaskId(j as u32),
                    description: Some(compose_question(topic, &mut rng)),
                    oracle_domain: DomainId(topic_idx as u32),
                    ground_truth: rng.gen_range(lo..hi),
                    base_sigma: sigma,
                    processing_time: rng.gen_range(self.time_range.0..self.time_range.1),
                    cost: self.cost,
                }
            })
            .collect();

        Dataset {
            name: "survey".into(),
            users,
            tasks,
            n_domains: topics.len(),
            noise: NoiseModel {
                uniform_bias_fraction: self.contamination,
            },
            domains_known: false,
        }
    }
}

/// Composes a templated question whose content words come from the topic's
/// corpus vocabulary, so the pair-word pipeline can embed and cluster it.
fn compose_question<R: Rng + ?Sized>(topic: &Topic, rng: &mut R) -> String {
    let pick = |rng: &mut R| topic.words[rng.gen_range(0..topic.words.len())];
    let a = pick(rng);
    let b = pick(rng);
    let c = pick(rng);
    match rng.gen_range(0..3) {
        0 => format!("What is the {a} {b} around the {c}?"),
        1 => format!("How many {a} are at the {b} {c} today?"),
        _ => format!("What is the average {a} of the {b} near the {c}?"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta2_embed::PairWordExtractor;
    use std::collections::HashSet;

    #[test]
    fn matches_paper_shape() {
        let ds = SurveyConfig::default().generate(0);
        assert_eq!(ds.users.len(), 60);
        assert_eq!(ds.tasks.len(), 150);
        assert_eq!(ds.n_domains, 8);
        assert!(!ds.domains_known);
        for t in &ds.tasks {
            assert!(t.description.is_some());
            assert!((2.0..4.0).contains(&t.processing_time));
            assert!(t.base_sigma > 0.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            SurveyConfig::default().generate(5),
            SurveyConfig::default().generate(5)
        );
        assert_ne!(
            SurveyConfig::default().generate(5),
            SurveyConfig::default().generate(6)
        );
    }

    #[test]
    fn descriptions_are_extractable() {
        let ds = SurveyConfig::default().generate(1);
        let ex = PairWordExtractor::new();
        for t in &ds.tasks {
            let s = ex.extract(t.description.as_ref().unwrap());
            assert!(
                !s.query.is_empty(),
                "no query extracted from {:?}",
                t.description
            );
        }
    }

    #[test]
    fn description_words_come_from_topic_vocabulary() {
        let ds = SurveyConfig::default().generate(2);
        for t in &ds.tasks {
            let topic = &survey_topics()[t.oracle_domain.0 as usize];
            let vocab: HashSet<&str> = topic.words.iter().copied().collect();
            let desc = t.description.as_ref().unwrap();
            let content: Vec<String> = eta2_embed::text::content_words(desc)
                .into_iter()
                .filter(|w| !matches!(w.as_str(), "what" | "how" | "many" | "much"))
                .collect();
            let in_vocab = content
                .iter()
                .filter(|w| vocab.contains(w.as_str()))
                .count();
            assert!(
                in_vocab >= 2,
                "description {desc:?} shares too few words with topic {}",
                topic.name
            );
        }
    }

    #[test]
    fn every_topic_has_tasks() {
        let ds = SurveyConfig::default().generate(3);
        let domains: HashSet<u32> = ds.tasks.iter().map(|t| t.oracle_domain.0).collect();
        assert_eq!(domains.len(), 8);
    }

    #[test]
    fn contamination_is_configurable() {
        let ds = SurveyConfig {
            contamination: 0.0,
            ..SurveyConfig::default()
        }
        .generate(0);
        assert_eq!(ds.noise.uniform_bias_fraction, 0.0);
    }

    #[test]
    fn truth_ranges_differ_across_topics() {
        // The paper's normalization story depends on magnitude diversity.
        let ds = SurveyConfig::default().generate(4);
        let mut max_by_domain = [f64::MIN; 8];
        for t in &ds.tasks {
            let d = t.oracle_domain.0 as usize;
            max_by_domain[d] = max_by_domain[d].max(t.ground_truth);
        }
        let lo = max_by_domain.iter().cloned().fold(f64::MAX, f64::min);
        let hi = max_by_domain.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi / lo.max(1e-9) > 3.0, "magnitudes too uniform");
    }
}
