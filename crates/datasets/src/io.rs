//! JSON persistence for datasets and experiment artifacts.
//!
//! Generated datasets are cheap to re-create, but persisting them lets
//! experiment runs be audited and diffed (EXPERIMENTS.md references the
//! exact inputs). Plain `serde_json` over [`crate::Dataset`].

use crate::types::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Error returned by dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// (De)serialization error.
    Json(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "dataset file i/o failed: {e}"),
            IoError::Json(e) => write!(f, "dataset (de)serialization failed: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Saves `dataset` as pretty-printed JSON at `path`.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_dataset<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), IoError> {
    let file = File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), dataset)?;
    Ok(())
}

/// Loads a dataset from JSON at `path`.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset, IoError> {
    let file = File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    #[test]
    fn save_load_roundtrip() {
        let ds = SyntheticConfig {
            n_users: 4,
            n_tasks: 6,
            n_domains: 2,
            ..SyntheticConfig::default()
        }
        .generate(0);
        let dir = std::env::temp_dir().join("eta2_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_dataset("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("eta2_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all").unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert!(matches!(err, IoError::Json(_)));
        std::fs::remove_file(&path).ok();
    }
}
