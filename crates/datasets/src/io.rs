//! JSON persistence for datasets and experiment artifacts.
//!
//! Generated datasets are cheap to re-create, but persisting them lets
//! experiment runs be audited and diffed (EXPERIMENTS.md references the
//! exact inputs). Plain `serde_json` over [`crate::Dataset`], plus boundary
//! validation on load so corrupt files are rejected before they reach the
//! simulation or the solver.

use crate::types::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Error returned by dataset I/O. Every variant carries the offending path
/// so failures deep in an experiment sweep remain diagnosable.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io {
        /// The file the operation targeted.
        path: PathBuf,
        /// Underlying cause.
        source: std::io::Error,
    },
    /// (De)serialization error.
    Json {
        /// The file the operation targeted.
        path: PathBuf,
        /// Underlying cause.
        source: serde_json::Error,
    },
    /// The file parsed, but its contents violate a dataset invariant
    /// (non-finite numbers, inconsistent dimensions, …).
    Corrupt {
        /// The file the dataset was loaded from.
        path: PathBuf,
        /// What invariant was violated.
        detail: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io { path, source } => {
                write!(
                    f,
                    "dataset file i/o failed for {}: {source}",
                    path.display()
                )
            }
            IoError::Json { path, source } => write!(
                f,
                "dataset (de)serialization failed for {}: {source}",
                path.display()
            ),
            IoError::Corrupt { path, detail } => {
                write!(f, "corrupt dataset {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io { source, .. } => Some(source),
            IoError::Json { source, .. } => Some(source),
            IoError::Corrupt { .. } => None,
        }
    }
}

/// Checks the invariants every well-formed [`Dataset`] satisfies. Returns
/// the first violation as a human-readable description.
fn validate(ds: &Dataset) -> Result<(), String> {
    if ds.n_domains == 0 {
        return Err("n_domains must be positive".into());
    }
    if !(0.0..=1.0).contains(&ds.noise.uniform_bias_fraction) {
        return Err(format!(
            "noise.uniform_bias_fraction {} outside [0, 1]",
            ds.noise.uniform_bias_fraction
        ));
    }
    for (i, u) in ds.users.iter().enumerate() {
        if u.id.0 as usize != i {
            return Err(format!(
                "user ids must be dense and ordered; slot {i} holds id {}",
                u.id.0
            ));
        }
        if !u.capacity.is_finite() || u.capacity < 0.0 {
            return Err(format!(
                "user {i} capacity {} is not finite and non-negative",
                u.capacity
            ));
        }
        if u.expertise.len() != ds.n_domains {
            return Err(format!(
                "user {i} has {} expertise entries for {} domains",
                u.expertise.len(),
                ds.n_domains
            ));
        }
        if let Some(e) = u.expertise.iter().find(|e| !e.is_finite() || **e < 0.0) {
            return Err(format!(
                "user {i} expertise {e} is not finite and non-negative"
            ));
        }
    }
    for (i, t) in ds.tasks.iter().enumerate() {
        if (t.oracle_domain.0 as usize) >= ds.n_domains {
            return Err(format!(
                "task {i} oracle_domain {} out of range for {} domains",
                t.oracle_domain.0, ds.n_domains
            ));
        }
        if !t.ground_truth.is_finite() {
            return Err(format!(
                "task {i} ground_truth {} is not finite",
                t.ground_truth
            ));
        }
        if !t.base_sigma.is_finite() || t.base_sigma <= 0.0 {
            return Err(format!(
                "task {i} base_sigma {} is not finite and positive",
                t.base_sigma
            ));
        }
        if !t.processing_time.is_finite() || t.processing_time <= 0.0 {
            return Err(format!(
                "task {i} processing_time {} is not finite and positive",
                t.processing_time
            ));
        }
        if !t.cost.is_finite() || t.cost < 0.0 {
            return Err(format!(
                "task {i} cost {} is not finite and non-negative",
                t.cost
            ));
        }
    }
    Ok(())
}

/// Saves `dataset` as pretty-printed JSON at `path`.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_dataset<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), IoError> {
    let path = path.as_ref();
    let file = File::create(path).map_err(|source| IoError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    serde_json::to_writer_pretty(BufWriter::new(file), dataset).map_err(|source| {
        IoError::Json {
            path: path.to_path_buf(),
            source,
        }
    })?;
    Ok(())
}

/// Loads a dataset from JSON at `path` and validates it: all numeric fields
/// must be finite, dimensions consistent, domains in range. A file that
/// parses but violates an invariant is rejected with [`IoError::Corrupt`]
/// so garbage never reaches the solver.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure, or
/// [`IoError::Corrupt`] when the parsed dataset is invalid.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset, IoError> {
    let path = path.as_ref();
    let file = File::open(path).map_err(|source| IoError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let ds: Dataset =
        serde_json::from_reader(BufReader::new(file)).map_err(|source| IoError::Json {
            path: path.to_path_buf(),
            source,
        })?;
    validate(&ds).map_err(|detail| IoError::Corrupt {
        path: path.to_path_buf(),
        detail,
    })?;
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn small_dataset() -> Dataset {
        SyntheticConfig {
            n_users: 4,
            n_tasks: 6,
            n_domains: 2,
            ..SyntheticConfig::default()
        }
        .generate(0)
    }

    #[test]
    fn save_load_roundtrip() {
        let ds = small_dataset();
        let dir = std::env::temp_dir().join("eta2_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_dataset("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, IoError::Io { .. }));
        assert!(err.to_string().contains("i/o"));
        assert!(err.to_string().contains("missing.json"));
    }

    #[test]
    fn load_garbage_errors() {
        let dir = std::env::temp_dir().join("eta2_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all").unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert!(matches!(err, IoError::Json { .. }));
        assert!(err.to_string().contains("garbage.json"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_out_of_range_domain() {
        let mut ds = small_dataset();
        ds.tasks[2].oracle_domain = eta2_core::model::DomainId(99);
        let dir = std::env::temp_dir().join("eta2_io_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_domain.json");
        save_dataset(&ds, &path).unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert!(matches!(err, IoError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("oracle_domain"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_negative_sigma() {
        let mut ds = small_dataset();
        ds.tasks[0].base_sigma = -1.0;
        let dir = std::env::temp_dir().join("eta2_io_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_sigma.json");
        save_dataset(&ds, &path).unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert!(matches!(err, IoError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("base_sigma"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_catches_expertise_dimension_mismatch() {
        let mut ds = small_dataset();
        ds.users[1].expertise.pop();
        let detail = validate(&ds).unwrap_err();
        assert!(detail.contains("expertise entries"));
    }
}
