//! Metrics recorded per simulation run — everything the paper's figures
//! consume.

use serde::{Deserialize, Serialize};

/// Metrics of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Average normalized estimation error per day (`|μ̂ − μ|/σ` averaged
    /// over the day's estimated tasks) — Figs. 5/6/8/9.
    pub daily_error: Vec<f64>,
    /// Average normalized estimation error over all tasks, final
    /// estimates.
    pub overall_error: f64,
    /// Tasks that never received an observation (possible under tight
    /// capability) — excluded from the error averages.
    pub uncovered_tasks: usize,
    /// Total recruiting cost `Σ s_ij · c_j` — Fig. 10.
    pub total_cost: f64,
    /// Iterations of every truth-analysis invocation — Fig. 12.
    pub mle_iterations: Vec<usize>,
    /// Mean absolute error of the expertise estimate vs the dataset's true
    /// expertise, after per-domain least-squares scale alignment (the
    /// model's per-domain expertise scale is unidentifiable — only ratios
    /// matter; see `eta2-core::truth::mle` docs). Only for expertise-aware
    /// approaches — Fig. 11.
    pub expertise_error: Option<f64>,
    /// Per task: `(users assigned, average true expertise of those users in
    /// the task's domain)` — Table 2.
    pub assignment_stats: Vec<(usize, f64)>,
    /// Per observation: `(estimated expertise, true expertise, |x − μ|/σ)`
    /// of the reporting user in the task's domain — Fig. 7. Only recorded
    /// when `SimConfig::record_observations` is set.
    pub observation_records: Vec<(f64, f64, f64)>,
    /// Number of expertise domains at the end of the run (learned or
    /// oracle).
    pub final_domains: usize,
    /// Faults fired by the injection plan (dropouts, corruptions,
    /// stragglers, collusion-biased reports) — 0 in fault-free runs.
    #[serde(default)]
    pub faults_injected: usize,
    /// Day-level re-allocations of tasks that ended a day with no usable
    /// observation — 0 in fault-free runs.
    #[serde(default)]
    pub alloc_retries: usize,
}

impl RunMetrics {
    /// Mean of `daily_error` (NaN if empty).
    pub fn mean_daily_error(&self) -> f64 {
        if self.daily_error.is_empty() {
            f64::NAN
        } else {
            self.daily_error.iter().sum::<f64>() / self.daily_error.len() as f64
        }
    }

    /// Distribution summary of the run, computed over the *finite* entries
    /// of `daily_error` (days without estimated tasks record NaN and are
    /// excluded). Feeds the end-of-run trace event.
    pub fn summary(&self) -> MetricsSummary {
        let mut finite: Vec<f64> = self
            .daily_error
            .iter()
            .copied()
            .filter(|e| e.is_finite())
            .collect();
        finite.sort_by(f64::total_cmp);
        let percentile = |q: f64| -> f64 {
            if finite.is_empty() {
                return f64::NAN;
            }
            // Nearest-rank: the smallest value with at least q of the mass
            // at or below it.
            let rank = ((q * finite.len() as f64).ceil() as usize).clamp(1, finite.len());
            finite[rank - 1]
        };
        MetricsSummary {
            mean_daily_error: if finite.is_empty() {
                f64::NAN
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            },
            p50_daily_error: percentile(0.50),
            p95_daily_error: percentile(0.95),
            total_mle_iterations: self.mle_iterations.iter().sum(),
        }
    }
}

/// Distribution summary of one run — see [`RunMetrics::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Mean of the finite per-day errors (NaN when no day estimated).
    pub mean_daily_error: f64,
    /// Median (nearest-rank) of the finite per-day errors.
    pub p50_daily_error: f64,
    /// 95th percentile (nearest-rank) of the finite per-day errors.
    pub p95_daily_error: f64,
    /// MLE iterations summed over every truth-analysis invocation.
    pub total_mle_iterations: usize,
}

/// Element-wise average of several runs' metrics — the paper averages every
/// experiment over 100 seeds (§6.2).
///
/// `daily_error` vectors must have equal lengths; scalar fields are
/// averaged; `mle_iterations`, `assignment_stats` and `observation_records`
/// are concatenated (they feed distribution plots, not averages).
///
/// # Panics
///
/// Panics on an empty slice or mismatched `daily_error` lengths.
pub fn average(runs: &[RunMetrics]) -> RunMetrics {
    assert!(!runs.is_empty(), "cannot average zero runs");
    let days = runs[0].daily_error.len();
    assert!(
        runs.iter().all(|r| r.daily_error.len() == days),
        "runs disagree on day count"
    );
    let n = runs.len() as f64;
    let mut daily_error = vec![0.0; days];
    for r in runs {
        for (d, &e) in r.daily_error.iter().enumerate() {
            daily_error[d] += e / n;
        }
    }
    let expertise_errors: Vec<f64> = runs.iter().filter_map(|r| r.expertise_error).collect();
    RunMetrics {
        daily_error,
        overall_error: runs.iter().map(|r| r.overall_error).sum::<f64>() / n,
        uncovered_tasks: (runs.iter().map(|r| r.uncovered_tasks).sum::<usize>() as f64 / n).round()
            as usize,
        total_cost: runs.iter().map(|r| r.total_cost).sum::<f64>() / n,
        mle_iterations: runs.iter().flat_map(|r| r.mle_iterations.clone()).collect(),
        expertise_error: if expertise_errors.is_empty() {
            None
        } else {
            Some(expertise_errors.iter().sum::<f64>() / expertise_errors.len() as f64)
        },
        assignment_stats: runs
            .iter()
            .flat_map(|r| r.assignment_stats.clone())
            .collect(),
        observation_records: runs
            .iter()
            .flat_map(|r| r.observation_records.clone())
            .collect(),
        final_domains: (runs.iter().map(|r| r.final_domains).sum::<usize>() as f64 / n).round()
            as usize,
        faults_injected: (runs.iter().map(|r| r.faults_injected).sum::<usize>() as f64 / n).round()
            as usize,
        alloc_retries: (runs.iter().map(|r| r.alloc_retries).sum::<usize>() as f64 / n).round()
            as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(errors: Vec<f64>, overall: f64, cost: f64) -> RunMetrics {
        RunMetrics {
            daily_error: errors,
            overall_error: overall,
            total_cost: cost,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn average_of_two_runs() {
        let mut a = mk(vec![1.0, 2.0], 1.5, 10.0);
        a.faults_injected = 4;
        a.alloc_retries = 2;
        let b = mk(vec![3.0, 4.0], 3.5, 30.0);
        let avg = average(&[a, b]);
        assert_eq!(avg.daily_error, vec![2.0, 3.0]);
        assert_eq!(avg.overall_error, 2.5);
        assert_eq!(avg.total_cost, 20.0);
        assert_eq!(avg.faults_injected, 2);
        assert_eq!(avg.alloc_retries, 1);
    }

    #[test]
    fn average_concatenates_distributions() {
        let mut a = mk(vec![1.0], 1.0, 0.0);
        a.mle_iterations = vec![3, 4];
        let mut b = mk(vec![1.0], 1.0, 0.0);
        b.mle_iterations = vec![7];
        let avg = average(&[a, b]);
        assert_eq!(avg.mle_iterations, vec![3, 4, 7]);
    }

    #[test]
    fn average_handles_expertise_option() {
        let mut a = mk(vec![1.0], 1.0, 0.0);
        a.expertise_error = Some(0.4);
        let b = mk(vec![1.0], 1.0, 0.0);
        let avg = average(&[a.clone(), b]);
        assert_eq!(avg.expertise_error, Some(0.4));
        let avg2 = average(&[a.clone(), a]);
        assert_eq!(avg2.expertise_error, Some(0.4));
    }

    #[test]
    #[should_panic(expected = "cannot average zero runs")]
    fn average_rejects_empty() {
        average(&[]);
    }

    #[test]
    #[should_panic(expected = "runs disagree on day count")]
    fn average_rejects_mismatched_days() {
        average(&[mk(vec![1.0], 1.0, 0.0), mk(vec![1.0, 2.0], 1.0, 0.0)]);
    }

    #[test]
    fn mean_daily_error_of_empty_is_nan() {
        assert!(mk(vec![], 0.0, 0.0).mean_daily_error().is_nan());
        assert_eq!(mk(vec![2.0, 4.0], 0.0, 0.0).mean_daily_error(), 3.0);
    }

    #[test]
    fn summary_basic_statistics() {
        let mut m = mk(vec![1.0, 2.0, 3.0, 4.0], 0.0, 0.0);
        m.mle_iterations = vec![3, 5, 2];
        let s = m.summary();
        assert_eq!(s.mean_daily_error, 2.5);
        assert_eq!(s.p50_daily_error, 2.0); // nearest-rank: ceil(0.5·4) = 2nd
        assert_eq!(s.p95_daily_error, 4.0); // ceil(0.95·4) = 4th
        assert_eq!(s.total_mle_iterations, 10);
    }

    #[test]
    fn summary_skips_nan_days() {
        let m = mk(vec![f64::NAN, 2.0, f64::NAN, 6.0], 0.0, 0.0);
        let s = m.summary();
        assert_eq!(s.mean_daily_error, 4.0);
        assert_eq!(s.p50_daily_error, 2.0);
        assert_eq!(s.p95_daily_error, 6.0);
    }

    #[test]
    fn summary_of_empty_run_is_nan() {
        let s = mk(vec![], 0.0, 0.0).summary();
        assert!(s.mean_daily_error.is_nan());
        assert!(s.p50_daily_error.is_nan());
        assert!(s.p95_daily_error.is_nan());
        assert_eq!(s.total_mle_iterations, 0);
    }
}
