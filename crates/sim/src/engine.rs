//! The day-by-day simulation engine.

use crate::config::{ApproachKind, SimConfig};
use crate::faults::{FaultAction, FaultPlan};
use crate::metrics::RunMetrics;
use crate::pipeline::{train_embedding_for, DomainTracker, PipelineError};
use eta2_core::allocation::{
    Allocation, DataSource, MaxQualityAllocator, MaxQualityConfig, MinCostAllocator, MinCostConfig,
    RandomAllocator, ReliabilityGreedyAllocator,
};
use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
use eta2_core::truth::baselines::{
    AverageLog, Crh, HubsAuthorities, MeanBaseline, TruthFinder, TruthMethod,
};
use eta2_core::truth::dynamic::DynamicExpertise;
use eta2_core::truth::mle::TruthEstimate;
use eta2_datasets::{Dataset, TaskSpec};
use eta2_embed::Embedding;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The simulator: replays the paper's crowdsourcing loop (§2.2) for one
/// approach on one dataset.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range
    /// (see [`SimConfig::validate`]).
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Simulation { config }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs one simulation, training the embedding internally if the
    /// dataset needs one. For sweeps, train once with
    /// [`train_embedding_for`] and use [`Simulation::run_with_embedding`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when the identification pipeline cannot be
    /// set up (embedding training failure).
    pub fn run(
        &self,
        dataset: &Dataset,
        approach: ApproachKind,
        seed: u64,
    ) -> Result<RunMetrics, PipelineError> {
        let embedding = train_embedding_for(dataset, &self.config)?;
        self.run_with_embedding(dataset, approach, seed, embedding.as_ref())
    }

    /// Runs one simulation with a pre-trained embedding (ignored for
    /// datasets whose domains are known).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::MissingEmbedding`] when the dataset needs
    /// clustering but no embedding was supplied.
    pub fn run_with_embedding(
        &self,
        dataset: &Dataset,
        approach: ApproachKind,
        seed: u64,
        embedding: Option<&Embedding>,
    ) -> Result<RunMetrics, PipelineError> {
        let _span = eta2_obs::span!("sim.run");
        let cfg = &self.config;
        let n_users = dataset.users.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = dataset.arrival_schedule(cfg.days);
        let profiles = dataset.profiles();
        let plan = FaultPlan::new(cfg.faults, seed);

        let mut tracker = if approach.is_expertise_aware() && !cfg.collapse_domains {
            Some(DomainTracker::new(dataset, embedding, cfg)?)
        } else {
            None
        };
        let mut dynexp = DynamicExpertise::new(n_users, cfg.alpha, cfg.mle_effective());
        let baseline_method: Option<Box<dyn TruthMethod>> = match approach {
            ApproachKind::HubsAuthorities => Some(Box::new(HubsAuthorities::default())),
            ApproachKind::AverageLog => Some(Box::new(AverageLog::default())),
            ApproachKind::TruthFinder => Some(Box::new(TruthFinder::default())),
            ApproachKind::Baseline => Some(Box::new(MeanBaseline)),
            ApproachKind::Crh => Some(Box::new(Crh::default())),
            ApproachKind::Eta2 | ApproachKind::Eta2MinCost => None,
        };

        let mut metrics = RunMetrics::default();
        let mut reliability = vec![1.0; n_users];
        let mut cumulative_obs = ObservationSet::new();
        let mut final_error: BTreeMap<TaskId, f64> = BTreeMap::new();
        // Per-task bookkeeping for Fig. 7 / Table 2.
        let mut task_domain: BTreeMap<TaskId, DomainId> = BTreeMap::new();
        let mut all_observations: Vec<(UserId, TaskId, f64)> = Vec::new();

        let spec_of = |id: TaskId| -> &TaskSpec { &dataset.tasks[id.0 as usize] };

        // Fault-tolerance state: straggler reports waiting to arrive,
        // tasks re-queued after a day without a usable observation, per-task
        // re-allocation budgets, and (straggler runs only) the delivered
        // reports per task so a late arrival can be re-estimated together
        // with its original observations.
        let mut straggler_buf: Vec<(usize, UserId, TaskId, f64)> = Vec::new();
        let mut carryover: Vec<Task> = Vec::new();
        let mut engine_retries: BTreeMap<TaskId, usize> = BTreeMap::new();
        let mut history: BTreeMap<TaskId, Vec<(UserId, f64)>> = BTreeMap::new();
        let keep_history = cfg.faults.straggler_rate > 0.0;

        for (day, indices) in schedule.iter().enumerate() {
            // Straggler reports due today (or overdue).
            let mut due: Vec<(UserId, TaskId, f64)> = Vec::new();
            straggler_buf.retain(|&(due_day, u, t, x)| {
                if due_day <= day {
                    due.push((u, t, x));
                    false
                } else {
                    true
                }
            });

            if indices.is_empty() && carryover.is_empty() && due.is_empty() {
                metrics.daily_error.push(f64::NAN);
                eta2_obs::emit_with(|| eta2_obs::Event::SimDay {
                    day: day as u64,
                    tasks: 0,
                    error: f64::NAN,
                    cumulative_cost: metrics.total_cost,
                });
                continue;
            }
            let specs: Vec<&TaskSpec> = indices.iter().map(|&i| &dataset.tasks[i]).collect();

            // (1) Identify domains (ETA² family only).
            let mut tasks_core: Vec<Task> = if indices.is_empty() {
                Vec::new()
            } else if cfg.collapse_domains {
                // Ablation: the system is blind to domains.
                specs.iter().map(|s| s.to_task(DomainId(0))).collect()
            } else if let Some(tracker) = tracker.as_mut() {
                let batch = tracker.identify(dataset, indices);
                for &(kept, absorbed) in &batch.merges {
                    dynexp.merge_domains(kept, absorbed);
                    for d in task_domain.values_mut() {
                        if *d == absorbed {
                            *d = kept;
                        }
                    }
                }
                specs
                    .iter()
                    .zip(&batch.domains)
                    .map(|(s, &d)| s.to_task(d))
                    .collect()
            } else {
                // Baselines ignore domains entirely.
                specs.iter().map(|s| s.to_task(DomainId(0))).collect()
            };
            for t in &tasks_core {
                task_domain.insert(t.id, t.domain);
            }
            // Re-queued tasks join today's batch. They were identified on
            // arrival; only a domain merge since then can rename them.
            for mut t in std::mem::take(&mut carryover) {
                if let Some(&d) = task_domain.get(&t.id) {
                    t.domain = d;
                }
                tasks_core.push(t);
            }

            // Straggler reports for tasks outside today's batch re-open
            // those tasks for truth analysis only (no re-allocation).
            let mut late_tasks: Vec<Task> = Vec::new();
            for &(_, t, _) in &due {
                if !tasks_core.iter().any(|task| task.id == t)
                    && !late_tasks.iter().any(|task| task.id == t)
                {
                    let domain = task_domain.get(&t).copied().unwrap_or(DomainId(0));
                    late_tasks.push(spec_of(t).to_task(domain));
                }
            }

            // (2) Allocate, collect, analyse.
            let day_truths: BTreeMap<TaskId, TruthEstimate> =
                if approach == ApproachKind::Eta2MinCost && day > 0 {
                    // ETA²-mc runs its own allocate→collect→analyse rounds.
                    let prior = dynexp.matrix();
                    let mut source = SimSource {
                        dataset,
                        rng: &mut rng,
                        plan: &plan,
                        day,
                        collected: Vec::new(),
                        delayed: Vec::new(),
                        faults: 0,
                    };
                    let outcome = MinCostAllocator::new(MinCostConfig {
                        epsilon: cfg.epsilon,
                        max_error: cfg.min_cost.max_error,
                        confidence_alpha: cfg.min_cost.confidence_alpha,
                        round_budget: cfg.min_cost.round_budget,
                        max_rounds: 100,
                        mle: cfg.mle_effective(),
                        ..MinCostConfig::default()
                    })
                    .allocate(&tasks_core, &profiles, &prior, &mut source);
                    metrics.faults_injected += source.faults;
                    straggler_buf.append(&mut source.delayed);
                    metrics.total_cost += outcome.total_cost;
                    metrics
                        .mle_iterations
                        .extend(outcome.mle_iterations.clone());
                    all_observations.extend(
                        source
                            .collected
                            .iter()
                            .copied()
                            .filter(|&(_, _, x)| x.is_finite()),
                    );
                    record_assignments(&mut metrics, dataset, &tasks_core, &outcome.allocation);
                    let mut obs = outcome.observations;
                    for &(u, t, x) in &due {
                        obs.insert(u, t, x);
                        if x.is_finite() {
                            all_observations.push((u, t, x));
                        }
                    }
                    for lt in &late_tasks {
                        if let Some(h) = history.get(&lt.id) {
                            for &(u, x) in h {
                                obs.insert(u, lt.id, x);
                            }
                        }
                    }
                    if keep_history {
                        for &(u, t, x) in source.collected.iter().chain(&due) {
                            history.entry(t).or_default().push((u, x));
                        }
                    }
                    let out = if late_tasks.is_empty() {
                        dynexp.ingest_batch(&tasks_core, &obs)
                    } else {
                        let mut ingest_tasks = tasks_core.clone();
                        ingest_tasks.extend(late_tasks.iter().copied());
                        dynexp.ingest_batch(&ingest_tasks, &obs)
                    };
                    metrics.mle_iterations.push(out.iterations);
                    out.truths
                } else {
                    // Warm-up day, ETA² proper, or a comparison approach.
                    let allocation = match approach {
                        _ if day == 0 => {
                            RandomAllocator::new().allocate(&tasks_core, &profiles, &mut rng)
                        }
                        ApproachKind::Eta2 | ApproachKind::Eta2MinCost => {
                            MaxQualityAllocator::new(MaxQualityConfig {
                                epsilon: cfg.epsilon,
                                use_approximation_pass: true,
                            })
                            .allocate(
                                &tasks_core,
                                &profiles,
                                &dynexp.matrix(),
                            )
                        }
                        ApproachKind::Baseline => {
                            RandomAllocator::new().allocate(&tasks_core, &profiles, &mut rng)
                        }
                        _ => ReliabilityGreedyAllocator::new().allocate(
                            &tasks_core,
                            &profiles,
                            &reliability,
                        ),
                    };
                    let mut day_obs = ObservationSet::new();
                    for (task, users) in allocation.iter() {
                        for &u in users {
                            let clean = dataset.observe(u, spec_of(task), &mut rng);
                            let (action, fired) = plan.apply(day, u, task, clean);
                            metrics.faults_injected += fired;
                            match action {
                                FaultAction::Deliver(x) => {
                                    day_obs.insert(u, task, x);
                                    if x.is_finite() {
                                        all_observations.push((u, task, x));
                                    }
                                    if keep_history {
                                        history.entry(task).or_default().push((u, x));
                                    }
                                }
                                FaultAction::Drop => {}
                                FaultAction::Delay { due_in, value } => {
                                    straggler_buf.push((day + due_in, u, task, value));
                                }
                            }
                        }
                    }
                    metrics.total_cost += allocation.total_cost(&tasks_core);
                    if approach.is_expertise_aware() && day > 0 {
                        record_assignments(&mut metrics, dataset, &tasks_core, &allocation);
                    }

                    // Straggler reports arriving today join the day's batch.
                    for &(u, t, x) in &due {
                        day_obs.insert(u, t, x);
                        if x.is_finite() {
                            all_observations.push((u, t, x));
                        }
                        if keep_history {
                            history.entry(t).or_default().push((u, x));
                        }
                    }

                    if let Some(method) = baseline_method.as_deref() {
                        // The reliability-based comparison methods are not
                        // hardened against non-finite payloads; the platform
                        // validates reports at ingestion on their behalf.
                        if plan.is_active() {
                            for o in day_obs.iter() {
                                if o.value.is_finite() {
                                    cumulative_obs.insert(o.user, o.task, o.value);
                                }
                            }
                        } else {
                            cumulative_obs.merge(&day_obs);
                        }
                        let result = method.estimate(&cumulative_obs, n_users);
                        reliability = result.reliability;
                        metrics.mle_iterations.push(result.iterations);
                        // Baselines re-estimate every task each day: refresh
                        // all final errors.
                        for (&id, &mu) in &result.truths {
                            let spec = spec_of(id);
                            final_error
                                .insert(id, (mu - spec.ground_truth).abs() / spec.base_sigma);
                        }
                        result
                            .truths
                            .iter()
                            .map(|(&id, &mu)| {
                                (
                                    id,
                                    TruthEstimate {
                                        mu,
                                        sigma: spec_of(id).base_sigma,
                                        fallback: false,
                                    },
                                )
                            })
                            .collect()
                    } else {
                        for lt in &late_tasks {
                            if let Some(h) = history.get(&lt.id) {
                                for &(u, x) in h {
                                    day_obs.insert(u, lt.id, x);
                                }
                            }
                        }
                        let out = if late_tasks.is_empty() {
                            dynexp.ingest_batch(&tasks_core, &day_obs)
                        } else {
                            let mut ingest_tasks = tasks_core.clone();
                            ingest_tasks.extend(late_tasks.iter().copied());
                            dynexp.ingest_batch(&ingest_tasks, &day_obs)
                        };
                        metrics.mle_iterations.push(out.iterations);
                        out.truths
                    }
                };

            // (3) Daily error over the day's estimated tasks. A task that
            // ends the day without an estimate (all reports dropped or
            // rejected) is re-queued for tomorrow's allocation, up to
            // `max_task_retries` extra days; past the budget it is
            // declared uncovered.
            let mut day_err = 0.0;
            let mut estimated = 0usize;
            for t in &tasks_core {
                if let Some(est) = day_truths.get(&t.id) {
                    let spec = spec_of(t.id);
                    let err = (est.mu - spec.ground_truth).abs() / spec.base_sigma;
                    day_err += err;
                    estimated += 1;
                    if approach.is_expertise_aware() || baseline_method.is_none() {
                        final_error.insert(t.id, err);
                    }
                } else {
                    let attempts = engine_retries.entry(t.id).or_insert(0);
                    if plan.is_active() && *attempts < cfg.faults.max_task_retries {
                        *attempts += 1;
                        metrics.alloc_retries += 1;
                        eta2_obs::counter("alloc.retry", 1);
                        let (attempt, id) = (*attempts as u64, t.id.0 as u64);
                        eta2_obs::emit_with(|| eta2_obs::Event::AllocationRetry {
                            strategy: "engine",
                            task: id,
                            attempt,
                        });
                        carryover.push(*t);
                    } else {
                        metrics.uncovered_tasks += 1;
                    }
                }
            }
            // Straggler-reopened tasks refresh their final error but stay
            // out of the daily average (they belong to an earlier day).
            for lt in &late_tasks {
                if let Some(est) = day_truths.get(&lt.id) {
                    let spec = spec_of(lt.id);
                    final_error.insert(lt.id, (est.mu - spec.ground_truth).abs() / spec.base_sigma);
                }
            }
            metrics.daily_error.push(if estimated > 0 {
                day_err / estimated as f64
            } else {
                f64::NAN
            });
            eta2_obs::emit_with(|| eta2_obs::Event::SimDay {
                day: day as u64,
                tasks: tasks_core.len() as u64,
                error: *metrics.daily_error.last().expect("just pushed"),
                cumulative_cost: metrics.total_cost,
            });
            eta2_obs::gauge("sim.day", day as f64);
            eta2_obs::gauge("sim.cumulative_cost", metrics.total_cost);
            if eta2_check::enabled() {
                let last = *metrics.daily_error.last().expect("just pushed");
                eta2_check::invariant!(
                    "sim.daily_error_valid",
                    estimated == 0 || (last.is_finite() && last >= 0.0),
                    "day {day}: error {last} over {estimated} estimated tasks"
                );
                eta2_check::invariant!(
                    "sim.cost_valid",
                    metrics.total_cost.is_finite() && metrics.total_cost >= 0.0,
                    "day {day}: cumulative cost {}",
                    metrics.total_cost
                );
            }
        }

        // Tasks still waiting for a retry when the horizon ends never got
        // a usable report.
        metrics.uncovered_tasks += carryover.len();

        metrics.overall_error = if final_error.is_empty() {
            f64::NAN
        } else {
            final_error.values().sum::<f64>() / final_error.len() as f64
        };

        // Fig. 11: expertise estimation error on datasets with oracle
        // domains (the learned-cluster ids don't align with oracle ids).
        // The model identifies expertise only up to a per-domain scale
        // (multiplying every u in a domain and the domain's σ_j by the same
        // constant leaves the likelihood unchanged), so each domain's
        // estimates are least-squares aligned to the truth before the MAE.
        if approach.is_expertise_aware() && dataset.domains_known {
            let mut err = 0.0;
            let mut count = 0usize;
            for d in 0..dataset.n_domains {
                let ests: Vec<f64> = (0..n_users)
                    .map(|u| dynexp.expertise(UserId(u as u32), DomainId(d as u32)))
                    .collect();
                let truths: Vec<f64> = (0..n_users)
                    .map(|u| dataset.true_expertise(UserId(u as u32), DomainId(d as u32)))
                    .collect();
                let dot: f64 = ests.iter().zip(&truths).map(|(e, t)| e * t).sum();
                let sq: f64 = ests.iter().map(|e| e * e).sum();
                let scale = if sq > 0.0 { dot / sq } else { 1.0 };
                for (e, t) in ests.iter().zip(&truths) {
                    err += (scale * e - t).abs();
                    count += 1;
                }
            }
            metrics.expertise_error = Some(err / count as f64);
        }

        // Fig. 7: observation error vs final estimated (and true) expertise.
        if cfg.record_observations {
            let matrix = dynexp.matrix();
            for &(user, task, x) in &all_observations {
                let spec = spec_of(task);
                let err = (x - spec.ground_truth).abs() / spec.base_sigma;
                let estimated = if approach.is_expertise_aware() {
                    matrix.get(user, task_domain[&task])
                } else {
                    reliability[user.0 as usize]
                };
                let truth = dataset.true_expertise(user, spec.oracle_domain);
                metrics.observation_records.push((estimated, truth, err));
            }
        }

        metrics.final_domains = tracker.as_ref().map_or(0, |t| t.domain_count(dataset));

        eta2_obs::emit_with(|| {
            let s = metrics.summary();
            eta2_obs::Event::RunSummary {
                approach: approach.name().to_string(),
                days: metrics.daily_error.len() as u64,
                overall_error: metrics.overall_error,
                total_cost: metrics.total_cost,
                mean_daily_error: s.mean_daily_error,
                p50_daily_error: s.p50_daily_error,
                p95_daily_error: s.p95_daily_error,
                total_mle_iterations: s.total_mle_iterations as u64,
                uncovered_tasks: metrics.uncovered_tasks as u64,
                final_domains: metrics.final_domains as u64,
            }
        });
        Ok(metrics)
    }
}

/// The min-cost allocator's interactive data source wired to the dataset's
/// observation model with fault injection in between.
struct SimSource<'a> {
    dataset: &'a Dataset,
    rng: &'a mut StdRng,
    plan: &'a FaultPlan,
    day: usize,
    /// Reports actually delivered (possibly corrupted).
    collected: Vec<(UserId, TaskId, f64)>,
    /// Straggler reports: `(due day, user, task, value)`.
    delayed: Vec<(usize, UserId, TaskId, f64)>,
    faults: usize,
}

impl DataSource for SimSource<'_> {
    fn try_collect(&mut self, user: UserId, task: &Task) -> Option<f64> {
        let spec = &self.dataset.tasks[task.id.0 as usize];
        let clean = self.dataset.observe(user, spec, &mut *self.rng);
        let (action, fired) = self.plan.apply(self.day, user, task.id, clean);
        self.faults += fired;
        match action {
            FaultAction::Deliver(x) => {
                self.collected.push((user, task.id, x));
                Some(x)
            }
            FaultAction::Drop => None,
            FaultAction::Delay { due_in, value } => {
                self.delayed.push((self.day + due_in, user, task.id, value));
                None
            }
        }
    }
}

/// Records Table 2 rows: users per task and their average *true* expertise
/// in the task's oracle domain.
fn record_assignments(
    metrics: &mut RunMetrics,
    dataset: &Dataset,
    tasks: &[Task],
    allocation: &Allocation,
) {
    for t in tasks {
        let users = allocation.users_for(t.id);
        if users.is_empty() {
            continue;
        }
        let oracle = dataset.tasks[t.id.0 as usize].oracle_domain;
        let avg: f64 = users
            .iter()
            .map(|&u| dataset.true_expertise(u, oracle))
            .sum::<f64>()
            / users.len() as f64;
        metrics.assignment_stats.push((users.len(), avg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use eta2_datasets::survey::SurveyConfig;
    use eta2_datasets::synthetic::SyntheticConfig;

    fn small_synth() -> Dataset {
        SyntheticConfig {
            n_users: 25,
            n_tasks: 80,
            n_domains: 4,
            ..SyntheticConfig::default()
        }
        .generate(11)
    }

    fn sim() -> Simulation {
        Simulation::new(SimConfig::default())
    }

    #[test]
    fn all_approaches_complete_on_synthetic() {
        let ds = small_synth();
        let s = sim();
        for approach in ApproachKind::ALL.into_iter().chain([ApproachKind::Crh]) {
            let m = s.run(&ds, approach, 1).unwrap();
            assert_eq!(m.daily_error.len(), 5, "{}", approach.name());
            assert!(
                m.daily_error.iter().all(|e| e.is_finite()),
                "{}: {:?}",
                approach.name(),
                m.daily_error
            );
            assert!(m.overall_error.is_finite(), "{}", approach.name());
            assert!(m.total_cost > 0.0, "{}", approach.name());
            assert!(!m.mle_iterations.is_empty(), "{}", approach.name());
        }
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let ds = small_synth();
        let s = sim();
        let a = s.run(&ds, ApproachKind::Eta2, 3).unwrap();
        let b = s.run(&ds, ApproachKind::Eta2, 3).unwrap();
        assert_eq!(a, b);
        let c = s.run(&ds, ApproachKind::Eta2, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn eta2_beats_baseline_on_synthetic() {
        let ds = small_synth();
        let s = sim();
        // Average a few seeds to smooth noise.
        let avg = |approach: ApproachKind| -> f64 {
            (0..5)
                .map(|seed| s.run(&ds, approach, seed).unwrap().overall_error)
                .sum::<f64>()
                / 5.0
        };
        let eta2 = avg(ApproachKind::Eta2);
        let baseline = avg(ApproachKind::Baseline);
        assert!(
            eta2 < baseline,
            "ETA2 {eta2:.4} not below Baseline {baseline:.4}"
        );
    }

    #[test]
    fn eta2_error_decreases_from_warmup() {
        // Daily errors are noisy on a small instance (each day carries
        // different tasks), so compare the warm-up day against the average
        // of the post-learning days over several seeds.
        let ds = SyntheticConfig {
            n_users: 40,
            n_tasks: 150,
            n_domains: 4,
            ..SyntheticConfig::default()
        }
        .generate(11);
        let s = sim();
        let mut first = 0.0;
        let mut late = 0.0;
        for seed in 0..10 {
            let m = s.run(&ds, ApproachKind::Eta2, seed).unwrap();
            first += m.daily_error[0];
            late += (m.daily_error[2] + m.daily_error[3] + m.daily_error[4]) / 3.0;
        }
        assert!(
            late < first,
            "late-day error {late:.4} not below warm-up {first:.4}"
        );
    }

    #[test]
    fn min_cost_cheaper_than_max_quality() {
        let ds = small_synth();
        let s = sim();
        let mut mq_cost = 0.0;
        let mut mc_cost = 0.0;
        for seed in 0..3 {
            mq_cost += s.run(&ds, ApproachKind::Eta2, seed).unwrap().total_cost;
            mc_cost += s
                .run(&ds, ApproachKind::Eta2MinCost, seed)
                .unwrap()
                .total_cost;
        }
        assert!(
            mc_cost < mq_cost,
            "ETA2-mc cost {mc_cost:.0} not below ETA2 {mq_cost:.0}"
        );
    }

    #[test]
    fn expertise_error_reported_only_when_meaningful() {
        let ds = small_synth();
        let s = sim();
        assert!(s
            .run(&ds, ApproachKind::Eta2, 0)
            .unwrap()
            .expertise_error
            .is_some());
        assert!(s
            .run(&ds, ApproachKind::Baseline, 0)
            .unwrap()
            .expertise_error
            .is_none());
    }

    #[test]
    fn observation_records_gated_by_config() {
        let ds = small_synth();
        let off = Simulation::new(SimConfig::default());
        assert!(off
            .run(&ds, ApproachKind::Eta2, 0)
            .unwrap()
            .observation_records
            .is_empty());
        let on = Simulation::new(SimConfig {
            record_observations: true,
            ..SimConfig::default()
        });
        let m = on.run(&ds, ApproachKind::Eta2, 0).unwrap();
        assert!(!m.observation_records.is_empty());
        assert!(m
            .observation_records
            .iter()
            .all(|&(est, tru, e)| est >= 0.0 && tru >= 0.0 && e >= 0.0));
    }

    #[test]
    fn assignment_stats_recorded_for_eta2() {
        let ds = small_synth();
        let m = sim().run(&ds, ApproachKind::Eta2, 0).unwrap();
        assert!(!m.assignment_stats.is_empty());
        for &(n, avg) in &m.assignment_stats {
            assert!(n >= 1);
            assert!(avg > 0.0);
        }
        // Baselines don't record Table 2 rows.
        let m = sim().run(&ds, ApproachKind::TruthFinder, 0).unwrap();
        assert!(m.assignment_stats.is_empty());
    }

    #[test]
    fn fault_free_runs_report_zero_fault_metrics() {
        let ds = small_synth();
        let m = sim().run(&ds, ApproachKind::Eta2, 0).unwrap();
        assert_eq!(m.faults_injected, 0);
        assert_eq!(m.alloc_retries, 0);
    }

    #[test]
    fn faulty_runs_degrade_gracefully_and_deterministically() {
        let ds = small_synth();
        let s = Simulation::new(SimConfig {
            faults: FaultConfig {
                dropout_rate: 0.3,
                corrupt_rate: 0.05,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        });
        let m = s.run(&ds, ApproachKind::Eta2, 1).unwrap();
        assert!(m.faults_injected > 0);
        assert!(m.overall_error.is_finite());
        assert!(
            m.daily_error.iter().all(|e| e.is_finite()),
            "{:?}",
            m.daily_error
        );
        let again = s.run(&ds, ApproachKind::Eta2, 1).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn stragglers_arrive_late_but_still_count() {
        let ds = small_synth();
        let s = Simulation::new(SimConfig {
            faults: FaultConfig {
                straggler_rate: 0.3,
                straggler_delay_days: 1,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        });
        for approach in [
            ApproachKind::Eta2,
            ApproachKind::Eta2MinCost,
            ApproachKind::Baseline,
        ] {
            let m = s.run(&ds, approach, 2).unwrap();
            assert!(m.faults_injected > 0, "{}", approach.name());
            assert!(m.overall_error.is_finite(), "{}", approach.name());
        }
    }

    #[test]
    fn collusion_inflates_error() {
        let ds = small_synth();
        let clean = sim();
        let biased = Simulation::new(SimConfig {
            faults: FaultConfig {
                collusion_fraction: 0.4,
                collusion_bias: 25.0,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        });
        let avg = |s: &Simulation| -> f64 {
            (0..4)
                .map(|seed| {
                    s.run(&ds, ApproachKind::Baseline, seed)
                        .unwrap()
                        .overall_error
                })
                .sum::<f64>()
                / 4.0
        };
        let (e_clean, e_biased) = (avg(&clean), avg(&biased));
        assert!(
            e_biased > 2.0 * e_clean,
            "collusion barely moved error: clean {e_clean:.3}, biased {e_biased:.3}"
        );
    }

    #[test]
    fn survey_pipeline_end_to_end() {
        // Full description pipeline: embedding + clustering + allocation.
        let ds = SurveyConfig {
            n_users: 20,
            n_tasks: 60,
            ..SurveyConfig::default()
        }
        .generate(2);
        let cfg = SimConfig {
            corpus_documents: 150,
            ..SimConfig::default()
        };
        let s = Simulation::new(cfg);
        let m = s.run(&ds, ApproachKind::Eta2, 0).unwrap();
        assert!(m.overall_error.is_finite());
        assert!(m.final_domains > 1, "learned {} domains", m.final_domains);
    }
}
