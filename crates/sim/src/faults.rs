//! Deterministic fault injection for robustness experiments.
//!
//! A [`FaultPlan`] decides, per `(day, user, task)` report, whether the
//! report is delivered cleanly, dropped (user dropout), corrupted
//! (NaN/±Inf/gross outlier), delayed (straggler) or biased (colluding
//! clique). Every decision is a *pure hash* of the run seed and the report
//! coordinates — no sequential RNG state — so injection is reproducible,
//! order-independent, and leaves the simulator's own random stream
//! untouched. With all rates at zero the plan is inert and the simulation
//! is bit-identical to a fault-free run.

use eta2_core::model::{TaskId, UserId};
use serde::{Deserialize, Serialize};

/// Per-report fault rates and shapes. All-zero rates (the default) disable
/// injection entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultConfig {
    /// Probability an allocated user never reports.
    pub dropout_rate: f64,
    /// Probability a delivered report is replaced by NaN, ±Inf or a gross
    /// outlier.
    pub corrupt_rate: f64,
    /// Probability a report arrives [`FaultConfig::straggler_delay_days`]
    /// days late instead of same-day.
    pub straggler_rate: f64,
    /// How many days late a straggler report arrives (≥ 1 when
    /// `straggler_rate > 0`).
    pub straggler_delay_days: usize,
    /// Fraction of users belonging to a colluding clique that biases every
    /// report by ±`collusion_bias` (sign fixed per task).
    pub collusion_fraction: f64,
    /// Magnitude of the colluders' systematic bias.
    pub collusion_bias: f64,
    /// How many extra days the *engine* re-allocates a task that ended a
    /// day with no usable observation before declaring it uncovered.
    pub max_task_retries: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            dropout_rate: 0.0,
            corrupt_rate: 0.0,
            straggler_rate: 0.0,
            straggler_delay_days: 1,
            collusion_fraction: 0.0,
            collusion_bias: 0.0,
            max_task_retries: 2,
        }
    }
}

impl FaultConfig {
    /// Whether any fault can ever fire under this configuration.
    pub fn is_active(&self) -> bool {
        self.dropout_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.straggler_rate > 0.0
            || (self.collusion_fraction > 0.0 && self.collusion_bias != 0.0)
    }

    /// Validates ranges; called by `SimConfig::validate`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.dropout_rate),
            "dropout_rate in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.corrupt_rate),
            "corrupt_rate in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.straggler_rate),
            "straggler_rate in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.collusion_fraction),
            "collusion_fraction in [0,1]"
        );
        assert!(self.collusion_bias.is_finite(), "collusion_bias finite");
        assert!(
            self.straggler_rate == 0.0 || self.straggler_delay_days >= 1,
            "straggler_delay_days >= 1 when stragglers are enabled"
        );
    }
}

/// What happens to one allocated report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// The report arrives today with this value (possibly collusion-biased
    /// or corrupted).
    Deliver(f64),
    /// The user never reports.
    Drop,
    /// The report arrives `due_in` days from now with this value.
    Delay {
        /// Days until arrival (≥ 1).
        due_in: usize,
        /// The (possibly biased) value that will arrive.
        value: f64,
    },
}

// splitmix64 finalizer — a full-avalanche 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    mix(mix(mix(mix(a) ^ b) ^ c) ^ d)
}

/// Maps a hash to a uniform value in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

const SALT_DROPOUT: u64 = 0xD80F;
const SALT_CORRUPT: u64 = 0xC0FF;
const SALT_CORRUPT_KIND: u64 = 0xC14D;
const SALT_STRAGGLER: u64 = 0x51AC;
const SALT_CLIQUE: u64 = 0xC11C;
const SALT_SIGN: u64 = 0x5168;

/// A seeded fault schedule for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
}

impl FaultPlan {
    /// Builds the plan for one run. The same `(config, run_seed)` pair
    /// always yields the same decisions.
    pub fn new(config: FaultConfig, run_seed: u64) -> Self {
        FaultPlan {
            config,
            seed: run_seed,
        }
    }

    /// Whether any fault can fire.
    pub fn is_active(&self) -> bool {
        self.config.is_active()
    }

    /// Whether `user` belongs to the colluding clique.
    pub fn is_colluder(&self, user: UserId) -> bool {
        self.config.collusion_fraction > 0.0
            && unit(hash4(self.seed ^ SALT_CLIQUE, user.0 as u64, 0, 0))
                < self.config.collusion_fraction
    }

    /// Decides the fate of the report `user` makes for `task` on `day`,
    /// given the `clean` value the observation model produced. Returns the
    /// action plus the number of faults that fired (0–2: collusion can
    /// combine with dropout/corruption/delay). Each fired fault emits a
    /// `fault_injected` trace event and bumps the `fault.injected` counter.
    pub fn apply(
        &self,
        day: usize,
        user: UserId,
        task: TaskId,
        clean: f64,
    ) -> (FaultAction, usize) {
        let cfg = &self.config;
        if !self.is_active() {
            return (FaultAction::Deliver(clean), 0);
        }
        let (d, u, t) = (day as u64, user.0 as u64, task.0 as u64);
        let mut fired = 0usize;

        // (1) Collusion: a clique member's report carries a systematic
        // bias whose sign is fixed per task (the clique "agrees" on a
        // wrong answer).
        let mut value = clean;
        if cfg.collusion_bias != 0.0 && self.is_colluder(user) {
            let sign = if hash4(self.seed ^ SALT_SIGN, t, 0, 0) & 1 == 0 {
                1.0
            } else {
                -1.0
            };
            value += sign * cfg.collusion_bias;
            fired += 1;
            self.record("collusion", d, u, t);
        }

        // (2) Dropout preempts everything: the report never exists.
        if cfg.dropout_rate > 0.0
            && unit(hash4(self.seed ^ SALT_DROPOUT, d, u, t)) < cfg.dropout_rate
        {
            fired += 1;
            self.record("dropout", d, u, t);
            return (FaultAction::Drop, fired);
        }

        // (3) Corruption: the report arrives but its payload is garbage.
        if cfg.corrupt_rate > 0.0
            && unit(hash4(self.seed ^ SALT_CORRUPT, d, u, t)) < cfg.corrupt_rate
        {
            let corrupted = match hash4(self.seed ^ SALT_CORRUPT_KIND, d, u, t) % 4 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                // A gross but finite outlier — the hard case: it parses,
                // it's finite, and it's three orders of magnitude off.
                _ => value * 1e3 + 1e4,
            };
            fired += 1;
            self.record("corrupt", d, u, t);
            return (FaultAction::Deliver(corrupted), fired);
        }

        // (4) Straggler: the report is fine but late.
        if cfg.straggler_rate > 0.0
            && unit(hash4(self.seed ^ SALT_STRAGGLER, d, u, t)) < cfg.straggler_rate
        {
            fired += 1;
            self.record("straggler", d, u, t);
            return (
                FaultAction::Delay {
                    due_in: cfg.straggler_delay_days.max(1),
                    value,
                },
                fired,
            );
        }

        (FaultAction::Deliver(value), fired)
    }

    fn record(&self, kind: &'static str, day: u64, user: u64, task: u64) {
        eta2_obs::counter("fault.injected", 1);
        eta2_obs::emit_with(|| eta2_obs::Event::FaultInjected {
            kind,
            day,
            user,
            task,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config, 42)
    }

    #[test]
    fn inactive_plan_is_transparent() {
        let p = plan(FaultConfig::default());
        assert!(!p.is_active());
        for (day, user, task) in [(0, 0, 0), (3, 7, 11), (4, 100, 999)] {
            let (action, fired) = p.apply(day, UserId(user), TaskId(task), 1.5);
            assert_eq!(action, FaultAction::Deliver(1.5));
            assert_eq!(fired, 0);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let cfg = FaultConfig {
            dropout_rate: 0.3,
            corrupt_rate: 0.2,
            straggler_rate: 0.1,
            collusion_fraction: 0.2,
            collusion_bias: 5.0,
            ..FaultConfig::default()
        };
        let p = plan(cfg);
        let coords: Vec<(usize, u32, u32)> = (0..5)
            .flat_map(|d| (0..20).map(move |u| (d, u, u * 3)))
            .collect();
        let forward: Vec<(FaultAction, usize)> = coords
            .iter()
            .map(|&(d, u, t)| p.apply(d, UserId(u), TaskId(t), 2.0))
            .collect();
        let backward: Vec<(FaultAction, usize)> = coords
            .iter()
            .rev()
            .map(|&(d, u, t)| p.apply(d, UserId(u), TaskId(t), 2.0))
            .collect();
        let mut backward = backward;
        backward.reverse();
        // Same decision regardless of query order; NaN corruptions break
        // PartialEq so compare debug strings.
        assert_eq!(format!("{forward:?}"), format!("{backward:?}"));
        // A different seed makes different decisions.
        let other = FaultPlan::new(cfg, 43);
        let moved: Vec<(FaultAction, usize)> = coords
            .iter()
            .map(|&(d, u, t)| other.apply(d, UserId(u), TaskId(t), 2.0))
            .collect();
        assert_ne!(format!("{forward:?}"), format!("{moved:?}"));
    }

    #[test]
    fn rates_are_approximately_honored() {
        let p = plan(FaultConfig {
            dropout_rate: 0.3,
            ..FaultConfig::default()
        });
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&i| {
                matches!(
                    p.apply(1, UserId(i % 50), TaskId(i), 0.0).0,
                    FaultAction::Drop
                )
            })
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed dropout rate {rate}");
    }

    #[test]
    fn corruption_produces_garbage_values() {
        let p = plan(FaultConfig {
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        });
        let mut saw_nonfinite = false;
        let mut saw_outlier = false;
        for i in 0..100 {
            match p.apply(2, UserId(i), TaskId(i), 1.0).0 {
                FaultAction::Deliver(x) if !x.is_finite() => saw_nonfinite = true,
                FaultAction::Deliver(x) => {
                    assert!(x.abs() > 1e3, "corrupted value {x} suspiciously clean");
                    saw_outlier = true;
                }
                other => panic!("corrupt_rate 1.0 must corrupt, got {other:?}"),
            }
        }
        assert!(saw_nonfinite && saw_outlier);
    }

    #[test]
    fn stragglers_carry_their_value_and_delay() {
        let p = plan(FaultConfig {
            straggler_rate: 1.0,
            straggler_delay_days: 2,
            ..FaultConfig::default()
        });
        match p.apply(1, UserId(3), TaskId(9), 7.25).0 {
            FaultAction::Delay { due_in, value } => {
                assert_eq!(due_in, 2);
                assert_eq!(value, 7.25);
            }
            other => panic!("expected delay, got {other:?}"),
        }
    }

    #[test]
    fn colluders_bias_consistently_per_task() {
        let cfg = FaultConfig {
            collusion_fraction: 0.5,
            collusion_bias: 10.0,
            ..FaultConfig::default()
        };
        let p = plan(cfg);
        let colluders: Vec<u32> = (0..40).filter(|&u| p.is_colluder(UserId(u))).collect();
        assert!(
            colluders.len() >= 10 && colluders.len() <= 30,
            "clique size {} far from 50% of 40",
            colluders.len()
        );
        // All clique members shift the same task the same way.
        for task in [TaskId(0), TaskId(5)] {
            let shifts: Vec<f64> = colluders
                .iter()
                .map(|&u| match p.apply(2, UserId(u), task, 1.0).0 {
                    FaultAction::Deliver(x) => x - 1.0,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert!(shifts.iter().all(|&s| s == shifts[0]));
            assert_eq!(shifts[0].abs(), 10.0);
        }
        // Clique membership does not depend on day or task.
        for &u in &colluders {
            assert!(p.is_colluder(UserId(u)));
        }
        // Non-members deliver clean values.
        for u in (0..40).filter(|&u| !p.is_colluder(UserId(u))) {
            assert_eq!(
                p.apply(2, UserId(u), TaskId(0), 1.0).0,
                FaultAction::Deliver(1.0)
            );
        }
    }

    #[test]
    fn config_validation() {
        FaultConfig::default().validate();
        let bad = FaultConfig {
            dropout_rate: 1.5,
            ..FaultConfig::default()
        };
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
        let bad = FaultConfig {
            straggler_rate: 0.1,
            straggler_delay_days: 0,
            ..FaultConfig::default()
        };
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
    }

    #[test]
    fn serde_defaults_keep_old_configs_loading() {
        let cfg: FaultConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(cfg, FaultConfig::default());
        assert!(!cfg.is_active());
        let cfg: FaultConfig = serde_json::from_str(r#"{"dropout_rate":0.25}"#).unwrap();
        assert_eq!(cfg.dropout_rate, 0.25);
        assert_eq!(cfg.max_task_retries, 2);
    }
}
