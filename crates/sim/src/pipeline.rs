//! The expertise-domain identification pipeline (paper §3) wired for the
//! simulator: embedding training, semantic vector extraction and the
//! dynamic clusterer.

use crate::config::SimConfig;
use eta2_cluster::{DomainEvent, DynamicClusterer};
use eta2_core::model::DomainId;
use eta2_datasets::sfv::SFV_TOPICS;
use eta2_datasets::Dataset;
use eta2_embed::corpus::TopicCorpus;
use eta2_embed::pairword::pairword_distance;
use eta2_embed::{EmbedError, Embedding, PairWordExtractor, SkipGramTrainer};
use std::fmt;

/// Error raised while setting up or running the identification pipeline.
/// These were panics historically; surfacing them as values lets sweep
/// drivers and the server degrade instead of aborting.
#[derive(Debug)]
pub enum PipelineError {
    /// Skip-gram training failed (empty vocabulary, bad config, …).
    EmbeddingTraining(EmbedError),
    /// A description dataset was run without a trained embedding.
    MissingEmbedding,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::EmbeddingTraining(e) => write!(f, "embedding training failed: {e}"),
            PipelineError::MissingEmbedding => {
                write!(f, "description datasets need an embedding")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::EmbeddingTraining(e) => Some(e),
            PipelineError::MissingEmbedding => None,
        }
    }
}

/// Trains the skip-gram embedding appropriate for `dataset`, or `None` when
/// the dataset's domains are known (synthetic — no clustering needed).
///
/// The corpus mirrors the dataset's topical structure: the built-in topic
/// corpus for the survey dataset, the SFV slot-family corpus for SFV. This
/// is the Wikipedia substitution documented in DESIGN.md §3.
///
/// # Errors
///
/// Returns [`PipelineError::EmbeddingTraining`] when skip-gram training
/// fails (e.g. the corpus yields an empty vocabulary).
pub fn train_embedding_for(
    dataset: &Dataset,
    config: &SimConfig,
) -> Result<Option<Embedding>, PipelineError> {
    if dataset.domains_known {
        return Ok(None);
    }
    let corpus = match dataset.name.as_str() {
        "sfv" => TopicCorpus::with_topics(SFV_TOPICS.to_vec()),
        _ => TopicCorpus::builtin(),
    };
    let sentences = corpus.generate(config.corpus_documents, config.skipgram.seed);
    SkipGramTrainer::new(config.skipgram)
        .train_sentences(&sentences)
        .map(Some)
        .map_err(PipelineError::EmbeddingTraining)
}

/// A semantic point for clustering: the concatenated `[V_Q, V_T]` vector,
/// or a zero vector for descriptions with no in-vocabulary words.
pub type SemanticPoint = Vec<f32>;

/// The Eq. 2 metric over semantic points.
pub fn semantic_metric(a: &SemanticPoint, b: &SemanticPoint) -> f64 {
    pairword_distance(a, b)
}

/// Domain identification for one run: either the oracle domains or a
/// learned dynamic clustering over pair-word semantics.
pub enum DomainTracker<'a> {
    /// Synthetic dataset: domains are pre-known to the server (§6.1.3).
    Oracle,
    /// Description datasets: learn domains with the §3 pipeline.
    Learned(Box<LearnedTracker<'a>>),
}

// Manual impl: `LearnedTracker` holds a function-pointer-parameterized
// clusterer that cannot derive `Debug`, but callers (and `unwrap_err` in
// tests) need the tracker itself to be debuggable.
impl fmt::Debug for DomainTracker<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainTracker::Oracle => f.write_str("DomainTracker::Oracle"),
            DomainTracker::Learned(t) => f
                .debug_struct("DomainTracker::Learned")
                .field("dim", &t.dim)
                .finish_non_exhaustive(),
        }
    }
}

/// State of the learned pipeline.
pub struct LearnedTracker<'a> {
    embedding: &'a Embedding,
    extractor: PairWordExtractor,
    clusterer: DynamicClusterer<SemanticPoint, fn(&SemanticPoint, &SemanticPoint) -> f64>,
    dim: usize,
}

/// The outcome of identifying a batch of tasks' domains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainBatch {
    /// Domain per task of the batch, in input order.
    pub domains: Vec<DomainId>,
    /// Domain merges triggered by this batch: `(kept, absorbed)`.
    pub merges: Vec<(DomainId, DomainId)>,
}

impl<'a> DomainTracker<'a> {
    /// Creates the tracker: oracle when the dataset's domains are known,
    /// learned otherwise (requiring the trained `embedding`).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::MissingEmbedding`] when the dataset needs
    /// clustering but `embedding` is `None`.
    pub fn new(
        dataset: &Dataset,
        embedding: Option<&'a Embedding>,
        config: &SimConfig,
    ) -> Result<Self, PipelineError> {
        if dataset.domains_known {
            Ok(DomainTracker::Oracle)
        } else {
            let embedding = embedding.ok_or(PipelineError::MissingEmbedding)?;
            Ok(DomainTracker::Learned(Box::new(LearnedTracker {
                embedding,
                extractor: PairWordExtractor::new(),
                clusterer: DynamicClusterer::new(
                    semantic_metric as fn(&SemanticPoint, &SemanticPoint) -> f64,
                    config.gamma,
                ),
                dim: embedding.dim(),
            })))
        }
    }

    /// Identifies the domains of the day's tasks (`task_indices` into
    /// `dataset.tasks`). The first call plays the role of the warm-up
    /// clustering; later calls insert dynamically (§3.3.2).
    pub fn identify(&mut self, dataset: &Dataset, task_indices: &[usize]) -> DomainBatch {
        match self {
            DomainTracker::Oracle => DomainBatch {
                domains: task_indices
                    .iter()
                    .map(|&i| dataset.tasks[i].oracle_domain)
                    .collect(),
                merges: Vec::new(),
            },
            DomainTracker::Learned(t) => {
                let points: Vec<SemanticPoint> = task_indices
                    .iter()
                    .map(|&i| {
                        let desc = dataset.tasks[i].description.as_deref().unwrap_or_default();
                        t.extractor
                            .extract(desc)
                            .semantic_vector(t.embedding)
                            .unwrap_or_else(|| vec![0.0; 2 * t.dim])
                    })
                    .collect();
                let update = if t.clusterer.is_empty() {
                    t.clusterer.warm_up(points)
                } else {
                    t.clusterer.add(points)
                };
                let merges = update
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        DomainEvent::Merged { kept, absorbed } => {
                            Some((DomainId(*kept), DomainId(*absorbed)))
                        }
                        DomainEvent::Created { .. } => None,
                    })
                    .collect();
                DomainBatch {
                    domains: update.assignments.iter().map(|&d| DomainId(d)).collect(),
                    merges,
                }
            }
        }
    }

    /// Number of live domains.
    pub fn domain_count(&self, dataset: &Dataset) -> usize {
        match self {
            DomainTracker::Oracle => dataset.n_domains,
            DomainTracker::Learned(t) => t.clusterer.domains().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta2_datasets::survey::SurveyConfig;
    use eta2_datasets::synthetic::SyntheticConfig;
    use std::collections::{HashMap, HashSet};

    fn small_config() -> SimConfig {
        SimConfig {
            corpus_documents: 150,
            ..SimConfig::default()
        }
    }

    #[test]
    fn synthetic_uses_oracle_domains() {
        let ds = SyntheticConfig {
            n_users: 5,
            n_tasks: 12,
            n_domains: 3,
            ..SyntheticConfig::default()
        }
        .generate(0);
        let cfg = small_config();
        assert!(train_embedding_for(&ds, &cfg).unwrap().is_none());
        let mut tracker = DomainTracker::new(&ds, None, &cfg).unwrap();
        let batch = tracker.identify(&ds, &[0, 1, 2]);
        assert_eq!(batch.domains.len(), 3);
        assert!(batch.merges.is_empty());
        for (k, &d) in batch.domains.iter().enumerate() {
            assert_eq!(d, ds.tasks[k].oracle_domain);
        }
        assert_eq!(tracker.domain_count(&ds), 3);
    }

    #[test]
    fn survey_pipeline_learns_coherent_domains() {
        let ds = SurveyConfig::default().generate(3);
        let cfg = small_config();
        let emb = train_embedding_for(&ds, &cfg)
            .unwrap()
            .expect("survey needs embedding");
        let mut tracker = DomainTracker::new(&ds, Some(&emb), &cfg).unwrap();

        // Warm up on the first 60 tasks, then add the rest.
        let warm: Vec<usize> = (0..60).collect();
        let rest: Vec<usize> = (60..150).collect();
        let b1 = tracker.identify(&ds, &warm);
        let b2 = tracker.identify(&ds, &rest);

        // Quality check: learned clusters should be far better than chance
        // at grouping same-topic tasks. Compute pairwise agreement between
        // the learned partition and the oracle topics.
        let mut learned: HashMap<usize, DomainId> = HashMap::new();
        for (k, &i) in warm.iter().enumerate() {
            learned.insert(i, b1.domains[k]);
        }
        for (k, &i) in rest.iter().enumerate() {
            learned.insert(i, b2.domains[k]);
        }
        let n = ds.tasks.len();
        let mut same_topic_same_cluster = 0usize;
        let mut same_topic_pairs = 0usize;
        let mut diff_topic_same_cluster = 0usize;
        let mut diff_topic_pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_topic = ds.tasks[i].oracle_domain == ds.tasks[j].oracle_domain;
                let same_cluster = learned[&i] == learned[&j];
                if same_topic {
                    same_topic_pairs += 1;
                    same_topic_same_cluster += usize::from(same_cluster);
                } else {
                    diff_topic_pairs += 1;
                    diff_topic_same_cluster += usize::from(same_cluster);
                }
            }
        }
        let recall = same_topic_same_cluster as f64 / same_topic_pairs as f64;
        let false_merge = diff_topic_same_cluster as f64 / diff_topic_pairs as f64;
        assert!(
            recall > 0.5 && recall > 3.0 * false_merge,
            "clustering too weak: recall = {recall:.2}, false-merge = {false_merge:.2}"
        );
    }

    #[test]
    fn learned_tracker_assigns_every_task() {
        let ds = SurveyConfig {
            n_tasks: 40,
            ..SurveyConfig::default()
        }
        .generate(1);
        let cfg = small_config();
        let emb = train_embedding_for(&ds, &cfg).unwrap().unwrap();
        let mut tracker = DomainTracker::new(&ds, Some(&emb), &cfg).unwrap();
        let b = tracker.identify(&ds, &(0..40).collect::<Vec<_>>());
        assert_eq!(b.domains.len(), 40);
        let distinct: HashSet<DomainId> = b.domains.iter().copied().collect();
        assert!(!distinct.is_empty());
        assert_eq!(tracker.domain_count(&ds), distinct.len());
    }

    #[test]
    fn learned_tracker_requires_embedding() {
        let ds = SurveyConfig::default().generate(0);
        let err = DomainTracker::new(&ds, None, &small_config()).unwrap_err();
        assert!(matches!(err, PipelineError::MissingEmbedding));
        assert!(err.to_string().contains("need an embedding"));
    }
}
