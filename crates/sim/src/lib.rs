//! Day-by-day mobile-crowdsourcing simulation engine for the ETA²
//! reproduction (paper §2.2 and §6.2).
//!
//! One *run* replays the paper's loop on a generated dataset:
//!
//! 1. **Warm-up** (day 0): tasks are allocated randomly — no expertise
//!    knowledge exists yet.
//! 2. Each following day: new tasks arrive → their expertise domains are
//!    identified (oracle domains for the synthetic dataset; the full
//!    pair-word + skip-gram + dynamic-clustering pipeline otherwise) →
//!    tasks are allocated by the approach under test → users report data →
//!    truth analysis runs → expertise/reliability is updated.
//!
//! Six approaches are supported ([`ApproachKind`]): ETA², ETA²-mc, the
//! three reliability-based comparison methods, and the random/mean
//! Baseline. [`metrics::RunMetrics`] captures everything the paper's
//! figures need; [`sweep`] averages runs over seeds and sweeps parameters
//! (τ, α, γ, c°, bias) for the evaluation harness. [`faults`] injects
//! deterministic user dropout, report corruption, stragglers and colluding
//! cliques for robustness experiments.
//!
//! # Examples
//!
//! ```
//! use eta2_datasets::synthetic::SyntheticConfig;
//! use eta2_sim::{ApproachKind, SimConfig, Simulation};
//!
//! let dataset = SyntheticConfig {
//!     n_users: 20,
//!     n_tasks: 60,
//!     n_domains: 3,
//!     ..SyntheticConfig::default()
//! }
//! .generate(1);
//! let sim = Simulation::new(SimConfig::default());
//! let metrics = sim.run(&dataset, ApproachKind::Eta2, 7).unwrap();
//! assert_eq!(metrics.daily_error.len(), SimConfig::default().days);
//! assert!(metrics.overall_error.is_finite());
//! ```
//!
//! A faulty world degrades quality instead of crashing:
//!
//! ```
//! use eta2_datasets::synthetic::SyntheticConfig;
//! use eta2_sim::{ApproachKind, FaultConfig, SimConfig, Simulation};
//!
//! let dataset = SyntheticConfig {
//!     n_users: 20,
//!     n_tasks: 60,
//!     n_domains: 3,
//!     ..SyntheticConfig::default()
//! }
//! .generate(1);
//! let sim = Simulation::new(SimConfig {
//!     faults: FaultConfig {
//!         dropout_rate: 0.3,
//!         corrupt_rate: 0.05,
//!         ..FaultConfig::default()
//!     },
//!     ..SimConfig::default()
//! });
//! let metrics = sim.run(&dataset, ApproachKind::Eta2, 7).unwrap();
//! assert!(metrics.faults_injected > 0);
//! assert!(metrics.overall_error.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod pipeline;
pub mod sweep;

pub use config::{ApproachKind, SimConfig};
pub use engine::Simulation;
pub use faults::{FaultAction, FaultConfig, FaultPlan};
pub use metrics::{MetricsSummary, RunMetrics};
pub use pipeline::{train_embedding_for, PipelineError};
