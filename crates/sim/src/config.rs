//! Simulation configuration.

use crate::faults::FaultConfig;
use eta2_core::truth::mle::MleConfig;
use eta2_embed::SkipGramConfig;
use serde::{Deserialize, Serialize};

/// The approach under test — ETA² variants and the §6.3 comparison methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproachKind {
    /// ETA² with max-quality task allocation (§5.1).
    Eta2,
    /// ETA²-mc with min-cost task allocation (§5.2).
    Eta2MinCost,
    /// Hubs & Authorities truth discovery + reliability-greedy allocation.
    HubsAuthorities,
    /// Average·Log truth discovery + reliability-greedy allocation.
    AverageLog,
    /// TruthFinder truth discovery + reliability-greedy allocation.
    TruthFinder,
    /// Mean truth + random allocation (the paper's lower bound).
    Baseline,
    /// CRH truth discovery + reliability-greedy allocation — an extension
    /// beyond the paper's comparison set (not part of
    /// [`ApproachKind::ALL`]).
    Crh,
}

impl ApproachKind {
    /// All six approaches in the paper's legend order.
    pub const ALL: [ApproachKind; 6] = [
        ApproachKind::Eta2,
        ApproachKind::Eta2MinCost,
        ApproachKind::HubsAuthorities,
        ApproachKind::AverageLog,
        ApproachKind::TruthFinder,
        ApproachKind::Baseline,
    ];

    /// The five approaches compared in Figs. 5/6 (everything except
    /// ETA²-mc).
    pub const COMPARISON: [ApproachKind; 5] = [
        ApproachKind::Eta2,
        ApproachKind::HubsAuthorities,
        ApproachKind::AverageLog,
        ApproachKind::TruthFinder,
        ApproachKind::Baseline,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            ApproachKind::Eta2 => "ETA2",
            ApproachKind::Eta2MinCost => "ETA2-mc",
            ApproachKind::HubsAuthorities => "Hubs and Authorities",
            ApproachKind::AverageLog => "Average-Log",
            ApproachKind::TruthFinder => "TruthFinder",
            ApproachKind::Baseline => "Baseline",
            ApproachKind::Crh => "CRH",
        }
    }

    /// Whether the approach learns per-domain expertise (the ETA² family).
    pub fn is_expertise_aware(&self) -> bool {
        matches!(self, ApproachKind::Eta2 | ApproachKind::Eta2MinCost)
    }
}

/// Tuning of the min-cost allocation (§6.4.3 experimental setting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinCostTuning {
    /// Maximum tolerated normalized error `ε̄` (paper: 0.5).
    pub max_error: f64,
    /// Significance `α` of the quality confidence (paper: 0.05).
    pub confidence_alpha: f64,
    /// Per-round cost cap `c°`.
    pub round_budget: f64,
}

impl Default for MinCostTuning {
    fn default() -> Self {
        MinCostTuning {
            max_error: 0.5,
            confidence_alpha: 0.05,
            round_budget: 50.0,
        }
    }
}

/// Full simulation configuration; defaults mirror §6.2 and the best
/// parameters of §6.4.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Days of task arrival (paper: 5, the first being the warm-up).
    pub days: usize,
    /// Expertise decay factor `α` (paper: dataset-dependent, 0.5 default).
    pub alpha: f64,
    /// Clustering threshold fraction `γ` (paper: dataset-dependent, 0.6
    /// default; unused when the dataset's domains are known).
    pub gamma: f64,
    /// Accuracy threshold `ε` of the allocation objective (paper: 0.1).
    pub epsilon: f64,
    /// MLE settings.
    pub mle: MleConfig,
    /// Min-cost tuning (only used by [`ApproachKind::Eta2MinCost`]).
    pub min_cost: MinCostTuning,
    /// Skip-gram settings for the description pipeline.
    pub skipgram: SkipGramConfig,
    /// Documents generated for the embedding training corpus.
    pub corpus_documents: usize,
    /// Record per-observation (expertise, error) pairs (Fig. 7) — off by
    /// default, it is memory-heavy.
    pub record_observations: bool,
    /// Ablation: make the *system* see a single expertise domain (data is
    /// still generated from the true per-domain expertise). Quantifies the
    /// value of expertise-awareness — ETA² collapses to a reliability-style
    /// method when set.
    pub collapse_domains: bool,
    /// Fault injection (dropout, corruption, stragglers, collusion) —
    /// inactive by default.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Worker threads: `0` (the default) runs the seed sweep with one
    /// worker per core and the MLE sequentially — the historical behavior;
    /// `1` is fully sequential; `n > 1` uses `n` workers for both the seed
    /// sweep and the MLE's per-domain shards. Every setting produces
    /// bit-identical results (seeds are independent and the parallel MLE
    /// matches sequential exactly), so this is purely a throughput knob.
    #[serde(default)]
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            days: 5,
            alpha: 0.5,
            gamma: 0.6,
            epsilon: 0.1,
            mle: MleConfig::default(),
            min_cost: MinCostTuning::default(),
            skipgram: SkipGramConfig {
                dim: 24,
                epochs: 3,
                ..SkipGramConfig::default()
            },
            corpus_documents: 300,
            record_observations: false,
            collapse_domains: false,
            faults: FaultConfig::default(),
            threads: 0,
        }
    }
}

impl SimConfig {
    /// Validates ranges; called by the engine.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!(self.days >= 1, "need at least one day");
        assert!((0.0..=1.0).contains(&self.alpha), "alpha in [0,1]");
        assert!((0.0..=1.0).contains(&self.gamma), "gamma in [0,1]");
        assert!(self.epsilon > 0.0, "epsilon > 0");
        self.faults.validate();
    }

    /// The MLE configuration with the simulation-level [`SimConfig::threads`]
    /// knob applied: an explicit `mle.threads` setting wins; when `mle`
    /// is at its sequential default and the simulation asked for `n > 1`
    /// workers, the knob is copied down so `--threads` engages the
    /// per-domain MLE shards too.
    pub fn mle_effective(&self) -> MleConfig {
        let mut mle = self.mle;
        if mle.threads == 1 && self.threads > 1 {
            mle.threads = self.threads;
        }
        mle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_names_and_partitions() {
        assert_eq!(ApproachKind::ALL.len(), 6);
        assert_eq!(ApproachKind::COMPARISON.len(), 5);
        assert!(!ApproachKind::COMPARISON.contains(&ApproachKind::Eta2MinCost));
        assert!(ApproachKind::Eta2.is_expertise_aware());
        assert!(ApproachKind::Eta2MinCost.is_expertise_aware());
        assert!(!ApproachKind::TruthFinder.is_expertise_aware());
        assert_eq!(ApproachKind::Eta2.name(), "ETA2");
    }

    #[test]
    fn default_config_validates() {
        SimConfig::default().validate();
    }

    #[test]
    fn invalid_configs_panic() {
        let mut c = SimConfig::default();
        c.days = 0;
        assert!(std::panic::catch_unwind(move || c.validate()).is_err());
        let mut c = SimConfig::default();
        c.alpha = 1.5;
        assert!(std::panic::catch_unwind(move || c.validate()).is_err());
        let mut c = SimConfig::default();
        c.gamma = -0.1;
        assert!(std::panic::catch_unwind(move || c.validate()).is_err());
        let mut c = SimConfig::default();
        c.faults.corrupt_rate = 2.0;
        assert!(std::panic::catch_unwind(move || c.validate()).is_err());
    }

    #[test]
    fn sim_config_without_faults_field_still_deserializes() {
        // Configs serialized before fault injection existed must keep
        // loading: the `faults` block is optional and defaults to inactive.
        let mut json = serde_json::to_value(SimConfig::default()).unwrap();
        json.as_object_mut().unwrap().remove("faults");
        let cfg: SimConfig = serde_json::from_value(json).unwrap();
        assert_eq!(cfg, SimConfig::default());
        assert!(!cfg.faults.is_active());
    }

    #[test]
    fn sim_config_without_threads_field_still_deserializes() {
        // Configs serialized before the parallelism knob existed must keep
        // loading: `threads` is optional and defaults to the historical
        // behavior (parallel sweep, sequential MLE).
        let mut json = serde_json::to_value(SimConfig::default()).unwrap();
        json.as_object_mut().unwrap().remove("threads");
        let cfg: SimConfig = serde_json::from_value(json).unwrap();
        assert_eq!(cfg, SimConfig::default());
        assert_eq!(cfg.threads, 0);
    }

    #[test]
    fn mle_effective_copies_the_threads_knob_down() {
        let mut c = SimConfig::default();
        assert_eq!(c.mle_effective().threads, 1, "default stays sequential");
        c.threads = 4;
        assert_eq!(c.mle_effective().threads, 4, "knob engages MLE shards");
        c.mle.threads = 2;
        assert_eq!(c.mle_effective().threads, 2, "explicit MLE setting wins");
    }
}
