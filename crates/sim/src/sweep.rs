//! Multi-seed averaging and parameter sweeps.
//!
//! The paper averages every experiment point over 100 random seeds (§6.2).
//! [`average_over_seeds`] parallelizes the seed loop with `eta2_par`'s
//! self-scheduling workers: seeds are claimed from a shared counter, so an
//! unlucky slow seed never idles the rest of the pool, and results come
//! back in seed order regardless of which worker ran what. The worker
//! count follows [`SimConfig::threads`] (`0` = one per core). The
//! experiment binaries in `eta2-bench` build their τ/α/γ/c° sweeps on top
//! of it.

use crate::config::{ApproachKind, SimConfig};
use crate::engine::Simulation;
use crate::metrics::{average, RunMetrics};
use crate::pipeline::PipelineError;
use eta2_datasets::Dataset;
use eta2_embed::Embedding;

/// Runs `n_seeds` simulations (seeds `base_seed..base_seed + n_seeds`) in
/// parallel and returns the element-wise average of their metrics.
///
/// `make_dataset` builds the dataset for each seed — this is where per-seed
/// randomization such as capacity re-rolls (`τ` sweeps) happens. The
/// embedding, when needed, is trained once by the caller and shared.
///
/// # Panics
///
/// Panics if `n_seeds == 0`.
///
/// # Errors
///
/// Returns the [`PipelineError`] of the lowest-numbered seed that failed
/// (every seed still runs to completion first).
///
/// # Examples
///
/// ```
/// use eta2_datasets::synthetic::SyntheticConfig;
/// use eta2_sim::{ApproachKind, SimConfig, Simulation};
/// use eta2_sim::sweep::average_over_seeds;
///
/// let sim = Simulation::new(SimConfig::default());
/// let avg = average_over_seeds(
///     &sim,
///     ApproachKind::Baseline,
///     4,
///     0,
///     |seed| SyntheticConfig {
///         n_users: 10,
///         n_tasks: 30,
///         n_domains: 2,
///         ..SyntheticConfig::default()
///     }
///     .generate(seed),
///     None,
/// )
/// .unwrap();
/// assert_eq!(avg.daily_error.len(), 5);
/// ```
pub fn average_over_seeds<F>(
    sim: &Simulation,
    approach: ApproachKind,
    n_seeds: u64,
    base_seed: u64,
    make_dataset: F,
    embedding: Option<&Embedding>,
) -> Result<RunMetrics, PipelineError>
where
    F: Fn(u64) -> Dataset + Sync,
{
    assert!(n_seeds > 0, "need at least one seed");
    let workers = eta2_par::Parallelism::from_threads(sim.config().threads)
        .resolve()
        .min(n_seeds as usize);

    // Self-scheduling map: each worker pulls the next unclaimed seed, so
    // seeds with uneven runtimes balance automatically; the result vector
    // is in seed order either way.
    let runs = eta2_par::map_indexed(n_seeds as usize, workers, |k| {
        let seed = base_seed + k as u64;
        let dataset = make_dataset(seed);
        sim.run_with_embedding(&dataset, approach, seed, embedding)
    });
    let mut ok = Vec::with_capacity(runs.len());
    for r in runs {
        ok.push(r?);
    }
    Ok(average(&ok))
}

/// One point of a one-dimensional sweep: the swept value and the averaged
/// metrics at that value.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (τ, α, γ, c°, bias fraction, …).
    pub x: f64,
    /// Seed-averaged metrics at `x`.
    pub metrics: RunMetrics,
}

/// Sweeps the average processing capability `τ` (Figs. 6/9/10/11): for each
/// `τ`, users' capacities are re-rolled per seed from `[τ − 4, τ + 4]`.
///
/// # Errors
///
/// Returns the first [`PipelineError`] any point's runs raised.
pub fn sweep_tau<F>(
    sim: &Simulation,
    approach: ApproachKind,
    taus: &[f64],
    n_seeds: u64,
    make_dataset: F,
    embedding: Option<&Embedding>,
) -> Result<Vec<SweepPoint>, PipelineError>
where
    F: Fn(u64) -> Dataset + Sync,
{
    let mut points = Vec::with_capacity(taus.len());
    for &tau in taus {
        let make = |seed: u64| {
            let mut ds = make_dataset(seed);
            let mut rng =
                <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed ^ 0x7a75_0000);
            ds.regenerate_capacities(tau, 4.0, &mut rng);
            ds
        };
        points.push(SweepPoint {
            x: tau,
            metrics: average_over_seeds(sim, approach, n_seeds, 0, make, embedding)?,
        });
    }
    Ok(points)
}

/// Sweeps the simulation configuration itself (α, γ, c°, …): `configure`
/// maps each swept value to a [`SimConfig`].
///
/// # Errors
///
/// Returns the first [`PipelineError`] any point's runs raised.
pub fn sweep_config<F, G>(
    values: &[f64],
    configure: G,
    approach: ApproachKind,
    n_seeds: u64,
    make_dataset: F,
    embedding: Option<&Embedding>,
) -> Result<Vec<SweepPoint>, PipelineError>
where
    F: Fn(u64) -> Dataset + Sync,
    G: Fn(f64) -> SimConfig,
{
    let mut points = Vec::with_capacity(values.len());
    for &x in values {
        let sim = Simulation::new(configure(x));
        points.push(SweepPoint {
            x,
            metrics: average_over_seeds(&sim, approach, n_seeds, 0, &make_dataset, embedding)?,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta2_datasets::synthetic::SyntheticConfig;

    fn make(seed: u64) -> Dataset {
        SyntheticConfig {
            n_users: 12,
            n_tasks: 30,
            n_domains: 2,
            ..SyntheticConfig::default()
        }
        .generate(seed)
    }

    #[test]
    fn averaging_is_deterministic() {
        let sim = Simulation::new(SimConfig::default());
        let a = average_over_seeds(&sim, ApproachKind::Baseline, 3, 0, make, None).unwrap();
        let b = average_over_seeds(&sim, ApproachKind::Baseline, 3, 0, make, None).unwrap();
        assert_eq!(a.daily_error, b.daily_error);
        assert_eq!(a.overall_error, b.overall_error);
    }

    #[test]
    fn parallel_equals_manual_average() {
        let sim = Simulation::new(SimConfig::default());
        let avg = average_over_seeds(&sim, ApproachKind::Baseline, 4, 10, make, None).unwrap();
        let runs: Vec<RunMetrics> = (10..14)
            .map(|s| sim.run(&make(s), ApproachKind::Baseline, s).unwrap())
            .collect();
        let manual = average(&runs);
        assert!((avg.overall_error - manual.overall_error).abs() < 1e-12);
        assert_eq!(avg.total_cost, manual.total_cost);
    }

    #[test]
    #[should_panic(expected = "need at least one seed")]
    fn zero_seeds_panics() {
        let sim = Simulation::new(SimConfig::default());
        let _ = average_over_seeds(&sim, ApproachKind::Baseline, 0, 0, make, None);
    }

    #[test]
    fn tau_sweep_rerolls_capacities() {
        let sim = Simulation::new(SimConfig::default());
        let points = sweep_tau(&sim, ApproachKind::Baseline, &[6.0, 14.0], 2, make, None).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].x, 6.0);
        // More capability → more assignments → higher total cost.
        assert!(points[1].metrics.total_cost > points[0].metrics.total_cost);
    }

    #[test]
    fn config_sweep_builds_each_point() {
        let points = sweep_config(
            &[0.1, 0.9],
            |alpha| SimConfig {
                alpha,
                ..SimConfig::default()
            },
            ApproachKind::Eta2,
            2,
            make,
            None,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.metrics.overall_error.is_finite()));
    }
}
