//! End-to-end robustness test: seeded fault injection (dropout, report
//! corruption, stragglers, collusion) must degrade quality — never crash —
//! for every approach, and the degradation must be observable through the
//! metrics registry and the event trace.
//!
//! Kept as a single `#[test]` because the obs sink and metrics gate are
//! process-global: one sequential scenario avoids cross-test interleaving.

use eta2_datasets::synthetic::SyntheticConfig;
use eta2_sim::{ApproachKind, FaultConfig, SimConfig, Simulation};
use serde_json::Value;

fn dataset() -> eta2_datasets::Dataset {
    SyntheticConfig {
        n_users: 20,
        n_tasks: 60,
        n_domains: 3,
        ..SyntheticConfig::default()
    }
    .generate(42)
}

fn faulty_config(faults: FaultConfig) -> SimConfig {
    SimConfig {
        faults,
        ..SimConfig::default()
    }
}

#[test]
fn faulty_runs_complete_for_every_approach_with_observable_degradation() {
    let ds = dataset();

    // The issue's headline scenario: 30% dropout + 5% corruption.
    let cfg = faulty_config(FaultConfig {
        dropout_rate: 0.3,
        corrupt_rate: 0.05,
        ..FaultConfig::default()
    });
    let sim = Simulation::new(cfg.clone());

    eta2_obs::registry::global().reset();
    let handle = eta2_obs::install_memory();

    let approaches: Vec<ApproachKind> = ApproachKind::ALL
        .iter()
        .copied()
        .chain([ApproachKind::Crh])
        .collect();
    for approach in &approaches {
        let m = sim
            .run(&ds, *approach, 7)
            .unwrap_or_else(|e| panic!("{} failed under faults: {e}", approach.name()));
        assert_eq!(m.daily_error.len(), cfg.days, "{}", approach.name());
        for (day, e) in m.daily_error.iter().enumerate() {
            assert!(
                e.is_finite(),
                "{}: day {day} error not finite: {e}",
                approach.name()
            );
        }
        assert!(
            m.overall_error.is_finite(),
            "{}: overall error {}",
            approach.name(),
            m.overall_error
        );
        assert!(
            m.faults_injected > 0,
            "{}: plan injected nothing",
            approach.name()
        );
    }

    // A harsher world — heavy dropout plus stragglers and a colluding
    // clique — exercises the whole degradation ladder (mean fallback,
    // re-allocation retries) so every robustness counter fires.
    let harsh = Simulation::new(faulty_config(FaultConfig {
        dropout_rate: 0.7,
        corrupt_rate: 0.1,
        straggler_rate: 0.1,
        collusion_fraction: 0.2,
        collusion_bias: 3.0,
        ..FaultConfig::default()
    }));
    for approach in [ApproachKind::Eta2, ApproachKind::Eta2MinCost] {
        let m = harsh.run(&ds, approach, 7).unwrap();
        assert!(m.overall_error.is_finite(), "{}", approach.name());
    }

    eta2_obs::disable();
    eta2_obs::flush();

    // Degradation is visible in the metrics snapshot.
    let snap = eta2_obs::registry::global().snapshot_and_reset();
    for counter in ["fault.injected", "mle.fallback", "alloc.retry"] {
        assert!(
            snap.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter {counter:?} missing or zero; counters = {:?}",
            snap.counters
        );
    }
    eta2_obs::set_metrics(false);

    // The trace stays valid JSONL under fault injection, and the injected
    // faults show up as events.
    let lines = handle.lines();
    assert!(!lines.is_empty());
    // CI sets ETA2_TRACE and re-validates the dump out of process.
    if let Some(path) = eta2_obs::env_path("ETA2_TRACE") {
        std::fs::write(&path, lines.join("\n") + "\n").expect("trace dump writes");
    }
    let mut fault_events = 0usize;
    for line in &lines {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        if v["type"] == "fault_injected" {
            fault_events += 1;
            assert!(v["kind"].as_str().is_some(), "{line}");
            assert!(v["day"].as_u64().is_some(), "{line}");
        }
    }
    assert!(fault_events > 0, "no fault_injected events traced");

    // Same seed, same plan: fault injection is deterministic end to end.
    let a = sim.run(&ds, ApproachKind::Eta2, 7).unwrap();
    let b = sim.run(&ds, ApproachKind::Eta2, 7).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "faulty runs with one seed diverged"
    );
}
