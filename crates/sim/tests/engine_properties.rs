//! Property-based tests of the simulation engine's invariants.

use eta2_datasets::synthetic::SyntheticConfig;
use eta2_sim::{ApproachKind, SimConfig, Simulation};
use proptest::prelude::*;

fn tiny(seed: u64) -> eta2_datasets::Dataset {
    SyntheticConfig {
        n_users: 8,
        n_tasks: 20,
        n_domains: 2,
        ..SyntheticConfig::default()
    }
    .generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every approach terminates with internally consistent metrics on
    /// arbitrary small instances.
    #[test]
    fn metrics_internally_consistent(ds_seed in 0u64..50, run_seed in 0u64..50) {
        let ds = tiny(ds_seed);
        let sim = Simulation::new(SimConfig::default());
        for approach in ApproachKind::ALL {
            let m = sim.run(&ds, approach, run_seed).unwrap();
            prop_assert_eq!(m.daily_error.len(), 5, "{}", approach.name());
            prop_assert!(m.total_cost >= 0.0);
            prop_assert!(m.uncovered_tasks <= ds.tasks.len());
            prop_assert!(m.mle_iterations.iter().all(|&i| i >= 1));
            for &(n, e) in &m.assignment_stats {
                prop_assert!(n >= 1 && e >= 0.0);
            }
        }
    }

    /// Day count is honored for any configured horizon.
    #[test]
    fn day_horizon_respected(days in 1usize..8) {
        let ds = tiny(0);
        let sim = Simulation::new(SimConfig {
            days,
            ..SimConfig::default()
        });
        let m = sim.run(&ds, ApproachKind::Eta2, 0).unwrap();
        prop_assert_eq!(m.daily_error.len(), days);
    }

    /// Zero-capacity users never appear in the allocation, for any
    /// approach.
    #[test]
    fn zero_capacity_users_idle(run_seed in 0u64..30) {
        let mut ds = tiny(1);
        for u in &mut ds.users {
            if u.id.0 % 2 == 0 {
                u.capacity = 0.0;
            }
        }
        let sim = Simulation::new(SimConfig::default());
        for approach in [ApproachKind::Eta2, ApproachKind::Baseline, ApproachKind::TruthFinder] {
            let m = sim.run(&ds, approach, run_seed).unwrap();
            // Half the users are idle: the cost can be at most half of the
            // full-capacity saturation, which for this instance is bounded
            // by users × tasks.
            prop_assert!(m.total_cost <= (ds.users.len() / 2 * ds.tasks.len()) as f64);
        }
    }
}

#[test]
fn collapse_domains_hurts_on_heterogeneous_expertise() {
    // The ablation knob must actually change behaviour.
    let ds = SyntheticConfig {
        n_users: 25,
        n_tasks: 80,
        n_domains: 4,
        ..SyntheticConfig::default()
    }
    .generate(3);
    let normal = Simulation::new(SimConfig::default());
    let collapsed = Simulation::new(SimConfig {
        collapse_domains: true,
        ..SimConfig::default()
    });
    let seeds = 5;
    let avg = |sim: &Simulation| -> f64 {
        (0..seeds)
            .map(|s| sim.run(&ds, ApproachKind::Eta2, s).unwrap().overall_error)
            .sum::<f64>()
            / seeds as f64
    };
    let e_normal = avg(&normal);
    let e_collapsed = avg(&collapsed);
    assert!(
        e_normal < e_collapsed,
        "per-domain {e_normal:.4} not below collapsed {e_collapsed:.4}"
    );
}
