//! End-to-end observability test: a traced simulation run must emit
//! parseable, schema-stable JSONL with at least one event from every
//! instrumented subsystem, and tracing must not perturb the simulation
//! itself.
//!
//! Kept as a single `#[test]` because the event sink is process-global:
//! one sequential scenario avoids cross-test interleaving.

use eta2_datasets::synthetic::SyntheticConfig;
use eta2_sim::{ApproachKind, RunMetrics, SimConfig, Simulation};
use serde_json::Value;
use std::collections::BTreeMap;

fn small_dataset() -> eta2_datasets::Dataset {
    SyntheticConfig {
        n_users: 10,
        n_tasks: 30,
        n_domains: 2,
        ..SyntheticConfig::default()
    }
    .generate(0)
}

/// Envelope + per-type payload keys every consumer may rely on.
fn required_keys(kind: &str) -> &'static [&'static str] {
    match kind {
        "mle_iteration" => &["source", "iteration", "tasks", "max_rel_delta"],
        "mle_outcome" => &["source", "iterations", "converged", "tasks"],
        "domain_created" => &["domain"],
        "domain_merged" => &["kept", "absorbed"],
        "alloc_pick" => &["strategy", "task", "user", "efficiency"],
        "alloc_round" => &["round", "assigned", "round_cost", "pending_after"],
        "alloc_outcome" => &[
            "strategy",
            "assignments",
            "total_cost",
            "rounds",
            "all_passed",
        ],
        "sim_day" => &["day", "tasks", "error", "cumulative_cost"],
        "fault_injected" => &["kind", "day", "user", "task"],
        "mle_fallback" => &["source", "task", "observations", "reason"],
        "alloc_retry" => &["strategy", "task", "attempt"],
        "user_quarantined" => &["user", "domain", "mean_sq_error"],
        "run_summary" => &[
            "approach",
            "days",
            "overall_error",
            "total_cost",
            "mean_daily_error",
            "p50_daily_error",
            "p95_daily_error",
            "total_mle_iterations",
            "uncovered_tasks",
            "final_domains",
        ],
        other => panic!("unexpected event type {other:?}"),
    }
}

#[test]
fn traced_run_emits_all_subsystems_and_leaves_metrics_unchanged() {
    let dataset = small_dataset();
    let sim = Simulation::new(SimConfig::default());

    // Reference run with tracing disabled (the default state).
    let untraced: RunMetrics = sim.run(&dataset, ApproachKind::Eta2, 0).unwrap();

    // Same run, traced into memory; min-cost afterwards for its round
    // events.
    let handle = eta2_obs::install_memory();
    let traced: RunMetrics = sim.run(&dataset, ApproachKind::Eta2, 0).unwrap();
    let _mc = sim.run(&dataset, ApproachKind::Eta2MinCost, 0).unwrap();
    eta2_obs::disable();

    // Tracing must not perturb the simulation: identical serialized
    // metrics for the same dataset and seed (NaNs serialize as null, so
    // this comparison is total).
    assert_eq!(
        serde_json::to_string(&untraced).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "tracing changed the simulation outcome"
    );

    let lines = handle.lines();
    assert!(!lines.is_empty(), "traced run emitted no events");

    let mut by_type: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    for line in &lines {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        let obj = v.as_object().expect("event is a JSON object");

        // Envelope: monotonic sequence number, timestamp, discriminator.
        let seq = obj["seq"].as_u64().expect("seq is u64");
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq not monotonic: {prev} then {seq}");
        }
        last_seq = Some(seq);
        assert!(obj["ts_ms"].as_u64().is_some(), "{line}");
        let kind = obj["type"].as_str().expect("type is a string").to_string();

        // Payload: every documented key is present.
        for key in required_keys(&kind) {
            assert!(
                obj.contains_key(*key),
                "{kind} event missing {key:?}: {line}"
            );
        }
        *by_type.entry(kind).or_insert(0) += 1;
    }

    // At least one event from each instrumented subsystem: truth analysis
    // (MLE iterations + outcome), domain tracking, both allocators, and
    // the simulation loop.
    for kind in [
        "mle_iteration",
        "mle_outcome",
        "domain_created",
        "alloc_pick",
        "alloc_outcome",
        "alloc_round",
        "sim_day",
        "run_summary",
    ] {
        assert!(
            by_type.get(kind).copied().unwrap_or(0) > 0,
            "no {kind} events; saw {by_type:?}"
        );
    }

    // The run summaries name the approaches that produced them.
    let summaries: Vec<Value> = lines
        .iter()
        .filter_map(|l| serde_json::from_str::<Value>(l).ok())
        .filter(|v| v["type"] == "run_summary")
        .collect();
    assert_eq!(summaries.len(), 2, "one summary per traced run");
    let names: Vec<&str> = summaries
        .iter()
        .map(|v| v["approach"].as_str().unwrap())
        .collect();
    assert!(names.contains(&ApproachKind::Eta2.name()), "{names:?}");
    assert!(
        names.contains(&ApproachKind::Eta2MinCost.name()),
        "{names:?}"
    );
}
