//! HTTP/1.1 plaintext fallback — the curl-debuggable dialect of the
//! front door (one request per connection, `Connection: close`).
//!
//! Routes (bodies are JSON; see the README "Serving over the network"
//! quickstart):
//!
//! | Method & path | Maps to |
//! |---|---|
//! | `GET /healthz` | liveness probe, plain `ok` |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /metrics.json` | [`Request::Metrics`] |
//! | `GET /truth/<task>` | [`Request::Truth`] |
//! | `GET /expertise/<user>/<domain>` | [`Request::Expertise`] |
//! | `POST /register` | [`Request::Register`] (body: array of specs) |
//! | `POST /submit` | [`Request::Submit`] (body: array of reports) |
//! | `POST /allocate` | [`Request::Allocate`] (body: `{tasks, users}`) |
//!
//! Responses are the [`Response`] enum serialized as JSON (the same
//! `op`-tagged shape the serde derives define), with the status code
//! reflecting the variant: `Error` → 400, `Overloaded` → 503 plus a
//! `Retry-After` header, everything else → 200.

use crate::proto::{Request, Response};
use crate::service::EngineService;
use std::io::{self, Read, Write};
use std::net::TcpStream;

const MAX_HEAD_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Serves one HTTP request on `stream`, then returns (connection close).
pub(crate) fn serve_http(service: &EngineService, stream: &mut TcpStream) -> io::Result<()> {
    let (head, mut carry) = match read_head(stream) {
        Ok(pair) => pair,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return respond_text(stream, 400, "text/plain", "malformed HTTP request\n")
        }
        Err(e) => return Err(e),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(usize::MAX);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return respond_text(stream, 413, "text/plain", "body too large\n");
    }
    while carry.len() < content_length {
        let mut buf = [0u8; 4096];
        let n = read_some(stream, &mut buf)?;
        if n == 0 {
            return respond_text(
                stream,
                400,
                "text/plain",
                "body shorter than Content-Length\n",
            );
        }
        carry.extend_from_slice(&buf[..n]);
    }
    let body = &carry[..content_length];

    match (method.as_str(), path.as_str()) {
        ("GET", "/healthz") => respond_text(stream, 200, "text/plain", "ok\n"),
        ("GET", "/metrics") => respond_text(
            stream,
            200,
            "text/plain; version=0.0.4",
            &eta2_obs::expose_prometheus(),
        ),
        ("GET", "/metrics.json") => respond_request(service, stream, Request::Metrics),
        ("GET", p) if p.starts_with("/truth/") => match p["/truth/".len()..].parse::<u32>() {
            Ok(id) => respond_request(
                service,
                stream,
                Request::Truth {
                    task: eta2_core::model::TaskId(id),
                },
            ),
            Err(_) => respond_text(stream, 400, "text/plain", "task id must be a u32\n"),
        },
        ("GET", p) if p.starts_with("/expertise/") => {
            let rest = &p["/expertise/".len()..];
            match rest.split_once('/') {
                Some((u, d)) => match (u.parse::<u32>(), d.parse::<u32>()) {
                    (Ok(user), Ok(domain)) => respond_request(
                        service,
                        stream,
                        Request::Expertise {
                            user: eta2_core::model::UserId(user),
                            domain: eta2_core::model::DomainId(domain),
                        },
                    ),
                    _ => respond_text(stream, 400, "text/plain", "ids must be u32\n"),
                },
                None => respond_text(
                    stream,
                    400,
                    "text/plain",
                    "want /expertise/<user>/<domain>\n",
                ),
            }
        }
        ("POST", "/register") => match serde_json::from_slice(body) {
            Ok(specs) => respond_request(service, stream, Request::Register { specs }),
            Err(e) => respond_text(
                stream,
                400,
                "text/plain",
                &format!("bad register body: {e}\n"),
            ),
        },
        ("POST", "/submit") => match serde_json::from_slice(body) {
            Ok(reports) => respond_request(service, stream, Request::Submit { reports }),
            Err(e) => respond_text(
                stream,
                400,
                "text/plain",
                &format!("bad submit body: {e}\n"),
            ),
        },
        ("POST", "/allocate") => {
            #[derive(serde::Deserialize)]
            struct AllocateBody {
                tasks: Vec<eta2_core::model::TaskId>,
                users: Vec<eta2_core::model::UserProfile>,
            }
            match serde_json::from_slice::<AllocateBody>(body) {
                Ok(b) => respond_request(
                    service,
                    stream,
                    Request::Allocate {
                        tasks: b.tasks,
                        users: b.users,
                    },
                ),
                Err(e) => respond_text(
                    stream,
                    400,
                    "text/plain",
                    &format!("bad allocate body: {e}\n"),
                ),
            }
        }
        _ => respond_text(stream, 404, "text/plain", "no such route\n"),
    }
}

fn respond_request(
    service: &EngineService,
    stream: &mut TcpStream,
    request: Request,
) -> io::Result<()> {
    let ctx = eta2_obs::tracing_active().then(eta2_obs::TraceContext::root);
    if let Some(ctx) = ctx {
        eta2_obs::emit(&eta2_obs::Event::TraceNetRequest {
            trace: ctx.trace,
            span: ctx.span,
            parent: eta2_obs::trace::NO_PARENT,
            op: request.op_name(),
            bytes: 0,
        });
    }
    let response = service.call_traced(&request, ctx);
    if !matches!(response, Response::Overloaded { .. }) {
        eta2_obs::counter("net.accepted", 1);
    }
    let (status, retry_after) = match &response {
        Response::Error { .. } => (400, None),
        Response::Overloaded { retry_after_ms } => {
            (503, Some(retry_after_ms.div_ceil(1000).max(1)))
        }
        _ => (200, None),
    };
    let body = serde_json::to_string(&response).unwrap_or_else(|_| "{}".to_string());
    respond(
        stream,
        status,
        "application/json",
        retry_after,
        &(body + "\n"),
    )
}

fn respond_text(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    respond(stream, status, content_type, None, body)
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    retry_after_s: Option<u64>,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(s) = retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    eta2_obs::counter("net.bytes", (head.len() + body.len()) as u64);
    Ok(())
}

/// One read retrying through timeouts (the socket carries a read
/// timeout so handler threads can notice server shutdown).
fn read_some(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
    loop {
        match stream.read(buf) {
            Ok(n) => return Ok(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads up to the end of the header block; returns the head text and
/// any body bytes that arrived with it.
fn read_head(stream: &mut TcpStream) -> io::Result<(String, Vec<u8>)> {
    let mut buf = Vec::with_capacity(1024);
    loop {
        let mut chunk = [0u8; 1024];
        let n = read_some(stream, &mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "eof in headers"));
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(at) = find_head_end(&buf) {
            let head = String::from_utf8(buf[..at].to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 headers"))?;
            let carry = buf[at + 4..].to_vec();
            return Ok((head, carry));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "headers too large",
            ));
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
