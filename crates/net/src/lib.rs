//! Wire-level front door for the ETA² serving engine.
//!
//! This crate puts [`ServeEngine`](eta2_serve::ServeEngine) on a TCP
//! socket behind a single versioned request surface:
//!
//! - [`proto`] — the [`Request`]/[`Response`] enum pair and the
//!   length-prefixed binary codec that carries them: each frame is a
//!   24-byte header (`"ETA2"` magic, protocol version, correlation id,
//!   payload length, CRC32) followed by a compact payload, reusing the
//!   `eta2-wal` CRC discipline so torn or corrupted frames are rejected
//!   with typed [`DecodeError`]s rather than misread.
//! - [`EngineService`] — the canonical dispatch from requests to
//!   responses, with explicit admission control: submits that would grow
//!   the engine's pending queue past a bound are shed with
//!   [`Response::Overloaded`] carrying a retry hint, so the server never
//!   queues unboundedly and `serve.queue_depth` stays bounded.
//! - [`NetServer`] — a thread-per-connection `std::net` listener that
//!   sniffs each connection's first bytes and speaks either the binary
//!   protocol or a plaintext HTTP/1.1 fallback (curl-friendly; see the
//!   README quickstart), plus a background ticker draining flushes.
//! - [`NetClient`] — a blocking client multiplexing requests over one
//!   socket, used by the `eta2-bench` load generator.
//! - [`fuzz`] — a seeded codec fuzzer proving malformed frames
//!   (truncated, oversized, bad-CRC, wrong-version) never panic.
//!
//! The same `Request`/`Response` types are the in-process API: the
//! high-level `eta2-server` crate dispatches through them too, so a
//! caller that outgrows one process keeps its request shapes when it
//! moves to the wire.
//!
//! Everything here is `std::net` + `std::thread`; the crate adds no
//! dependencies beyond the workspace's existing serde stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod fuzz;
mod http;
pub mod proto;
mod server;
mod service;

pub use client::{ClientError, NetClient};
pub use proto::{
    decode_header, decode_message, decode_payload, encode_message, encode_request, encode_response,
    DecodeError, FrameHeader, Message, Request, Response, ERR_BAD_REQUEST, ERR_MALFORMED,
    ERR_REGISTER, ERR_UNSUPPORTED_VERSION, HEADER_BYTES, MAGIC, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{NetConfig, NetServer};
pub use service::EngineService;
