//! The ETA² wire protocol: versioned, length-prefixed, CRC32-framed
//! request/response messages (DESIGN.md §14).
//!
//! # Frame layout
//!
//! Every message — request or response — travels in one frame:
//!
//! ```text
//! magic    [u8; 4]   b"ETA2"
//! version  u32 LE    protocol version (currently 1)
//! req_id   u64 LE    caller-chosen correlation id, echoed in the response
//! len      u32 LE    payload length in bytes
//! crc      u32 LE    CRC32 (IEEE) over the 4 len bytes then the payload
//! payload  [u8; len]
//! ```
//!
//! The length/CRC discipline is `eta2-wal`'s record framing verbatim
//! (same polynomial, same len-then-payload coverage, same oversize
//! guard), so one checksum implementation serves both the log and the
//! wire. The payload opens with a one-byte message tag — requests use
//! tags `< 0x80`, responses `>= 0x80` — followed by the tag-specific
//! fields, all little-endian, with `u32`-prefixed counts and strings.
//!
//! # Version negotiation
//!
//! The 24-byte header layout is **frozen across versions**: a server can
//! always read the header, skip `len` payload bytes, and answer a frame
//! whose `version` it does not speak with a typed
//! [`Response::Error`] carrying [`ERR_UNSUPPORTED_VERSION`] and the
//! server's own version in the message — the same reject-don't-misread
//! posture as `ServerSnapshot` and `EngineCheckpoint` deserialization.
//! Clients are expected to stop (or downgrade) on that reply; the
//! connection stays usable.
//!
//! # Robustness contract
//!
//! [`decode_message`] never panics and never allocates more than the
//! bytes it was handed: every interior count is validated against the
//! remaining payload before a vector is sized, oversized length prefixes
//! are rejected before allocation, and every malformed-input class maps
//! to a typed [`DecodeError`]. The adversarial suite in
//! `tests/codec.rs` and [`crate::fuzz`] hold the decoder to this.

use eta2_core::model::{DomainId, Observation, TaskId, UserId, UserProfile};
use eta2_core::truth::TruthEstimate;
use eta2_serve::TaskSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"ETA2";

/// Protocol version spoken by this build. Frames carrying any other
/// version are answered with [`ERR_UNSUPPORTED_VERSION`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Byte length of the fixed frame header (magic + version + req_id +
/// len + crc). Frozen across protocol versions.
pub const HEADER_BYTES: usize = 24;

/// Upper bound on a frame payload. Length prefixes claiming more are
/// rejected as [`DecodeError::Oversized`] *before* any allocation —
/// the same guard discipline as `eta2_wal::MAX_RECORD_BYTES`.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;

/// Error code: the frame's protocol version is not spoken by this server.
pub const ERR_UNSUPPORTED_VERSION: u16 = 1;
/// Error code: the payload failed to decode (bad tag, torn interior,
/// checksum mismatch).
pub const ERR_MALFORMED: u16 = 2;
/// Error code: the request was well-formed but semantically invalid
/// (out-of-range user id, wrong server mode, …).
pub const ERR_BAD_REQUEST: u16 = 3;
/// Error code: task registration was rejected by the engine.
pub const ERR_REGISTER: u16 = 4;

// Payload tags. Requests < 0x80, responses >= 0x80.
const TAG_REGISTER: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_ALLOCATE: u8 = 0x03;
const TAG_TRUTH: u8 = 0x04;
const TAG_EXPERTISE: u8 = 0x05;
const TAG_METRICS: u8 = 0x06;
const TAG_REGISTERED: u8 = 0x81;
const TAG_SUBMITTED: u8 = 0x82;
const TAG_ALLOCATED: u8 = 0x83;
const TAG_TRUTH_IS: u8 = 0x84;
const TAG_EXPERTISE_IS: u8 = 0x85;
const TAG_METRICS_ARE: u8 = 0x86;
const TAG_ERROR: u8 = 0x87;
const TAG_OVERLOADED: u8 = 0x88;

/// A client-to-server message — the single versioned public request
/// surface, mirroring the wire frames one-to-one. In-process callers
/// (`Eta2Server::request`, `EngineService::call`) and over-the-wire
/// callers construct exactly these values.
///
/// `#[non_exhaustive]`: new operations may be added in minor releases;
/// match with a wildcard arm. A server that does not understand a tag
/// answers [`Response::Error`] with [`ERR_MALFORMED`] rather than
/// dropping the connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Register pre-domained tasks; the engine assigns their ids.
    Register {
        /// The task specs to register, in id-assignment order.
        specs: Vec<TaskSpec>,
    },
    /// Submit a batch of collected reports for truth analysis.
    Submit {
        /// The reports; at most one per `(user, task)` pair is kept.
        reports: Vec<Observation>,
    },
    /// Max-quality allocation (§5.1) of tasks to users under the current
    /// expertise estimates.
    Allocate {
        /// Tasks to allocate (unknown ids are ignored).
        tasks: Vec<TaskId>,
        /// The candidate users with their capacities.
        users: Vec<UserProfile>,
    },
    /// Read the latest truth estimate for one task.
    Truth {
        /// The task to look up.
        task: TaskId,
    },
    /// Read one user's expertise in one domain.
    Expertise {
        /// The user.
        user: UserId,
        /// The domain.
        domain: DomainId,
    },
    /// Read the server's metrics registry as a JSON snapshot
    /// (`eta2.metrics/1` schema).
    Metrics,
}

/// A server-to-client message, paired one-to-one with [`Request`].
///
/// `#[non_exhaustive]`: new responses may be added in minor releases;
/// match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Response {
    /// Tasks were registered; `ids` parallels the submitted specs.
    Registered {
        /// The assigned task ids, in spec order.
        ids: Vec<TaskId>,
    },
    /// A submit crossed the admission boundary and was folded in.
    Submitted {
        /// Reports accepted into shard pending queues.
        accepted: u64,
        /// Non-finite reports quarantined at the boundary.
        quarantined: u64,
        /// Reports naming an unregistered task, dropped.
        unknown_task: u64,
        /// Shard flushes this submit triggered inline.
        flushes: u64,
    },
    /// The max-quality assignment.
    Allocated {
        /// `(task, assigned users)` pairs; unassigned tasks are absent.
        assignments: Vec<(TaskId, Vec<UserId>)>,
    },
    /// The truth estimate for the queried task (`None` before its first
    /// flush or for an unknown id).
    Truth {
        /// The estimate, if the task has been analysed.
        estimate: Option<TruthEstimate>,
    },
    /// The queried expertise value.
    Expertise {
        /// Estimated expertise `e_{id}` of the user in the domain.
        value: f64,
    },
    /// The metrics registry snapshot.
    Metrics {
        /// JSON document in the `eta2.metrics/1` schema.
        json: String,
    },
    /// The request was rejected; the connection stays usable.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The ingest queue is full: the submit was shed at the admission
    /// boundary instead of queueing unboundedly. Retry after the hint.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
}

/// Either message direction, as decoded from a frame payload. Request
/// and response tags share one (disjoint) tag space, so a single decoder
/// serves servers, clients, and the fuzzer.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A client-to-server frame.
    Request(Request),
    /// A server-to-client frame.
    Response(Response),
}

/// Typed decode failure. Every malformed-input class maps here; the
/// decoder never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ends before the frame does (header or payload). For a
    /// streaming reader this means "read more bytes".
    Truncated {
        /// Bytes the frame needs in total (header + payload), when the
        /// header was readable; [`HEADER_BYTES`] otherwise.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame's protocol version is not [`PROTOCOL_VERSION`].
    UnsupportedVersion {
        /// The version the frame carried.
        version: u32,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`]; rejected before
    /// allocation.
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The payload checksum does not match the frame's `crc` field.
    BadCrc {
        /// CRC the frame claimed.
        expected: u32,
        /// CRC computed over the received bytes.
        found: u32,
    },
    /// The payload opens with a tag this build does not know.
    UnknownTag {
        /// The unknown tag byte.
        tag: u8,
    },
    /// The payload decoded cleanly but bytes remain after the message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A tag-specific field failed to validate (interior truncation is
    /// reported as [`DecodeError::Truncated`]).
    Malformed {
        /// What failed.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            DecodeError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            DecodeError::UnsupportedVersion { version } => write!(
                f,
                "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            ),
            DecodeError::Oversized { len } => write!(
                f,
                "oversized frame: payload claims {len} bytes, cap is {MAX_FRAME_BYTES}"
            ),
            DecodeError::BadCrc { expected, found } => {
                write!(
                    f,
                    "crc mismatch: frame says {expected:#010x}, payload hashes to {found:#010x}"
                )
            }
            DecodeError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after message")
            }
            DecodeError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_payload(message: &Message) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    match message {
        Message::Request(Request::Register { specs }) => {
            p.push(TAG_REGISTER);
            put_u32(&mut p, specs.len() as u32);
            for s in specs {
                put_u32(&mut p, s.domain.0);
                put_f64(&mut p, s.processing_time);
                put_f64(&mut p, s.cost);
            }
        }
        Message::Request(Request::Submit { reports }) => {
            p.push(TAG_SUBMIT);
            put_u32(&mut p, reports.len() as u32);
            for o in reports {
                put_u32(&mut p, o.user.0);
                put_u32(&mut p, o.task.0);
                put_f64(&mut p, o.value);
            }
        }
        Message::Request(Request::Allocate { tasks, users }) => {
            p.push(TAG_ALLOCATE);
            put_u32(&mut p, tasks.len() as u32);
            for t in tasks {
                put_u32(&mut p, t.0);
            }
            put_u32(&mut p, users.len() as u32);
            for u in users {
                put_u32(&mut p, u.id.0);
                put_f64(&mut p, u.capacity);
            }
        }
        Message::Request(Request::Truth { task }) => {
            p.push(TAG_TRUTH);
            put_u32(&mut p, task.0);
        }
        Message::Request(Request::Expertise { user, domain }) => {
            p.push(TAG_EXPERTISE);
            put_u32(&mut p, user.0);
            put_u32(&mut p, domain.0);
        }
        Message::Request(Request::Metrics) => p.push(TAG_METRICS),
        Message::Response(Response::Registered { ids }) => {
            p.push(TAG_REGISTERED);
            put_u32(&mut p, ids.len() as u32);
            for id in ids {
                put_u32(&mut p, id.0);
            }
        }
        Message::Response(Response::Submitted {
            accepted,
            quarantined,
            unknown_task,
            flushes,
        }) => {
            p.push(TAG_SUBMITTED);
            put_u64(&mut p, *accepted);
            put_u64(&mut p, *quarantined);
            put_u64(&mut p, *unknown_task);
            put_u64(&mut p, *flushes);
        }
        Message::Response(Response::Allocated { assignments }) => {
            p.push(TAG_ALLOCATED);
            put_u32(&mut p, assignments.len() as u32);
            for (task, users) in assignments {
                put_u32(&mut p, task.0);
                put_u32(&mut p, users.len() as u32);
                for u in users {
                    put_u32(&mut p, u.0);
                }
            }
        }
        Message::Response(Response::Truth { estimate }) => {
            p.push(TAG_TRUTH_IS);
            match estimate {
                None => p.push(0),
                Some(e) => {
                    p.push(1);
                    put_f64(&mut p, e.mu);
                    put_f64(&mut p, e.sigma);
                    p.push(e.fallback as u8);
                }
            }
        }
        Message::Response(Response::Expertise { value }) => {
            p.push(TAG_EXPERTISE_IS);
            put_f64(&mut p, *value);
        }
        Message::Response(Response::Metrics { json }) => {
            p.push(TAG_METRICS_ARE);
            put_str(&mut p, json);
        }
        Message::Response(Response::Error { code, message }) => {
            p.push(TAG_ERROR);
            put_u16(&mut p, *code);
            put_str(&mut p, message);
        }
        Message::Response(Response::Overloaded { retry_after_ms }) => {
            p.push(TAG_OVERLOADED);
            put_u64(&mut p, *retry_after_ms);
        }
    }
    p
}

/// Encodes one message into a complete frame (header + payload).
pub fn encode_message(req_id: u64, message: &Message) -> Vec<u8> {
    let payload = encode_payload(message);
    debug_assert!(payload.len() <= MAX_FRAME_BYTES as usize);
    let len = payload.len() as u32;
    let len_bytes = len.to_le_bytes();
    let crc = eta2_wal::crc32(&[&len_bytes, &payload]);
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&len_bytes);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Encodes a request frame.
pub fn encode_request(req_id: u64, request: &Request) -> Vec<u8> {
    encode_message(req_id, &Message::Request(request.clone()))
}

/// Encodes a response frame.
pub fn encode_response(req_id: u64, response: &Response) -> Vec<u8> {
    encode_message(req_id, &Message::Response(response.clone()))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A parsed frame header. The header layout is frozen across protocol
/// versions, so it can always be read — even for frames whose version or
/// payload this build cannot decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version the frame carries.
    pub version: u32,
    /// Correlation id.
    pub req_id: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32 over the len bytes then the payload.
    pub crc: u32,
}

/// Parses the fixed 24-byte header, validating magic and the length
/// bound but **not** the version: callers that want to answer
/// unsupported versions with a typed error (rather than fail the read)
/// check [`FrameHeader::version`] themselves.
pub fn decode_header(bytes: &[u8]) -> Result<FrameHeader, DecodeError> {
    if bytes.len() < HEADER_BYTES {
        return Err(DecodeError::Truncated {
            needed: HEADER_BYTES,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[0..4]);
        return Err(DecodeError::BadMagic { found });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let req_id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(DecodeError::Oversized { len });
    }
    Ok(FrameHeader {
        version,
        req_id,
        len,
        crc,
    })
}

/// Verifies a payload against its header's CRC and decodes the message.
pub fn decode_payload(header: &FrameHeader, payload: &[u8]) -> Result<Message, DecodeError> {
    if header.version != PROTOCOL_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            version: header.version,
        });
    }
    if payload.len() != header.len as usize {
        return Err(DecodeError::Truncated {
            needed: HEADER_BYTES + header.len as usize,
            have: HEADER_BYTES + payload.len(),
        });
    }
    let found = eta2_wal::crc32(&[&header.len.to_le_bytes(), payload]);
    if found != header.crc {
        return Err(DecodeError::BadCrc {
            expected: header.crc,
            found,
        });
    }
    let mut r = Reader::new(payload);
    let message = decode_body(&mut r)?;
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(message)
}

/// Decodes one complete frame from the front of `bytes`, returning the
/// correlation id, the message, and the number of bytes consumed (so a
/// buffer holding several frames can be walked).
pub fn decode_message(bytes: &[u8]) -> Result<(u64, Message, usize), DecodeError> {
    let header = decode_header(bytes)?;
    let total = HEADER_BYTES + header.len as usize;
    if bytes.len() < total {
        return Err(DecodeError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let message = decode_payload(&header, &bytes[HEADER_BYTES..total])?;
    Ok((header.req_id, message, total))
}

/// Bounds-checked little-endian payload reader. Every read is validated
/// against the remaining bytes, and counts are validated against the
/// bytes they imply before any vector is sized — an adversarial length
/// can never cause an allocation larger than the payload itself.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: self.pos + n,
                have: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Malformed {
                what: "boolean byte is neither 0 nor 1",
            }),
        }
    }

    /// Reads a count prefix and proves the remaining payload can hold
    /// `count` elements of at least `min_elem_bytes` each, so the caller
    /// may size a vector by it.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(DecodeError::Truncated {
                needed: self.pos + n.saturating_mul(min_elem_bytes),
                have: self.bytes.len(),
            });
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Malformed {
            what: "string is not valid UTF-8",
        })
    }
}

fn decode_body(r: &mut Reader<'_>) -> Result<Message, DecodeError> {
    let tag = r.u8()?;
    let message = match tag {
        TAG_REGISTER => {
            let n = r.count(20)?;
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                let domain = DomainId(r.u32()?);
                let processing_time = r.f64()?;
                let cost = r.f64()?;
                specs.push(TaskSpec::new(domain, processing_time, cost));
            }
            Message::Request(Request::Register { specs })
        }
        TAG_SUBMIT => {
            let n = r.count(16)?;
            let mut reports = Vec::with_capacity(n);
            for _ in 0..n {
                let user = UserId(r.u32()?);
                let task = TaskId(r.u32()?);
                let value = r.f64()?;
                reports.push(Observation { user, task, value });
            }
            Message::Request(Request::Submit { reports })
        }
        TAG_ALLOCATE => {
            let nt = r.count(4)?;
            let mut tasks = Vec::with_capacity(nt);
            for _ in 0..nt {
                tasks.push(TaskId(r.u32()?));
            }
            let nu = r.count(12)?;
            let mut users = Vec::with_capacity(nu);
            for _ in 0..nu {
                let id = UserId(r.u32()?);
                let capacity = r.f64()?;
                if !(capacity.is_finite() && capacity >= 0.0) {
                    return Err(DecodeError::Malformed {
                        what: "user capacity must be finite and >= 0",
                    });
                }
                users.push(UserProfile { id, capacity });
            }
            Message::Request(Request::Allocate { tasks, users })
        }
        TAG_TRUTH => Message::Request(Request::Truth {
            task: TaskId(r.u32()?),
        }),
        TAG_EXPERTISE => {
            let user = UserId(r.u32()?);
            let domain = DomainId(r.u32()?);
            Message::Request(Request::Expertise { user, domain })
        }
        TAG_METRICS => Message::Request(Request::Metrics),
        TAG_REGISTERED => {
            let n = r.count(4)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(TaskId(r.u32()?));
            }
            Message::Response(Response::Registered { ids })
        }
        TAG_SUBMITTED => Message::Response(Response::Submitted {
            accepted: r.u64()?,
            quarantined: r.u64()?,
            unknown_task: r.u64()?,
            flushes: r.u64()?,
        }),
        TAG_ALLOCATED => {
            let n = r.count(8)?;
            let mut assignments = Vec::with_capacity(n);
            for _ in 0..n {
                let task = TaskId(r.u32()?);
                let nu = r.count(4)?;
                let mut users = Vec::with_capacity(nu);
                for _ in 0..nu {
                    users.push(UserId(r.u32()?));
                }
                assignments.push((task, users));
            }
            Message::Response(Response::Allocated { assignments })
        }
        TAG_TRUTH_IS => {
            let estimate = if r.bool()? {
                Some(TruthEstimate {
                    mu: r.f64()?,
                    sigma: r.f64()?,
                    fallback: r.bool()?,
                })
            } else {
                None
            };
            Message::Response(Response::Truth { estimate })
        }
        TAG_EXPERTISE_IS => Message::Response(Response::Expertise { value: r.f64()? }),
        TAG_METRICS_ARE => Message::Response(Response::Metrics { json: r.str()? }),
        TAG_ERROR => {
            let code = r.u16()?;
            let message = r.str()?;
            Message::Response(Response::Error { code, message })
        }
        TAG_OVERLOADED => Message::Response(Response::Overloaded {
            retry_after_ms: r.u64()?,
        }),
        tag => return Err(DecodeError::UnknownTag { tag }),
    };
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_smoke() {
        let msgs = [
            Message::Request(Request::Metrics),
            Message::Request(Request::Truth { task: TaskId(7) }),
            Message::Response(Response::Overloaded { retry_after_ms: 50 }),
            Message::Response(Response::Truth {
                estimate: Some(TruthEstimate {
                    mu: 1.5,
                    sigma: 0.25,
                    fallback: true,
                }),
            }),
        ];
        for (i, m) in msgs.iter().enumerate() {
            let frame = encode_message(i as u64, m);
            let (id, back, used) = decode_message(&frame).expect("round trip");
            assert_eq!(id, i as u64);
            assert_eq!(&back, m);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn header_is_readable_for_unknown_versions() {
        let mut frame = encode_request(9, &Request::Metrics);
        frame[4..8].copy_from_slice(&99u32.to_le_bytes());
        let header = decode_header(&frame).expect("header layout is frozen");
        assert_eq!(header.version, 99);
        assert_eq!(header.req_id, 9);
        let err = decode_payload(&header, &frame[HEADER_BYTES..]).unwrap_err();
        assert_eq!(err, DecodeError::UnsupportedVersion { version: 99 });
    }
}
