//! Blocking binary-protocol client — used by the load generator, the
//! integration tests, and anything embedding a remote ETA² engine.

use crate::proto::{
    decode_payload, encode_request, DecodeError, FrameHeader, Message, Request, Response,
    HEADER_BYTES, MAGIC,
};
use eta2_core::model::{DomainId, Observation, TaskId, UserId, UserProfile};
use eta2_serve::TaskSpec;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Failure of one client call.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The underlying socket operation failed.
    Io(io::Error),
    /// The server's frame failed to decode.
    Decode(DecodeError),
    /// The server answered with a request frame, or echoed a different
    /// correlation id than the one sent.
    Protocol {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Decode(e) => write!(f, "bad response frame: {e}"),
            ClientError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Decode(e) => Some(e),
            ClientError::Protocol { .. } => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection multiplexing any number of logical clients'
/// requests over one socket (requests are answered in order; the
/// correlation id ties each response to its request).
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connects to a front door.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream, next_id: 1 })
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let frame = encode_request(id, request);
        self.stream.write_all(&frame)?;
        let (rid, message) = self.read_message()?;
        if rid != id {
            return Err(ClientError::Protocol {
                detail: format!("sent req_id {id}, response echoes {rid}"),
            });
        }
        match message {
            Message::Response(response) => Ok(response),
            Message::Request(_) => Err(ClientError::Protocol {
                detail: "server sent a request frame".to_string(),
            }),
        }
    }

    fn read_message(&mut self) -> Result<(u64, Message), ClientError> {
        let mut header = [0u8; HEADER_BYTES];
        self.stream.read_exact(&mut header)?;
        if header[0..4] != MAGIC {
            return Err(ClientError::Decode(DecodeError::BadMagic {
                found: header[0..4].try_into().expect("4 bytes"),
            }));
        }
        let parsed = crate::proto::decode_header(&header).map_err(ClientError::Decode)?;
        let FrameHeader { req_id, len, .. } = parsed;
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        let message = decode_payload(&parsed, &payload).map_err(ClientError::Decode)?;
        Ok((req_id, message))
    }

    /// Registers tasks; returns their assigned ids.
    pub fn register(&mut self, specs: Vec<TaskSpec>) -> Result<Response, ClientError> {
        self.call(&Request::Register { specs })
    }

    /// Submits a report batch.
    pub fn submit(&mut self, reports: Vec<Observation>) -> Result<Response, ClientError> {
        self.call(&Request::Submit { reports })
    }

    /// Requests a max-quality allocation.
    pub fn allocate(
        &mut self,
        tasks: Vec<TaskId>,
        users: Vec<UserProfile>,
    ) -> Result<Response, ClientError> {
        self.call(&Request::Allocate { tasks, users })
    }

    /// Reads one task's truth estimate.
    pub fn truth(&mut self, task: TaskId) -> Result<Response, ClientError> {
        self.call(&Request::Truth { task })
    }

    /// Reads one user's expertise in one domain.
    pub fn expertise(&mut self, user: UserId, domain: DomainId) -> Result<Response, ClientError> {
        self.call(&Request::Expertise { user, domain })
    }

    /// Reads the server's metrics snapshot.
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Metrics)
    }
}
