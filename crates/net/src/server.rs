//! The backpressure-aware TCP front door.
//!
//! [`NetServer`] accepts connections on a `std::net` listener and speaks
//! two dialects on the same port, distinguished by the first bytes of
//! the stream: frames opening with the protocol [`MAGIC`](crate::proto::MAGIC)
//! run the binary loop (many requests per connection — the load
//! generator multiplexes thousands of simulated clients over one
//! socket), anything else is handed to the HTTP/1.1 fallback for
//! curl-debuggability (one request per connection).
//!
//! Admission control is explicit at two boundaries:
//!
//! * **Connections** — at most `max_connections` handler threads; a
//!   connection past the cap receives one `Overloaded` frame and is
//!   closed (counted in `net.shed`).
//! * **Ingest** — submits are shed by [`EngineService`] once the
//!   engine's pending queue reaches the configured capacity, so
//!   `serve.queue_depth` stays bounded under any offered load.
//!
//! With tracing active every decoded request opens a root
//! `trace_net_request` span at the socket read; submits thread it into
//! the engine so the batch's `trace_ingest` span (and transitively the
//! flush and publish spans) become its children.

use crate::proto::{
    decode_header, decode_payload, encode_response, DecodeError, Message, Request, Response,
    ERR_BAD_REQUEST, ERR_MALFORMED, ERR_UNSUPPORTED_VERSION, HEADER_BYTES, MAGIC, PROTOCOL_VERSION,
};
use crate::service::EngineService;
use eta2_obs::trace::NO_PARENT;
use eta2_obs::TraceContext;
use eta2_serve::ServeEngine;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-door configuration.
///
/// `#[non_exhaustive]`: construct via [`NetConfig::default`] and mutate
/// the fields you need.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct NetConfig {
    /// Concurrent connection cap; excess connections are shed with one
    /// `Overloaded` frame.
    pub max_connections: usize,
    /// Pending-report admission bound for submits (`0` = never shed).
    /// Bounds the engine's `serve.queue_depth` gauge.
    pub queue_capacity: usize,
    /// Backoff hint (milliseconds) carried by `Overloaded` responses.
    pub retry_after_ms: u64,
    /// Background flush cadence: a ticker thread calls
    /// [`ServeEngine::tick`] every this many milliseconds so sub-batch
    /// residue drains without client traffic. `0` disables the ticker
    /// (flushes then happen only at `batch_capacity` boundaries).
    pub tick_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 1024,
            queue_capacity: 1 << 16,
            retry_after_ms: 50,
            tick_ms: 25,
        }
    }
}

struct Shared {
    service: EngineService,
    stop: AtomicBool,
    conns: AtomicUsize,
    max_connections: usize,
    retry_after_ms: u64,
}

/// A running front door. Dropping (or [`NetServer::shutdown`]) stops the
/// accept loop and the ticker; connection handlers exit as their sockets
/// drain or hit the stop flag at the next read timeout.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `engine`.
    ///
    /// Serving arms the global metric registry: a front door that
    /// exposes `/metrics` and answers [`Request::Metrics`] must be
    /// recording `net.accepted` / `net.shed` / `net.bytes` and the
    /// engine's serve-side gauges, whatever the host process left the
    /// toggle at.
    ///
    /// [`Request::Metrics`]: crate::proto::Request::Metrics
    pub fn serve(engine: Arc<ServeEngine>, addr: &str, cfg: NetConfig) -> io::Result<NetServer> {
        eta2_obs::set_metrics(true);
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: EngineService::new(engine.clone(), cfg.queue_capacity, cfg.retry_after_ms),
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            max_connections: cfg.max_connections,
            retry_after_ms: cfg.retry_after_ms,
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let ticker = (cfg.tick_ms > 0).then(|| {
            let shared = shared.clone();
            let period = Duration::from_millis(cfg.tick_ms);
            std::thread::spawn(move || {
                while !shared.stop.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    shared.service.engine().tick();
                }
            })
        });
        Ok(NetServer {
            shared,
            addr: local,
            accept: Some(accept),
            ticker,
        })
    }

    /// The bound address (resolves port 0 to the kernel-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the accept and ticker threads. Connection
    /// handlers exit on their own as sockets drain or time out.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        if shared.conns.load(Ordering::Acquire) >= shared.max_connections {
            // Shed the connection itself: one typed Overloaded frame,
            // then close. The client knows to back off instead of
            // hanging on an accept queue.
            eta2_obs::counter("net.shed", 1);
            let mut stream = stream;
            let frame = encode_response(
                0,
                &Response::Overloaded {
                    retry_after_ms: shared.retry_after_ms,
                },
            );
            let _ = stream.write_all(&frame);
            continue;
        }
        shared.conns.fetch_add(1, Ordering::AcqRel);
        let shared = shared.clone();
        std::thread::spawn(move || {
            let _ = handle_conn(&shared, stream);
            shared.conns.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Reads exactly `buf.len()` bytes, retrying on read timeouts until the
/// stop flag is set. Returns `Ok(false)` on a clean EOF *before the
/// first byte* (client closed between frames); a tear mid-buffer is an
/// `UnexpectedEof` error.
fn read_full(shared: &Shared, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<bool> {
    let mut at = 0usize;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                if at == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                ));
            }
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "server stopping",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nodelay(true)?;
    // Sniff the dialect: binary frames open with the protocol magic,
    // anything else (GET, POST, …) is HTTP.
    let mut first = [0u8; 4];
    let mut seen = 0usize;
    while seen < 4 {
        match stream.peek(&mut first) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                seen = n;
                if n >= 4 {
                    break;
                }
                // A short peek can only stay short if the client paused
                // mid-preamble; back off briefly instead of spinning.
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
    if first == MAGIC {
        serve_binary(shared, &mut stream)
    } else {
        crate::http::serve_http(&shared.service, &mut stream)
    }
}

fn serve_binary(shared: &Shared, stream: &mut TcpStream) -> io::Result<()> {
    let mut header = [0u8; HEADER_BYTES];
    loop {
        if !read_full(shared, stream, &mut header)? {
            return Ok(()); // clean close between frames
        }
        let parsed = decode_header(&header);
        let parsed = match parsed {
            Ok(h) => h,
            Err(e) => {
                // Bad magic or an oversized claim: framing can no longer
                // be trusted, so answer once and drop the connection.
                let resp = Response::Error {
                    code: ERR_MALFORMED,
                    message: e.to_string(),
                };
                let frame = encode_response(0, &resp);
                let _ = stream.write_all(&frame);
                eta2_obs::counter("net.bytes", (HEADER_BYTES + frame.len()) as u64);
                return Ok(());
            }
        };
        let mut payload = vec![0u8; parsed.len as usize];
        if !read_full(shared, stream, &mut payload)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed before payload",
            ));
        }
        let frame_bytes = (HEADER_BYTES + payload.len()) as u64;
        // Version negotiation: the frozen header let us frame-skip the
        // payload; reject with the version we do speak and keep going so
        // the client can downgrade on the same connection.
        if parsed.version != PROTOCOL_VERSION {
            let resp = Response::Error {
                code: ERR_UNSUPPORTED_VERSION,
                message: format!(
                    "protocol version {} not supported; this server speaks {}",
                    parsed.version, PROTOCOL_VERSION
                ),
            };
            write_response(stream, parsed.req_id, &resp, frame_bytes)?;
            continue;
        }
        let request = match decode_payload(&parsed, &payload) {
            Ok(Message::Request(request)) => request,
            Ok(Message::Response(_)) => {
                let resp = Response::Error {
                    code: ERR_BAD_REQUEST,
                    message: "expected a request frame, got a response".to_string(),
                };
                write_response(stream, parsed.req_id, &resp, frame_bytes)?;
                continue;
            }
            Err(e @ DecodeError::BadCrc { .. })
            | Err(e @ DecodeError::UnknownTag { .. })
            | Err(e @ DecodeError::TrailingBytes { .. })
            | Err(e @ DecodeError::Truncated { .. })
            | Err(e @ DecodeError::Malformed { .. }) => {
                // The frame boundary itself was intact, so the
                // connection survives a malformed payload.
                let resp = Response::Error {
                    code: ERR_MALFORMED,
                    message: e.to_string(),
                };
                write_response(stream, parsed.req_id, &resp, frame_bytes)?;
                continue;
            }
            Err(e) => {
                let resp = Response::Error {
                    code: ERR_MALFORMED,
                    message: e.to_string(),
                };
                write_response(stream, parsed.req_id, &resp, frame_bytes)?;
                return Ok(());
            }
        };
        // Root span of this request's causal trace, opened at the socket
        // read so everything the request causes (ingest, flush, publish)
        // nests under it.
        let ctx = eta2_obs::tracing_active().then(TraceContext::root);
        if let Some(ctx) = ctx {
            eta2_obs::emit(&eta2_obs::Event::TraceNetRequest {
                trace: ctx.trace,
                span: ctx.span,
                parent: NO_PARENT,
                op: request.op_name(),
                bytes: frame_bytes,
            });
        }
        let response = shared.service.call_traced(&request, ctx);
        if !matches!(response, Response::Overloaded { .. }) {
            eta2_obs::counter("net.accepted", 1);
        }
        write_response(stream, parsed.req_id, &response, frame_bytes)?;
    }
}

fn write_response(
    stream: &mut TcpStream,
    req_id: u64,
    response: &Response,
    request_bytes: u64,
) -> io::Result<()> {
    let frame = encode_response(req_id, response);
    stream.write_all(&frame)?;
    eta2_obs::counter("net.bytes", request_bytes + frame.len() as u64);
    Ok(())
}
