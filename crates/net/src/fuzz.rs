//! Seeded mutation fuzz over the wire codec — the protocol half of the
//! `eta2-check` philosophy: malformed frames (torn, oversized, bad CRC,
//! wrong version, scribbled interiors) must map to typed
//! [`DecodeError`](crate::proto::DecodeError)s, never panic, and never
//! allocate beyond the bytes on hand. Run via `eta2-cli check
//! --net-fuzz N` or the `codec` test suite.

use crate::proto::{decode_message, encode_message, Message, Request, Response};
use eta2_core::model::{DomainId, Observation, TaskId, UserId, UserProfile};
use eta2_core::truth::TruthEstimate;
use eta2_serve::TaskSpec;

/// Outcome counts of one fuzz run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzReport {
    /// Mutated frames driven through the decoder.
    pub iterations: u64,
    /// Mutants that still decoded to a valid message.
    pub decoded_ok: u64,
    /// Mutants rejected with a typed error (the expected common case).
    pub rejected: u64,
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic message for fuzz seed `h`, cycling through every
/// frame shape so each tag's decoder sees mutants.
pub fn sample_message(h: u64) -> Message {
    let f = |k: u64| (mix(h ^ k) % 1000) as f64 / 100.0 + 0.01;
    match h % 14 {
        0 => Message::Request(Request::Register {
            specs: (0..(h % 5))
                .map(|i| TaskSpec::new(DomainId((h ^ i) as u32 % 64), f(i), f(i + 7)))
                .collect(),
        }),
        1 => Message::Request(Request::Submit {
            reports: (0..(h % 6))
                .map(|i| Observation {
                    user: UserId(mix(h ^ i) as u32 % 128),
                    task: TaskId(mix(h ^ (i + 9)) as u32 % 256),
                    value: f(i),
                })
                .collect(),
        }),
        2 => Message::Request(Request::Allocate {
            tasks: (0..(h % 4)).map(|i| TaskId((h ^ i) as u32 % 99)).collect(),
            users: (0..(h % 3))
                .map(|i| UserProfile {
                    id: UserId(i as u32),
                    capacity: f(i),
                })
                .collect(),
        }),
        3 => Message::Request(Request::Truth {
            task: TaskId(h as u32),
        }),
        4 => Message::Request(Request::Expertise {
            user: UserId(h as u32 % 512),
            domain: DomainId(mix(h) as u32 % 64),
        }),
        5 => Message::Request(Request::Metrics),
        6 => Message::Response(Response::Registered {
            ids: (0..(h % 7)).map(|i| TaskId((h + i) as u32)).collect(),
        }),
        7 => Message::Response(Response::Submitted {
            accepted: h % 100,
            quarantined: mix(h) % 3,
            unknown_task: mix(h ^ 1) % 3,
            flushes: mix(h ^ 2) % 2,
        }),
        8 => Message::Response(Response::Allocated {
            assignments: (0..(h % 3))
                .map(|i| {
                    (
                        TaskId(i as u32),
                        (0..(mix(h ^ i) % 4)).map(|u| UserId(u as u32)).collect(),
                    )
                })
                .collect(),
        }),
        9 => Message::Response(Response::Truth {
            estimate: (h % 2 == 0).then(|| TruthEstimate {
                mu: f(1),
                sigma: f(2),
                fallback: h % 4 == 0,
            }),
        }),
        10 => Message::Response(Response::Expertise { value: f(3) }),
        11 => Message::Response(Response::Metrics {
            json: format!("{{\"schema\":\"eta2.metrics/1\",\"n\":{}}}", h % 1000),
        }),
        12 => Message::Response(Response::Error {
            code: (h % 5) as u16,
            message: format!("synthetic error {h}"),
        }),
        _ => Message::Response(Response::Overloaded {
            retry_after_ms: h % 5000,
        }),
    }
}

/// Drives `iterations` mutated frames through the decoder. Each round
/// encodes a valid frame, applies a seeded mutation (byte scribbles,
/// truncation, extension, length-prefix and version corruption), and
/// decodes; any panic propagates to the caller (and fails the run).
pub fn fuzz_decoder(seed: u64, iterations: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iterations {
        let h = mix(seed ^ i);
        let mut frame = encode_message(h, &sample_message(h));
        match mix(h ^ 0xF00D) % 6 {
            0 => {
                // Scribble 1-4 random bytes anywhere in the frame.
                for k in 0..(1 + mix(h ^ 1) % 4) {
                    let at = (mix(h ^ (k + 2)) as usize) % frame.len();
                    frame[at] ^= (mix(h ^ (k + 11)) % 255 + 1) as u8;
                }
            }
            1 => {
                // Torn frame: truncate at a random point.
                let keep = (mix(h ^ 3) as usize) % frame.len();
                frame.truncate(keep);
            }
            2 => {
                // Oversized length prefix.
                let huge = (u32::MAX - (mix(h ^ 4) as u32 % 1024)).to_le_bytes();
                if frame.len() >= 20 {
                    frame[16..20].copy_from_slice(&huge);
                }
            }
            3 => {
                // Wrong protocol version.
                let v = (mix(h ^ 5) as u32).to_le_bytes();
                if frame.len() >= 8 {
                    frame[4..8].copy_from_slice(&v);
                }
            }
            4 => {
                // Trailing garbage appended after the frame. The decoder
                // reports consumed bytes, so this must still decode.
                frame.extend((0..(mix(h ^ 6) % 32)).map(|k| mix(h ^ k) as u8));
            }
            _ => {
                // Pure noise: replace the whole buffer.
                let n = (mix(h ^ 7) as usize) % 256;
                frame = (0..n).map(|k| mix(h ^ k as u64) as u8).collect();
            }
        }
        report.iterations += 1;
        match decode_message(&frame) {
            Ok(_) => report.decoded_ok += 1,
            Err(_) => report.rejected += 1,
        }
    }
    report
}
