//! [`EngineService`] — the canonical [`Request`] → [`Response`] dispatch
//! over a [`ServeEngine`], shared by the binary TCP loop, the HTTP
//! fallback, and in-process callers. Admission control lives here: a
//! submit that would push the engine's pending-report queue past the
//! configured capacity is shed with [`Response::Overloaded`] instead of
//! queueing unboundedly, so `serve.queue_depth` stays bounded no matter
//! how hard the network pushes.

use crate::proto::{Request, Response, ERR_BAD_REQUEST, ERR_REGISTER};
use eta2_core::model::ObservationSet;
use eta2_obs::TraceContext;
use eta2_serve::ServeEngine;
use std::sync::Arc;

/// Stateless request dispatcher over a shared serving engine.
#[derive(Clone)]
pub struct EngineService {
    engine: Arc<ServeEngine>,
    /// Pending-report admission bound; `0` disables shedding.
    queue_capacity: usize,
    /// Backoff hint carried by [`Response::Overloaded`].
    retry_after_ms: u64,
}

impl EngineService {
    /// Creates a service over `engine` shedding submits once the engine's
    /// pending queue holds `queue_capacity` reports (`0` = never shed).
    pub fn new(engine: Arc<ServeEngine>, queue_capacity: usize, retry_after_ms: u64) -> Self {
        EngineService {
            engine,
            queue_capacity,
            retry_after_ms,
        }
    }

    /// The engine this service fronts.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Dispatches one request. Equivalent to
    /// [`call_traced`](Self::call_traced) with no parent span.
    pub fn call(&self, request: &Request) -> Response {
        self.call_traced(request, None)
    }

    /// Dispatches one request, threading `ctx` (the per-request network
    /// span) into the engine so a submit's `trace_ingest` span opens as
    /// its child — the causal path then reads socket → ingest → flush →
    /// publish in one trace.
    pub fn call_traced(&self, request: &Request, ctx: Option<TraceContext>) -> Response {
        match request {
            Request::Register { specs } => match self.engine.register_tasks(specs) {
                Ok(ids) => Response::Registered { ids },
                Err(e) => Response::Error {
                    code: ERR_REGISTER,
                    message: e.to_string(),
                },
            },
            Request::Submit { reports } => {
                if self.queue_capacity > 0
                    && self.engine.queue_depth() + reports.len() > self.queue_capacity
                {
                    eta2_obs::counter("net.shed", 1);
                    return Response::Overloaded {
                        retry_after_ms: self.retry_after_ms,
                    };
                }
                let batch: ObservationSet = reports.iter().copied().collect();
                let receipt = self.engine.submit_traced(&batch, ctx);
                Response::Submitted {
                    accepted: receipt.accepted as u64,
                    quarantined: receipt.quarantined as u64,
                    unknown_task: receipt.unknown_task as u64,
                    flushes: receipt.flushes.len() as u64,
                }
            }
            Request::Allocate { tasks, users } => {
                let snap = self.engine.snapshot();
                if let Some(bad) = users.iter().find(|u| u.id.0 as usize >= snap.n_users()) {
                    return Response::Error {
                        code: ERR_BAD_REQUEST,
                        message: format!(
                            "{} out of range: engine serves {} users",
                            bad.id,
                            snap.n_users()
                        ),
                    };
                }
                let alloc = snap.allocate_max_quality(tasks, users);
                Response::Allocated {
                    assignments: alloc
                        .iter()
                        .map(|(task, assigned)| (task, assigned.to_vec()))
                        .collect(),
                }
            }
            Request::Truth { task } => Response::Truth {
                estimate: self.engine.snapshot().truth(*task),
            },
            Request::Expertise { user, domain } => {
                let snap = self.engine.snapshot();
                if user.0 as usize >= snap.n_users() {
                    return Response::Error {
                        code: ERR_BAD_REQUEST,
                        message: format!(
                            "{} out of range: engine serves {} users",
                            user,
                            snap.n_users()
                        ),
                    };
                }
                Response::Expertise {
                    value: snap.expertise(*user, *domain),
                }
            }
            Request::Metrics => Response::Metrics {
                json: eta2_obs::expose_json(),
            },
            // `Request` is #[non_exhaustive]: a future operation this
            // build predates is rejected, not dropped.
            #[allow(unreachable_patterns)]
            _ => Response::Error {
                code: ERR_BAD_REQUEST,
                message: "operation not supported by this build".to_string(),
            },
        }
    }
}

impl Request {
    /// The operation's wire name, as used in trace events and HTTP paths.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::Submit { .. } => "submit",
            Request::Allocate { .. } => "allocate",
            Request::Truth { .. } => "truth",
            Request::Expertise { .. } => "expertise",
            Request::Metrics => "metrics",
            #[allow(unreachable_patterns)]
            _ => "unknown",
        }
    }
}
