//! Dependency-free extraction of the `eta2-net` front door, for hosts where
//! the full workspace cannot be built offline (no registry access).
//!
//! Mirrors, byte-for-byte at the wire level:
//!   * the framed binary protocol from `crates/net/src/proto.rs` — magic
//!     `ETA2`, version, request id, length, CRC32 over `len || payload`
//!     (the `eta2-wal` polynomial and table), tags 0x01/0x02/0x04 and
//!     0x81/0x82/0x84/0x87/0x88;
//!   * the admission rule from `crates/net/src/server.rs` — a submit whose
//!     reports would push `queue_depth` past `queue_capacity` is refused
//!     with `Overloaded { retry_after_ms }`, never queued unboundedly;
//!   * the load-generator structure from `crates/bench/src/loadgen.rs` —
//!     worker threads sharing global request/submit counters, Zipf-skewed
//!     task picks, user ids striped `(s * batch + j) % clients` so every
//!     simulated client is covered, shed excluded from the ingest
//!     distribution, and the same `round((n-1) * q)` percentile rule.
//!
//! The engine behind the socket is a running-mean/variance truth table (a
//! stand-in for the full ETA pipeline): frame cost, syscall cost and the
//! shed path are what this harness measures, not estimator quality, which
//! `perf_extract.rs` and `serve_extract.rs` already cover.
//!
//! Build and run:
//!   rustc -O --edition 2021 crates/net/standalone/net_extract.rs -o /tmp/net_extract
//!   /tmp/net_extract --out BENCH_serve.json            # full scale, ~1e5 clients
//!   /tmp/net_extract --quick                           # smoke (1e4 clients)
//!
//! Output is the committed `BENCH_serve.json` document: `meta` with
//! provenance, a `loopback_load` section and a forced-`overload` section,
//! both shaped like `eta2_bench::loadgen::LoadReport`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// CRC32 (mirror of crates/wal/src/lib.rs)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Wire protocol (mirror of crates/net/src/proto.rs, load-path subset)
// ---------------------------------------------------------------------------

const MAGIC: [u8; 4] = *b"ETA2";
const PROTOCOL_VERSION: u32 = 1;
const HEADER_BYTES: usize = 24;
const MAX_FRAME_BYTES: u32 = 1 << 24;

const TAG_REGISTER: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_TRUTH: u8 = 0x04;
const TAG_REGISTERED: u8 = 0x81;
const TAG_SUBMITTED: u8 = 0x82;
const TAG_TRUTH_IS: u8 = 0x84;
const TAG_ERROR: u8 = 0x87;
const TAG_OVERLOADED: u8 = 0x88;

#[derive(Debug, Clone, PartialEq)]
enum Msg {
    Register { specs: Vec<(u32, f64, f64)> },
    Submit { reports: Vec<(u32, u32, f64)> },
    Truth { task: u32 },
    Registered { ids: Vec<u32> },
    Submitted { accepted: u64, flushes: u64 },
    TruthIs { estimate: Option<(f64, f64)> },
    Error { code: u16 },
    Overloaded { retry_after_ms: u64 },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn encode_payload(msg: &Msg) -> Vec<u8> {
    let mut p = Vec::new();
    match msg {
        Msg::Register { specs } => {
            p.push(TAG_REGISTER);
            put_u32(&mut p, specs.len() as u32);
            for &(domain, time, cost) in specs {
                put_u32(&mut p, domain);
                put_f64(&mut p, time);
                put_f64(&mut p, cost);
            }
        }
        Msg::Submit { reports } => {
            p.push(TAG_SUBMIT);
            put_u32(&mut p, reports.len() as u32);
            for &(user, task, value) in reports {
                put_u32(&mut p, user);
                put_u32(&mut p, task);
                put_f64(&mut p, value);
            }
        }
        Msg::Truth { task } => {
            p.push(TAG_TRUTH);
            put_u32(&mut p, *task);
        }
        Msg::Registered { ids } => {
            p.push(TAG_REGISTERED);
            put_u32(&mut p, ids.len() as u32);
            for &id in ids {
                put_u32(&mut p, id);
            }
        }
        Msg::Submitted { accepted, flushes } => {
            p.push(TAG_SUBMITTED);
            put_u64(&mut p, *accepted);
            put_u64(&mut p, 0); // quarantined
            put_u64(&mut p, 0); // unknown_task
            put_u64(&mut p, *flushes);
        }
        Msg::TruthIs { estimate } => {
            p.push(TAG_TRUTH_IS);
            match estimate {
                None => p.push(0),
                Some((mu, sigma)) => {
                    p.push(1);
                    put_f64(&mut p, *mu);
                    put_f64(&mut p, *sigma);
                    p.push(0); // fallback flag
                }
            }
        }
        Msg::Error { code } => {
            p.push(TAG_ERROR);
            p.extend_from_slice(&code.to_le_bytes());
            put_u32(&mut p, 0); // empty message string
        }
        Msg::Overloaded { retry_after_ms } => {
            p.push(TAG_OVERLOADED);
            put_u64(&mut p, *retry_after_ms);
        }
    }
    p
}

fn encode_frame(req_id: u64, msg: &Msg) -> Vec<u8> {
    let payload = encode_payload(msg);
    let len = payload.len() as u32;
    let crc = crc32(&[&len.to_le_bytes(), &payload]);
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.at + n > self.buf.len() {
            return Err(format!("truncated payload at {}", self.at));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.at;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(format!("count {n} exceeds remaining {remaining} bytes"));
        }
        Ok(n)
    }
}

fn decode_payload(payload: &[u8]) -> Result<Msg, String> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let tag = c.take(1)?[0];
    let msg = match tag {
        TAG_REGISTER => {
            let n = c.count(20)?;
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                specs.push((c.u32()?, c.f64()?, c.f64()?));
            }
            Msg::Register { specs }
        }
        TAG_SUBMIT => {
            let n = c.count(16)?;
            let mut reports = Vec::with_capacity(n);
            for _ in 0..n {
                reports.push((c.u32()?, c.u32()?, c.f64()?));
            }
            Msg::Submit { reports }
        }
        TAG_TRUTH => Msg::Truth { task: c.u32()? },
        TAG_REGISTERED => {
            let n = c.count(4)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(c.u32()?);
            }
            Msg::Registered { ids }
        }
        TAG_SUBMITTED => {
            let accepted = c.u64()?;
            let _quarantined = c.u64()?;
            let _unknown = c.u64()?;
            let flushes = c.u64()?;
            Msg::Submitted { accepted, flushes }
        }
        TAG_TRUTH_IS => {
            let has = c.take(1)?[0];
            if has == 0 {
                Msg::TruthIs { estimate: None }
            } else {
                let mu = c.f64()?;
                let sigma = c.f64()?;
                let _fallback = c.take(1)?[0];
                Msg::TruthIs {
                    estimate: Some((mu, sigma)),
                }
            }
        }
        TAG_ERROR => {
            let code = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
            let n = c.count(1)?;
            c.take(n)?;
            Msg::Error { code }
        }
        TAG_OVERLOADED => Msg::Overloaded {
            retry_after_ms: c.u64()?,
        },
        other => return Err(format!("unknown tag 0x{other:02x}")),
    };
    if c.at != payload.len() {
        return Err(format!("{} trailing payload bytes", payload.len() - c.at));
    }
    Ok(msg)
}

/// Reads one complete frame off the stream, validating magic, version,
/// length bound and CRC exactly as `eta2_net::decode_message` does.
fn read_frame(stream: &mut TcpStream) -> Result<(u64, Msg), String> {
    let mut header = [0u8; HEADER_BYTES];
    stream
        .read_exact(&mut header)
        .map_err(|e| format!("header read: {e}"))?;
    if header[0..4] != MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let req_id = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(header[16..20].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(format!("oversized frame: {len}"));
    }
    let crc = u32::from_le_bytes(header[20..24].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    stream
        .read_exact(&mut payload)
        .map_err(|e| format!("payload read: {e}"))?;
    let found = crc32(&[&len.to_le_bytes(), &payload]);
    if found != crc {
        return Err(format!("crc mismatch: expected {crc:08x} found {found:08x}"));
    }
    Ok((req_id, decode_payload(&payload)?))
}

// ---------------------------------------------------------------------------
// Server: admission-controlled engine behind a TCP accept loop
// ---------------------------------------------------------------------------

struct Engine {
    queue_capacity: usize,
    batch_capacity: usize,
    retry_after_ms: u64,
    depth: AtomicUsize,
    pending: Mutex<Vec<(u32, u32, f64)>>,
    // task -> (count, mean, M2): Welford accumulators folded in at flush.
    stats: Mutex<HashMap<u32, (u64, f64, f64)>>,
    truths: RwLock<HashMap<u32, (f64, f64)>>,
    flushes: AtomicU64,
    next_task: AtomicUsize,
}

impl Engine {
    fn new(queue_capacity: usize, batch_capacity: usize) -> Self {
        Engine {
            queue_capacity,
            batch_capacity,
            retry_after_ms: 50,
            depth: AtomicUsize::new(0),
            pending: Mutex::new(Vec::new()),
            stats: Mutex::new(HashMap::new()),
            truths: RwLock::new(HashMap::new()),
            flushes: AtomicU64::new(0),
            next_task: AtomicUsize::new(0),
        }
    }

    fn register(&self, n: usize) -> Vec<u32> {
        let base = self.next_task.fetch_add(n, Ordering::SeqCst);
        (base..base + n).map(|i| i as u32).collect()
    }

    /// The shed rule from `eta2-net`'s `EngineService`: refuse the whole
    /// batch when it would push queue depth past the bound.
    fn submit(&self, reports: Vec<(u32, u32, f64)>) -> Msg {
        let n = reports.len();
        if self.depth.load(Ordering::Acquire) + n > self.queue_capacity {
            return Msg::Overloaded {
                retry_after_ms: self.retry_after_ms,
            };
        }
        let should_flush = {
            let mut pending = self.pending.lock().unwrap();
            pending.extend_from_slice(&reports);
            self.depth.store(pending.len(), Ordering::Release);
            pending.len() >= self.batch_capacity
        };
        if should_flush {
            self.flush();
        }
        Msg::Submitted {
            accepted: n as u64,
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }

    fn flush(&self) {
        let drained: Vec<(u32, u32, f64)> = {
            let mut pending = self.pending.lock().unwrap();
            let d = std::mem::take(&mut *pending);
            self.depth.store(0, Ordering::Release);
            d
        };
        if drained.is_empty() {
            return;
        }
        let mut stats = self.stats.lock().unwrap();
        for (_user, task, value) in drained {
            let entry = stats.entry(task).or_insert((0, 0.0, 0.0));
            entry.0 += 1;
            let delta = value - entry.1;
            entry.1 += delta / entry.0 as f64;
            entry.2 += delta * (value - entry.1);
        }
        let mut truths = self.truths.write().unwrap();
        for (&task, &(n, mean, m2)) in stats.iter() {
            let sigma = if n > 1 { (m2 / n as f64).sqrt() } else { 0.0 };
            truths.insert(task, (mean, sigma));
        }
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn truth(&self, task: u32) -> Msg {
        Msg::TruthIs {
            estimate: self.truths.read().unwrap().get(&task).copied(),
        }
    }
}

struct Server {
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

fn handle_conn(engine: Arc<Engine>, mut stream: TcpStream) {
    loop {
        let (req_id, msg) = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return, // peer closed or stream corrupt: drop
        };
        let reply = match msg {
            Msg::Register { specs } => Msg::Registered {
                ids: engine.register(specs.len()),
            },
            Msg::Submit { reports } => engine.submit(reports),
            Msg::Truth { task } => engine.truth(task),
            _ => Msg::Error { code: 3 },
        };
        let frame = encode_frame(req_id, &reply);
        if stream.write_all(&frame).is_err() {
            return;
        }
    }
}

fn serve(engine: Arc<Engine>, tick_ms: u64) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let running = Arc::new(AtomicBool::new(true));

    let ticker = if tick_ms > 0 {
        let engine = Arc::clone(&engine);
        let running = Arc::clone(&running);
        Some(std::thread::spawn(move || {
            while running.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(tick_ms));
                engine.flush();
            }
        }))
    } else {
        None
    };

    let accept = {
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if !running.load(Ordering::Acquire) {
                    return;
                }
                if let Ok(stream) = stream {
                    stream.set_nodelay(true).ok();
                    let engine = Arc::clone(&engine);
                    std::thread::spawn(move || handle_conn(engine, stream));
                }
            }
        })
    };

    Server {
        addr,
        running,
        accept: Some(accept),
        ticker: Some(ticker.unwrap_or_else(|| std::thread::spawn(|| {}))),
    }
}

impl Server {
    fn shutdown(&mut self) {
        self.running.store(false, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Client { stream, next_id: 1 }
    }

    fn call(&mut self, msg: &Msg) -> Msg {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_frame(id, msg);
        self.stream.write_all(&frame).expect("write frame");
        let (rid, reply) = read_frame(&mut self.stream).expect("read reply");
        assert_eq!(rid, id, "reply correlates to the request");
        reply
    }
}

// ---------------------------------------------------------------------------
// Load generator (mirror of crates/bench/src/loadgen.rs)
// ---------------------------------------------------------------------------

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn zipf_pick(cdf: &[f64], u01: f64) -> usize {
    cdf.partition_point(|&c| c < u01).min(cdf.len() - 1)
}

struct LoadCfg {
    clients: usize,
    requests: usize,
    connections: usize,
    batch: usize,
    tasks: usize,
    read_every: usize,
    zipf_s: f64,
    queue_capacity: usize,
    tick_ms: u64,
    batch_capacity: usize,
    seed: u64,
}

#[derive(Default)]
struct LoadReport {
    clients: usize,
    clients_covered: usize,
    requests: usize,
    connections: usize,
    batch: usize,
    zipf_s: f64,
    elapsed_secs: f64,
    throughput_rps: f64,
    submits_ok: u64,
    reports_accepted: u64,
    shed: u64,
    reads_ok: u64,
    errors: u64,
    ingest_us: Option<(u64, u64, u64, u64, u64)>, // (count, p50, p99, p999, max)
    read_us: Option<(u64, u64, u64, u64, u64)>,
}

fn summarize(mut lat_us: Vec<u64>) -> Option<(u64, u64, u64, u64, u64)> {
    if lat_us.is_empty() {
        return None;
    }
    lat_us.sort_unstable();
    let n = lat_us.len();
    let pct = |q: f64| lat_us[((n - 1) as f64 * q).round() as usize];
    Some((n as u64, pct(0.50), pct(0.99), pct(0.999), lat_us[n - 1]))
}

fn run_load(cfg: &LoadCfg) -> LoadReport {
    let engine = Arc::new(Engine::new(cfg.queue_capacity, cfg.batch_capacity));
    let mut server = serve(Arc::clone(&engine), cfg.tick_ms);
    let addr = server.addr;

    // Register the task pool over the wire, like the real load generator.
    let mut setup = Client::connect(addr);
    let specs: Vec<(u32, f64, f64)> = (0..cfg.tasks).map(|j| (j as u32 % 16, 1.0, 1.0)).collect();
    let ids = match setup.call(&Msg::Register { specs }) {
        Msg::Registered { ids } => ids,
        other => panic!("register answered {other:?}"),
    };
    assert_eq!(ids.len(), cfg.tasks);
    drop(setup);

    let cdf = Arc::new(zipf_cdf(cfg.tasks, cfg.zipf_s));
    let next_request = Arc::new(AtomicU64::new(0));
    let next_submit = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let mut handles = Vec::with_capacity(cfg.connections);
    for w in 0..cfg.connections {
        let cdf = Arc::clone(&cdf);
        let next_request = Arc::clone(&next_request);
        let next_submit = Arc::clone(&next_submit);
        let (clients, requests, batch, read_every, seed) =
            (cfg.clients, cfg.requests, cfg.batch, cfg.read_every, cfg.seed);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            let mut rng = mix(seed ^ (w as u64).wrapping_mul(0xA5A5_5A5A));
            let mut ingest_ns: Vec<u64> = Vec::new();
            let mut read_ns: Vec<u64> = Vec::new();
            let (mut submits_ok, mut reports_accepted) = (0u64, 0u64);
            let (mut shed, mut reads_ok, mut errors) = (0u64, 0u64, 0u64);
            loop {
                let k = next_request.fetch_add(1, Ordering::SeqCst);
                if k >= requests as u64 {
                    break;
                }
                let is_read = read_every > 0 && k % read_every as u64 == 0;
                if is_read {
                    rng = mix(rng);
                    let u01 = (rng >> 11) as f64 / (1u64 << 53) as f64;
                    let task = zipf_pick(&cdf, u01) as u32;
                    let t0 = Instant::now();
                    match client.call(&Msg::Truth { task }) {
                        Msg::TruthIs { .. } => {
                            read_ns.push(t0.elapsed().as_nanos() as u64);
                            reads_ok += 1;
                        }
                        _ => errors += 1,
                    }
                } else {
                    let s = next_submit.fetch_add(1, Ordering::SeqCst);
                    let mut reports = Vec::with_capacity(batch);
                    for j in 0..batch {
                        rng = mix(rng);
                        let u01 = (rng >> 11) as f64 / (1u64 << 53) as f64;
                        let task = zipf_pick(&cdf, u01) as u32;
                        let user = ((s as usize * batch + j) % clients) as u32;
                        let value = 20.0 + (mix(rng ^ 0xF00D) % 1000) as f64 / 100.0;
                        reports.push((user, task, value));
                    }
                    let t0 = Instant::now();
                    match client.call(&Msg::Submit { reports }) {
                        Msg::Submitted { accepted, .. } => {
                            ingest_ns.push(t0.elapsed().as_nanos() as u64);
                            submits_ok += 1;
                            reports_accepted += accepted;
                        }
                        Msg::Overloaded { .. } => shed += 1,
                        _ => errors += 1,
                    }
                }
            }
            (
                ingest_ns,
                read_ns,
                submits_ok,
                reports_accepted,
                shed,
                reads_ok,
                errors,
            )
        }));
    }

    let mut ingest_ns: Vec<u64> = Vec::new();
    let mut read_ns: Vec<u64> = Vec::new();
    let mut report = LoadReport {
        clients: cfg.clients,
        requests: cfg.requests,
        connections: cfg.connections,
        batch: cfg.batch,
        zipf_s: cfg.zipf_s,
        ..Default::default()
    };
    for h in handles {
        let (i_ns, r_ns, s_ok, r_acc, shed, reads, errs) = h.join().expect("worker");
        ingest_ns.extend(i_ns);
        read_ns.extend(r_ns);
        report.submits_ok += s_ok;
        report.reports_accepted += r_acc;
        report.shed += shed;
        report.reads_ok += reads;
        report.errors += errs;
    }
    report.elapsed_secs = started.elapsed().as_secs_f64();
    report.throughput_rps = cfg.requests as f64 / report.elapsed_secs.max(1e-9);
    let total_submits = next_submit.load(Ordering::SeqCst) as usize;
    report.clients_covered = (total_submits * cfg.batch).min(cfg.clients);
    report.ingest_us = summarize(ingest_ns.iter().map(|&ns| ns / 1_000).collect());
    report.read_us = summarize(read_ns.iter().map(|&ns| ns / 1_000).collect());
    server.shutdown();
    report
}

// ---------------------------------------------------------------------------
// Parity self-check: the codec behaves like the workspace codec's tests
// ---------------------------------------------------------------------------

fn parity_selfcheck() {
    // Round trip every frame type this extraction speaks.
    let msgs = vec![
        Msg::Register {
            specs: vec![(3, 1.5, 2.0)],
        },
        Msg::Submit {
            reports: vec![(7, 9, 21.5), (8, 10, -3.25)],
        },
        Msg::Truth { task: 42 },
        Msg::Registered { ids: vec![0, 1, 2] },
        Msg::Submitted {
            accepted: 16,
            flushes: 2,
        },
        Msg::TruthIs {
            estimate: Some((21.5, 0.25)),
        },
        Msg::TruthIs { estimate: None },
        Msg::Error { code: 3 },
        Msg::Overloaded { retry_after_ms: 50 },
    ];
    for msg in &msgs {
        let frame = encode_frame(99, msg);
        assert_eq!(frame.len(), HEADER_BYTES + encode_payload(msg).len());
        let payload = &frame[HEADER_BYTES..];
        let len = u32::from_le_bytes(frame[16..20].try_into().unwrap());
        let crc = u32::from_le_bytes(frame[20..24].try_into().unwrap());
        assert_eq!(crc, crc32(&[&len.to_le_bytes(), payload]));
        assert_eq!(&decode_payload(payload).expect("round trip"), msg);
    }
    // Hostile interior count must be rejected before allocation.
    let mut hostile = vec![TAG_SUBMIT];
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&[0u8; 8]);
    assert!(decode_payload(&hostile).is_err());
    // Trailing payload bytes are a framing bug.
    let mut trailing = encode_payload(&Msg::Truth { task: 1 });
    trailing.extend_from_slice(&[0xAA, 0xBB]);
    assert!(decode_payload(&trailing).is_err());
    eprintln!("parity self-check ok: round trips + hostile-count + trailing-bytes");
}

// ---------------------------------------------------------------------------
// Report emission
// ---------------------------------------------------------------------------

fn json_latency(dist: &Option<(u64, u64, u64, u64, u64)>) -> String {
    match dist {
        None => "null".into(),
        Some((count, p50, p99, p999, max)) => format!(
            "{{\n        \"count\": {count},\n        \"p50_us\": {p50},\n        \
             \"p99_us\": {p99},\n        \"p999_us\": {p999},\n        \"max_us\": {max}\n      }}"
        ),
    }
}

fn json_report(r: &LoadReport) -> String {
    format!(
        "{{\n      \"target\": \"self-hosted\",\n      \"clients\": {},\n      \
         \"clients_covered\": {},\n      \"requests\": {},\n      \"connections\": {},\n      \
         \"batch\": {},\n      \"zipf_s\": {},\n      \"rate\": null,\n      \
         \"elapsed_secs\": {:.3},\n      \"throughput_rps\": {:.1},\n      \
         \"submits_ok\": {},\n      \"reports_accepted\": {},\n      \"shed\": {},\n      \
         \"reads_ok\": {},\n      \"errors\": {},\n      \"ingest_latency\": {},\n      \
         \"read_latency\": {}\n    }}",
        r.clients,
        r.clients_covered,
        r.requests,
        r.connections,
        r.batch,
        r.zipf_s,
        r.elapsed_secs,
        r.throughput_rps,
        r.submits_ok,
        r.reports_accepted,
        r.shed,
        r.reads_ok,
        r.errors,
        json_latency(&r.ingest_us),
        json_latency(&r.read_us),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    parity_selfcheck();

    let (clients, requests) = if quick {
        (10_000, 20_000)
    } else {
        (100_000, 200_000)
    };
    eprintln!("loopback load: {clients} clients, {requests} requests ...");
    let load = run_load(&LoadCfg {
        clients,
        requests,
        connections: 8,
        batch: 8,
        tasks: 512,
        read_every: 10,
        zipf_s: 1.1,
        queue_capacity: 1 << 16,
        tick_ms: 25,
        batch_capacity: 4096,
        seed: 42,
    });
    assert_eq!(load.errors, 0, "load run must be error-free");
    assert_eq!(load.clients_covered, clients, "every client must submit");
    eprintln!(
        "  {:.0} req/s over {:.2} s; {} submits, {} reads, {} shed",
        load.throughput_rps, load.elapsed_secs, load.submits_ok, load.reads_ok, load.shed
    );

    eprintln!("forced overload: queue_capacity 32, no ticker ...");
    let overload = run_load(&LoadCfg {
        clients: 256,
        requests: 2_000,
        connections: 4,
        batch: 8,
        tasks: 64,
        read_every: 0,
        zipf_s: 1.1,
        queue_capacity: 32,
        tick_ms: 0,
        batch_capacity: 4096,
        seed: 7,
    });
    assert!(overload.shed > 0, "bounded queue must shed under overload");
    assert_eq!(overload.errors, 0, "shed must be typed, not an error");
    eprintln!(
        "  {} submits shed, {} served before the bound filled",
        overload.shed, overload.submits_ok
    );

    let doc = format!(
        "{{\n  \"meta\": {{\n    \"suite\": \"net front door loopback load\",\n    \
         \"date\": \"2026-08-08\",\n    \"provenance\": \"Measured with the dependency-free \
         extraction at crates/net/standalone/net_extract.rs (rustc 1.95.0, -O) on a single-core \
         x86_64 Linux container where the full workspace cannot be built offline. The extraction \
         speaks the same wire format as crates/net/src/proto.rs (magic/version/req-id/len/CRC32 \
         framing, identical payload tags and layouts, same CRC table as eta2-wal) and applies \
         the same whole-batch admission rule as crates/net/src/server.rs; the load generator \
         mirrors crates/bench/src/loadgen.rs (shared request/submit counters, Zipf task skew, \
         striped user ids covering every simulated client, shed excluded from the ingest \
         distribution, round((n-1)*q) percentiles). The engine behind the socket is a \
         running-mean truth table, so these numbers price the protocol, sockets and admission \
         control, not estimator quality. Single-core timings fluctuate by roughly +/-10 percent \
         between runs, and client and server threads share the one core, so per-request \
         latencies read high relative to a multi-core host.\",\n    \
         \"regenerate\": \"cargo run --release -p eta2-cli -- load-gen --clients 100000 \
         --requests 200000 --out BENCH_serve.json  (full workspace); or: rustc -O --edition \
         2021 crates/net/standalone/net_extract.rs -o /tmp/net_extract && /tmp/net_extract \
         --out BENCH_serve.json  (extraction)\",\n    \"host_cores\": {},\n    \
         \"parallel_note\": \"The {} load-generator connections and the per-connection server \
         threads interleave on this host's core(s); throughput scales with real parallelism \
         elsewhere.\"\n  }},\n  \"loopback_load\": {},\n  \"overload\": {}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        load.connections,
        json_report(&load),
        json_report(&overload),
    );

    match out {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{doc}"),
    }
}
