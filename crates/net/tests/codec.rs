//! Codec properties: every frame type round-trips bit-exactly through
//! encode/decode, and every malformed-frame class (torn, oversized,
//! CRC-corrupted, wrong-version, unknown-tag, trailing-bytes) is rejected
//! with a typed [`DecodeError`] — never a panic, never an allocation
//! sized by attacker-controlled lengths.

use eta2_core::model::{DomainId, Observation, TaskId, UserId, UserProfile};
use eta2_core::truth::TruthEstimate;
use eta2_net::{
    decode_message, encode_message, DecodeError, Message, Request, Response, HEADER_BYTES,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use eta2_serve::TaskSpec;
use proptest::prelude::*;

fn arb_task_spec() -> impl Strategy<Value = TaskSpec> {
    (0u32..64, 0.01f64..100.0, 0.01f64..100.0)
        .prop_map(|(d, t, c)| TaskSpec::new(DomainId(d), t, c))
}

fn arb_observation() -> impl Strategy<Value = Observation> {
    (0u32..512, 0u32..512, -1e6f64..1e6).prop_map(|(u, t, v)| Observation {
        user: UserId(u),
        task: TaskId(t),
        value: v,
    })
}

fn arb_profile() -> impl Strategy<Value = UserProfile> {
    (0u32..512, 0.0f64..100.0).prop_map(|(u, c)| UserProfile {
        id: UserId(u),
        capacity: c,
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        prop::collection::vec(arb_task_spec(), 0..8).prop_map(|specs| Request::Register { specs }),
        prop::collection::vec(arb_observation(), 0..16)
            .prop_map(|reports| Request::Submit { reports }),
        (
            prop::collection::vec((0u32..512).prop_map(TaskId), 0..8),
            prop::collection::vec(arb_profile(), 0..8),
        )
            .prop_map(|(tasks, users)| Request::Allocate { tasks, users }),
        (0u32..512).prop_map(|t| Request::Truth { task: TaskId(t) }),
        (0u32..512, 0u32..64).prop_map(|(u, d)| Request::Expertise {
            user: UserId(u),
            domain: DomainId(d),
        }),
        Just(Request::Metrics),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        prop::collection::vec((0u32..512).prop_map(TaskId), 0..8)
            .prop_map(|ids| Response::Registered { ids }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, q, u, f)| {
            Response::Submitted {
                accepted: a,
                quarantined: q,
                unknown_task: u,
                flushes: f,
            }
        }),
        prop::collection::vec(
            (
                (0u32..512).prop_map(TaskId),
                prop::collection::vec((0u32..512).prop_map(UserId), 0..5),
            ),
            0..6,
        )
        .prop_map(|assignments| Response::Allocated { assignments }),
        prop_oneof![
            Just(None),
            (-1e6f64..1e6, 0.0f64..100.0, any::<bool>()).prop_map(|(mu, sigma, fallback)| Some(
                TruthEstimate {
                    mu,
                    sigma,
                    fallback
                }
            )),
        ]
        .prop_map(|estimate| Response::Truth { estimate }),
        (0.0f64..1.0).prop_map(|value| Response::Expertise { value }),
        "[ -~]{0,64}".prop_map(|json| Response::Metrics { json }),
        (any::<u16>(), "[ -~]{0,48}").prop_map(|(code, message)| Response::Error { code, message }),
        any::<u64>().prop_map(|retry_after_ms| Response::Overloaded { retry_after_ms }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_request().prop_map(Message::Request),
        arb_response().prop_map(Message::Response),
    ]
}

proptest! {
    #[test]
    fn every_frame_type_round_trips(req_id in any::<u64>(), message in arb_message()) {
        let frame = encode_message(req_id, &message);
        let (rid, decoded, consumed) = decode_message(&frame).expect("valid frame decodes");
        prop_assert_eq!(rid, req_id);
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded, message);
    }

    #[test]
    fn trailing_stream_bytes_do_not_disturb_the_frame(
        message in arb_message(),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        // A pipelined stream holds the next frame's bytes right behind
        // this one; decode must stop exactly at the frame boundary.
        let frame = encode_message(9, &message);
        let boundary = frame.len();
        let mut stream = frame;
        stream.extend_from_slice(&garbage);
        let (_, decoded, consumed) = decode_message(&stream).expect("framed prefix decodes");
        prop_assert_eq!(consumed, boundary);
        prop_assert_eq!(decoded, message);
    }

    #[test]
    fn torn_frames_report_truncated(
        message in arb_message(),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_message(3, &message);
        let cut = (((frame.len() - 1) as f64) * cut_frac) as usize;
        match decode_message(&frame[..cut]) {
            Err(DecodeError::Truncated { needed, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(needed > have, "needed {} <= have {}", needed, have);
            }
            other => prop_assert!(false, "torn frame at {cut} bytes decoded: {other:?}"),
        }
    }

    #[test]
    fn single_bit_flips_never_panic(
        message in arb_message(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        // Any one-bit corruption either still decodes (a flip inside the
        // req_id, say) or maps to a typed error; headers and payloads are
        // both covered because the flip position spans the whole frame.
        let mut frame = encode_message(17, &message);
        let at = (((frame.len() - 1) as f64) * byte_frac) as usize;
        frame[at] ^= 1 << bit;
        let _ = decode_message(&frame);
    }

    #[test]
    fn payload_corruption_is_caught_by_the_crc(
        message in arb_message(),
        delta in 1u8..=255,
        pos_frac in 0.0f64..1.0,
    ) {
        let frame = encode_message(5, &message);
        if frame.len() == HEADER_BYTES {
            return Ok(()); // no payload bytes to corrupt
        }
        let mut corrupt = frame;
        let span = corrupt.len() - HEADER_BYTES;
        let at = HEADER_BYTES + ((((span - 1) as f64) * pos_frac) as usize);
        corrupt[at] ^= delta;
        match decode_message(&corrupt) {
            Err(DecodeError::BadCrc { expected, found }) => {
                prop_assert_ne!(expected, found);
            }
            other => prop_assert!(false, "corrupted payload not caught: {other:?}"),
        }
    }

    #[test]
    fn unknown_versions_are_rejected_but_header_stays_readable(
        message in arb_message(),
        version in (0u32..u32::MAX).prop_filter("must differ", |v| *v != PROTOCOL_VERSION),
    ) {
        let mut frame = encode_message(11, &message);
        frame[4..8].copy_from_slice(&version.to_le_bytes());
        // The header (and so the frame boundary) must stay parseable for
        // any version, or a server could never skip a newer client's
        // frame and answer with a typed error.
        let header = eta2_net::decode_header(&frame).expect("header readable at any version");
        prop_assert_eq!(header.version, version);
        prop_assert_eq!(header.len as usize, frame.len() - HEADER_BYTES);
        match decode_message(&frame) {
            Err(DecodeError::UnsupportedVersion { version: v }) => prop_assert_eq!(v, version),
            other => prop_assert!(false, "wrong version accepted: {other:?}"),
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    for claim in [MAX_FRAME_BYTES + 1, u32::MAX / 2, u32::MAX - 7, u32::MAX] {
        let mut frame = encode_message(7, &Message::Request(Request::Metrics));
        frame[16..20].copy_from_slice(&claim.to_le_bytes());
        match decode_message(&frame) {
            Err(DecodeError::Oversized { len }) => assert_eq!(len, claim),
            other => panic!("length prefix {claim} accepted: {other:?}"),
        }
    }
}

/// Builds a raw frame around an arbitrary payload, with a valid CRC, so
/// tests can exercise payload-level rejections in isolation.
fn raw_frame(req_id: u64, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let crc = eta2_wal::crc32(&[&len.to_le_bytes(), payload]);
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(b"ETA2");
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&req_id.to_le_bytes());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

#[test]
fn interior_count_cannot_force_oversized_allocation() {
    // A Submit frame whose element count claims ~4 billion observations
    // in a 13-byte payload: the decoder must reject on the
    // count/remaining mismatch instead of reserving count * 16 bytes.
    let mut payload = vec![0x02u8]; // TAG_SUBMIT
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // count
    payload.extend_from_slice(&[0u8; 8]); // far too few bytes
    let frame = raw_frame(1, &payload);
    match decode_message(&frame) {
        Err(DecodeError::Truncated { needed, have }) => {
            assert!(needed > have, "count guard must flag the shortfall");
        }
        other => panic!("hostile element count accepted: {other:?}"),
    }
}

#[test]
fn bad_magic_is_typed() {
    let mut frame = encode_message(1, &Message::Request(Request::Metrics));
    frame[0..4].copy_from_slice(b"HTTP");
    match decode_message(&frame) {
        Err(DecodeError::BadMagic { found }) => assert_eq!(&found, b"HTTP"),
        other => panic!("bad magic accepted: {other:?}"),
    }
}

#[test]
fn unknown_tag_is_typed() {
    let frame = raw_frame(2, &[0x7Fu8]); // tag no build knows
    match decode_message(&frame) {
        Err(DecodeError::UnknownTag { tag }) => assert_eq!(tag, 0x7F),
        other => panic!("unknown tag accepted: {other:?}"),
    }
}

#[test]
fn intra_payload_trailing_bytes_are_typed() {
    // Extra bytes *inside* the CRC-covered payload (after a complete
    // message body) are a framing bug, not pipelining; they must be
    // flagged even though the CRC matches.
    let mut payload = vec![0x06u8]; // TAG_METRICS, a complete body
    payload.extend_from_slice(&[0xAA, 0xBB, 0xCC]);
    let frame = raw_frame(3, &payload);
    match decode_message(&frame) {
        Err(DecodeError::TrailingBytes { extra }) => assert_eq!(extra, 3),
        other => panic!("intra-payload trailing bytes accepted: {other:?}"),
    }
}

#[test]
fn seeded_fuzz_sweep_survives() {
    // The same sweep `eta2-cli check --net-fuzz` runs, kept in the test
    // suite so CI exercises every mutation class on every build.
    let report = eta2_net::fuzz::fuzz_decoder(0xE7A2, 25_000);
    assert_eq!(report.iterations, 25_000);
    assert_eq!(report.decoded_ok + report.rejected, report.iterations);
    assert!(
        report.rejected > report.iterations / 2,
        "most mutants should be rejected: {report:?}"
    );
}
