//! End-to-end loopback tests: a real `NetServer` on an ephemeral port
//! driven through `NetClient`, raw sockets (version negotiation) and the
//! HTTP/1.1 fallback.

use eta2_core::model::{DomainId, Observation, TaskId, UserId};
use eta2_net::{
    decode_message, encode_message, Message, NetClient, NetConfig, NetServer, Request, Response,
    ERR_BAD_REQUEST, ERR_UNSUPPORTED_VERSION, HEADER_BYTES,
};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn boot(queue_capacity: usize, tick_ms: u64) -> NetServer {
    let mut cfg = ServeConfig::default();
    cfg.n_users = 8;
    cfg.n_shards = 1;
    cfg.batch_capacity = 1; // flush inline on every submit
    cfg.threads = 1;
    let engine = Arc::new(ServeEngine::new(cfg));
    let mut net = NetConfig::default();
    net.queue_capacity = queue_capacity;
    net.tick_ms = tick_ms;
    NetServer::serve(engine, "127.0.0.1:0", net).expect("bind loopback")
}

fn read_one_frame(stream: &mut TcpStream) -> (u64, Message) {
    let mut header = [0u8; HEADER_BYTES];
    stream.read_exact(&mut header).expect("frame header");
    let parsed = eta2_net::decode_header(&header).expect("header parses");
    let mut payload = vec![0u8; parsed.len as usize];
    stream.read_exact(&mut payload).expect("frame payload");
    let mut frame = header.to_vec();
    frame.extend_from_slice(&payload);
    let (rid, message, consumed) = decode_message(&frame).expect("frame decodes");
    assert_eq!(consumed, frame.len());
    (rid, message)
}

#[test]
fn register_submit_read_over_the_wire() {
    let server = boot(1 << 16, 0);
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let specs: Vec<TaskSpec> = (0..4)
        .map(|i| TaskSpec::new(DomainId(i % 2), 1.0, 1.0))
        .collect();
    let ids = match client.register(specs).expect("register") {
        Response::Registered { ids } => ids,
        other => panic!("register answered {other:?}"),
    };
    assert_eq!(ids.len(), 4);

    let reports: Vec<Observation> = (0..8)
        .map(|i| Observation {
            user: UserId(i % 8),
            task: ids[(i % 4) as usize],
            value: 20.0 + i as f64,
        })
        .collect();
    match client.submit(reports).expect("submit") {
        Response::Submitted {
            accepted, flushes, ..
        } => {
            assert_eq!(accepted, 8);
            assert!(flushes > 0, "batch_capacity=1 must flush inline");
        }
        other => panic!("submit answered {other:?}"),
    }

    match client.truth(ids[0]).expect("truth") {
        Response::Truth { estimate } => {
            let est = estimate.expect("flushed task has a truth");
            assert!(est.mu.is_finite());
        }
        other => panic!("truth answered {other:?}"),
    }

    // Reads of unknown tasks answer None, not an error.
    match client.truth(TaskId(9999)).expect("truth miss") {
        Response::Truth { estimate } => assert!(estimate.is_none()),
        other => panic!("truth miss answered {other:?}"),
    }

    // Out-of-range expertise reads are a typed error, not a panic.
    match client
        .expertise(UserId(4242), DomainId(0))
        .expect("expertise")
    {
        Response::Error { code, .. } => assert_eq!(code, ERR_BAD_REQUEST),
        other => panic!("out-of-range expertise answered {other:?}"),
    }

    match client.metrics().expect("metrics") {
        Response::Metrics { json } => assert!(json.contains("schema")),
        other => panic!("metrics answered {other:?}"),
    }
    server.shutdown();
}

#[test]
fn overload_sheds_with_retry_after() {
    // queue_capacity 4 and no ticker: a submit carrying more reports
    // than the bound must shed at the admission boundary.
    let server = boot(4, 0);
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let ids = match client
        .register(vec![TaskSpec::new(DomainId(0), 1.0, 1.0)])
        .expect("register")
    {
        Response::Registered { ids } => ids,
        other => panic!("register answered {other:?}"),
    };
    let big: Vec<Observation> = (0..8)
        .map(|i| Observation {
            user: UserId(i),
            task: ids[0],
            value: 1.0 + i as f64,
        })
        .collect();
    match client.submit(big).expect("oversized submit") {
        Response::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("overload answered {other:?}"),
    }
    server.shutdown();
}

#[test]
fn wrong_version_gets_typed_error_and_connection_survives() {
    let server = boot(1 << 16, 0);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // A frame claiming protocol version 99: the server must skip it,
    // answer a typed error, and keep the connection usable.
    let mut frame = encode_message(7, &Message::Request(Request::Metrics));
    frame[4..8].copy_from_slice(&99u32.to_le_bytes());
    stream.write_all(&frame).expect("write bad-version frame");
    let (rid, message) = read_one_frame(&mut stream);
    assert_eq!(rid, 7);
    match message {
        Message::Response(Response::Error { code, .. }) => {
            assert_eq!(code, ERR_UNSUPPORTED_VERSION);
        }
        other => panic!("bad version answered {other:?}"),
    }

    // Same socket, correct version: still served.
    let good = encode_message(8, &Message::Request(Request::Metrics));
    stream.write_all(&good).expect("write good frame");
    let (rid, message) = read_one_frame(&mut stream);
    assert_eq!(rid, 8);
    assert!(matches!(
        message,
        Message::Response(Response::Metrics { .. })
    ));
    server.shutdown();
}

#[test]
fn http_fallback_serves_health_and_metrics() {
    let server = boot(1 << 16, 0);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 200"), "got: {body}");
    assert!(body.contains("ok"), "got: {body}");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 200"), "got: {body}");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /nope HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 404"), "got: {body}");
    server.shutdown();
}

#[test]
fn http_fallback_torn_body_is_a_400_not_a_hang() {
    // A client that declares a body, sends part of it and half-closes
    // must get a clean 400 — the server must notice the EOF instead of
    // waiting for bytes that will never arrive.
    let server = boot(1 << 16, 0);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(
            b"POST /submit HTTP/1.1\r\nHost: localhost\r\n\
              Content-Length: 100\r\nConnection: close\r\n\r\n[{\"user\"",
        )
        .expect("write torn request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 400"), "got: {body}");
    assert!(
        body.contains("body shorter than Content-Length"),
        "got: {body}"
    );
    server.shutdown();
}

#[test]
fn http_fallback_reassembles_a_trickled_body() {
    // The head in one write, then the body one byte at a time: every
    // byte lands in a separate read, so the body loop must reassemble
    // across read boundaries (including the head/body carry split).
    let server = boot(1 << 16, 0);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let body = br#"{"tasks":[],"users":[]}"#;
    let head = format!(
        "POST /allocate HTTP/1.1\r\nHost: localhost\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    for &b in body.iter() {
        stream.write_all(&[b]).expect("write body byte");
        stream.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read response");
    assert!(reply.starts_with("HTTP/1.1 200"), "got: {reply}");
    assert!(reply.contains("\"op\":"), "got: {reply}");
    server.shutdown();
}

#[test]
fn http_fallback_rejects_oversized_and_unparsable_content_length() {
    // A declared Content-Length past the 1 MiB cap must be refused up
    // front (413) without reading — or allocating — the body.
    let server = boot(1 << 16, 0);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(
            b"POST /submit HTTP/1.1\r\nHost: localhost\r\n\
              Content-Length: 2000000\r\nConnection: close\r\n\r\n",
        )
        .expect("write oversized request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 413"), "got: {body}");
    assert!(body.contains("body too large"), "got: {body}");

    // An unparsable Content-Length saturates to the same refusal path
    // rather than being silently treated as zero.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(
            b"POST /submit HTTP/1.1\r\nHost: localhost\r\n\
              Content-Length: banana\r\nConnection: close\r\n\r\n",
        )
        .expect("write unparsable request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 413"), "got: {body}");
    server.shutdown();
}
