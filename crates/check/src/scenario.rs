//! Seeded differential-scenario generation.
//!
//! A [`Scenario`] is a deterministic function of its seed: a small
//! engine configuration plus an op sequence composing workload
//! (register/submit), fault injection (non-finite and wild report
//! values), `merge_domains`, checkpoint/restore with a *different* shard
//! count, `tick()` interleavings, and allocation requests. Everything is
//! expressed in raw ids and floats so this crate stays a leaf; the
//! runner in the umbrella crate (`eta2::check`) maps ops onto the real
//! engine and its sequential oracles and compares results.
//!
//! Determinism contract: `Scenario::generate(seed)` yields the same
//! scenario on every platform and build — the corpus stores only seeds.

use crate::rng::SplitMix64;

/// Sizing knobs derived from the seed. Intentionally small: divergences
/// minimize better in tiny state spaces, and collisions (same user
/// re-reporting a task, merges hitting populated domains) are what shake
/// out ordering bugs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Distinct reporting users (ids `0..n_users`).
    pub n_users: u64,
    /// Shards in the primary engine under test.
    pub n_shards: usize,
    /// Shards in the engine a checkpoint is restored into — deliberately
    /// allowed to differ from `n_shards` so restore re-sharding is
    /// exercised.
    pub restore_shards: usize,
    /// Engine batch capacity before an in-line flush triggers.
    pub flush_threshold: usize,
}

/// One task to register: the raw ingredients of a `TaskSpec`.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpecLite {
    /// Domain label. Arbitrary u64s (not dense) to exercise `shard_of`.
    pub domain: u64,
    /// Processing time in hours, finite and positive.
    pub processing_time: f64,
    /// Assignment cost, finite and positive.
    pub cost: f64,
}

/// One submitted report. `task_index` indexes the concatenation of all
/// tasks registered by earlier ops (the runner maps it to the engine's
/// assigned `TaskId`), which keeps the scenario valid by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportLite {
    /// User id in `0..n_users`.
    pub user: u64,
    /// Index into the registration-ordered task list.
    pub task_index: usize,
    /// Report value; may be NaN/±∞/huge when the fault plan fires.
    pub value: f64,
}

/// One step of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Register new tasks (engine assigns the next consecutive ids).
    Register(Vec<TaskSpecLite>),
    /// Submit a batch of reports.
    Submit(Vec<ReportLite>),
    /// Drain pending reports and publish a fresh epoch.
    Tick,
    /// Merge `absorbed` into `kept` (both are live domain labels with at
    /// least one registered task each by construction).
    Merge {
        /// Surviving domain label.
        kept: u64,
        /// Label removed by the merge.
        absorbed: u64,
    },
    /// Checkpoint the engine and restore into a fresh engine with
    /// `restore_shards` shards; subsequent ops run against the restored
    /// engine.
    CheckpointRestore,
    /// Run max-quality allocation on the current snapshot with one
    /// capacity (in hours) per user, comparing heap vs scan oracles.
    Allocate {
        /// Per-user capacities, index = user id.
        capacities: Vec<f64>,
        /// When true, run only the duration-aware quality-per-hour greedy
        /// pass; when false, also run the plain-quality pass and keep the
        /// better allocation (the ½-approximation configuration).
        per_hour: bool,
    },
    /// Run one min-cost allocation over the current snapshot's tasks
    /// with round budget `c°`, checking the per-round budget invariant.
    MinCost {
        /// Per-round spend cap `c°`.
        round_budget: f64,
        /// Per-task maximum tolerated error (drives Eq. 24's gate).
        max_error: f64,
    },
}

/// A fully-specified deterministic test scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The generating seed (scenario identity; what the corpus stores).
    pub seed: u64,
    /// Engine sizing derived from the seed.
    pub config: ScenarioConfig,
    /// Op sequence. The runner always appends a final implicit `Tick`
    /// before end-of-run comparison, so truncated prefixes (used by the
    /// minimizer) stay comparable.
    pub ops: Vec<Op>,
}

/// Probability a submitted value is corrupted (NaN, ±∞, or 1e300).
const P_CORRUPT: f64 = 0.06;

/// Salt separating the durable-scenario rng stream from the plain one,
/// so the same corpus seed explores different workloads in each harness.
const DURABLE_SALT: u64 = 0x00d0_7ab1_e05a_17e0;

fn gen_value(rng: &mut SplitMix64) -> f64 {
    if rng.chance(P_CORRUPT) {
        match rng.below(4) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => 1e300,
        }
    } else {
        rng.uniform(0.0, 10.0)
    }
}

fn gen_specs(rng: &mut SplitMix64, domains: &[u64], count: usize) -> Vec<TaskSpecLite> {
    (0..count)
        .map(|_| TaskSpecLite {
            domain: domains[rng.below(domains.len())],
            processing_time: rng.uniform(0.2, 3.0),
            cost: rng.uniform(0.5, 4.0),
        })
        .collect()
}

impl Scenario {
    /// Builds the scenario identified by `seed`.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = SplitMix64::new(seed);
        let config = ScenarioConfig {
            n_users: rng.range(2, 6) as u64,
            n_shards: rng.range(1, 4),
            restore_shards: rng.range(1, 4),
            flush_threshold: rng.range(2, 8),
        };

        // Sparse domain labels so shard_of sees realistic id entropy.
        let n_domains = rng.range(1, 4);
        let mut live_domains: Vec<u64> = Vec::with_capacity(n_domains);
        while live_domains.len() < n_domains {
            let label = rng.next_u64() % 10_000;
            if !live_domains.contains(&label) {
                live_domains.push(label);
            }
        }

        let mut ops = Vec::new();
        let mut tasks_registered = 0usize;
        // Labels that ever carried a task: merges only make sense (and
        // only stress re-routing) between populated domains.
        let mut populated: Vec<u64> = Vec::new();

        let first_count = rng.range(2, 5);
        let first = gen_specs(&mut rng, &live_domains, first_count);
        for s in &first {
            if !populated.contains(&s.domain) {
                populated.push(s.domain);
            }
        }
        tasks_registered += first.len();
        ops.push(Op::Register(first));

        let op_count = rng.range(6, 22);
        for _ in 0..op_count {
            let roll = rng.next_f64();
            if roll < 0.35 {
                let n = rng.range(1, 7);
                let reports = (0..n)
                    .map(|_| ReportLite {
                        user: rng.below(config.n_users as usize) as u64,
                        task_index: rng.below(tasks_registered),
                        value: gen_value(&mut rng),
                    })
                    .collect();
                ops.push(Op::Submit(reports));
            } else if roll < 0.50 {
                let count = rng.range(1, 3);
                let specs = gen_specs(&mut rng, &live_domains, count);
                for s in &specs {
                    if !populated.contains(&s.domain) {
                        populated.push(s.domain);
                    }
                }
                tasks_registered += specs.len();
                ops.push(Op::Register(specs));
            } else if roll < 0.65 {
                ops.push(Op::Tick);
            } else if roll < 0.75 {
                if populated.len() >= 2 {
                    let ai = rng.below(populated.len());
                    let absorbed = populated.remove(ai);
                    let kept = populated[rng.below(populated.len())];
                    live_domains.retain(|&d| d != absorbed);
                    ops.push(Op::Merge { kept, absorbed });
                } else {
                    ops.push(Op::Tick);
                }
            } else if roll < 0.85 {
                ops.push(Op::CheckpointRestore);
            } else if roll < 0.95 {
                let capacities = (0..config.n_users).map(|_| rng.uniform(0.0, 6.0)).collect();
                ops.push(Op::Allocate {
                    capacities,
                    per_hour: rng.chance(0.5),
                });
            } else {
                ops.push(Op::MinCost {
                    round_budget: rng.uniform(1.0, 8.0),
                    max_error: rng.uniform(0.4, 2.0),
                });
            }
        }
        Scenario { seed, config, ops }
    }

    /// Builds the *durable* scenario identified by `seed`: only ops a
    /// write-ahead log records (register / submit / tick / merge) plus
    /// `CheckpointRestore`, which the crash runner maps to a durable
    /// checkpoint. Read-side ops (`Allocate`, `MinCost`) are excluded —
    /// they never touch the log, and every kill point should sit at a
    /// logged mutation boundary.
    ///
    /// The rng stream is salted so `generate_durable(s)` and
    /// `generate(s)` explore different workloads for the same corpus
    /// seed; determinism contract is the same as [`generate`](Self::generate).
    pub fn generate_durable(seed: u64) -> Scenario {
        let mut rng = SplitMix64::new(seed ^ DURABLE_SALT);
        let n_users = rng.range(2, 6) as u64;
        let n_shards = rng.range(1, 4);
        let config = ScenarioConfig {
            n_users,
            n_shards,
            // Recovery restores into an engine with the *same* shard
            // count (the config is the caller's, not the checkpoint's).
            restore_shards: n_shards,
            flush_threshold: rng.range(2, 8),
        };

        let n_domains = rng.range(1, 4);
        let mut live_domains: Vec<u64> = Vec::with_capacity(n_domains);
        while live_domains.len() < n_domains {
            let label = rng.next_u64() % 10_000;
            if !live_domains.contains(&label) {
                live_domains.push(label);
            }
        }

        let mut ops = Vec::new();
        let mut tasks_registered = 0usize;
        let mut populated: Vec<u64> = Vec::new();

        let first_count = rng.range(2, 5);
        let first = gen_specs(&mut rng, &live_domains, first_count);
        for s in &first {
            if !populated.contains(&s.domain) {
                populated.push(s.domain);
            }
        }
        tasks_registered += first.len();
        ops.push(Op::Register(first));

        // Shorter than `generate`'s sequence: the crash sweep replays the
        // whole workload once per kill point, so cost is quadratic in
        // length.
        let op_count = rng.range(6, 16);
        for _ in 0..op_count {
            let roll = rng.next_f64();
            if roll < 0.45 {
                let n = rng.range(1, 7);
                let reports = (0..n)
                    .map(|_| ReportLite {
                        user: rng.below(config.n_users as usize) as u64,
                        task_index: rng.below(tasks_registered),
                        value: gen_value(&mut rng),
                    })
                    .collect();
                ops.push(Op::Submit(reports));
            } else if roll < 0.60 {
                let count = rng.range(1, 3);
                let specs = gen_specs(&mut rng, &live_domains, count);
                for s in &specs {
                    if !populated.contains(&s.domain) {
                        populated.push(s.domain);
                    }
                }
                tasks_registered += specs.len();
                ops.push(Op::Register(specs));
            } else if roll < 0.75 {
                ops.push(Op::Tick);
            } else if roll < 0.85 {
                if populated.len() >= 2 {
                    let ai = rng.below(populated.len());
                    let absorbed = populated.remove(ai);
                    let kept = populated[rng.below(populated.len())];
                    live_domains.retain(|&d| d != absorbed);
                    ops.push(Op::Merge { kept, absorbed });
                } else {
                    ops.push(Op::Tick);
                }
            } else {
                ops.push(Op::CheckpointRestore);
            }
        }
        Scenario { seed, config, ops }
    }

    /// A copy truncated to the first `n` ops — the minimizer's step.
    pub fn truncated(&self, n: usize) -> Scenario {
        Scenario {
            seed: self.seed,
            config: self.config.clone(),
            ops: self.ops[..n.min(self.ops.len())].to_vec(),
        }
    }

    /// Total reports submitted across all `Submit` ops.
    pub fn report_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Submit(r) => r.len(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            // Debug-render comparison: derived PartialEq is useless here
            // because injected NaN values compare unequal to themselves.
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
    }

    #[test]
    fn scenarios_are_well_formed() {
        for seed in 0..200u64 {
            let s = Scenario::generate(seed);
            assert!(s.config.n_users >= 2);
            assert!(s.config.n_shards >= 1);
            assert!(s.config.restore_shards >= 1);
            assert!(s.config.flush_threshold >= 2);
            assert!(matches!(s.ops.first(), Some(Op::Register(specs)) if !specs.is_empty()));

            let mut tasks = 0usize;
            let mut merged_away: Vec<u64> = Vec::new();
            for op in &s.ops {
                match op {
                    Op::Register(specs) => {
                        for spec in specs {
                            assert!(spec.processing_time.is_finite() && spec.processing_time > 0.0);
                            assert!(spec.cost.is_finite() && spec.cost > 0.0);
                            assert!(
                                !merged_away.contains(&spec.domain),
                                "seed {seed}: registered into merged-away domain {}",
                                spec.domain
                            );
                        }
                        tasks += specs.len();
                    }
                    Op::Submit(reports) => {
                        for r in reports {
                            assert!(r.user < s.config.n_users);
                            assert!(r.task_index < tasks, "seed {seed}: dangling task index");
                        }
                    }
                    Op::Merge { kept, absorbed } => {
                        assert_ne!(kept, absorbed, "seed {seed}");
                        assert!(
                            !merged_away.contains(kept),
                            "seed {seed}: merge into dead domain"
                        );
                        assert!(
                            !merged_away.contains(absorbed),
                            "seed {seed}: double merge of {absorbed}"
                        );
                        merged_away.push(*absorbed);
                    }
                    Op::Allocate { capacities, .. } => {
                        assert_eq!(capacities.len(), s.config.n_users as usize);
                        assert!(capacities.iter().all(|c| c.is_finite() && *c >= 0.0));
                    }
                    Op::MinCost {
                        round_budget,
                        max_error,
                    } => {
                        assert!(round_budget.is_finite() && *round_budget > 0.0);
                        assert!(max_error.is_finite() && *max_error > 0.0);
                    }
                    Op::Tick | Op::CheckpointRestore => {}
                }
            }
        }
    }

    #[test]
    fn fault_plan_actually_fires_somewhere() {
        // Over a few hundred seeds the corruption probability must
        // produce both NaN and infinite reports, or the harness isn't
        // exercising the quarantine paths at all.
        let mut saw_nan = false;
        let mut saw_inf = false;
        for seed in 0..300u64 {
            for op in &Scenario::generate(seed).ops {
                if let Op::Submit(reports) = op {
                    for r in reports {
                        saw_nan |= r.value.is_nan();
                        saw_inf |= r.value.is_infinite();
                    }
                }
            }
        }
        assert!(saw_nan, "no NaN reports in 300 seeds");
        assert!(saw_inf, "no infinite reports in 300 seeds");
    }

    #[test]
    fn scenario_diversity_across_seeds() {
        // All op kinds must appear somewhere in a modest seed range.
        let (mut merges, mut restores, mut allocs, mut min_costs, mut ticks) = (0, 0, 0, 0, 0);
        for seed in 0..300u64 {
            for op in &Scenario::generate(seed).ops {
                match op {
                    Op::Merge { .. } => merges += 1,
                    Op::CheckpointRestore => restores += 1,
                    Op::Allocate { .. } => allocs += 1,
                    Op::MinCost { .. } => min_costs += 1,
                    Op::Tick => ticks += 1,
                    _ => {}
                }
            }
        }
        assert!(merges > 0, "no merges generated");
        assert!(restores > 0, "no checkpoint/restores generated");
        assert!(allocs > 0, "no allocations generated");
        assert!(min_costs > 0, "no min-cost ops generated");
        assert!(ticks > 0, "no ticks generated");
    }

    #[test]
    fn durable_generation_is_deterministic_and_salted() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let a = Scenario::generate_durable(seed);
            let b = Scenario::generate_durable(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            // Salted stream: the durable scenario differs from the plain
            // one for the same seed (op mixes are different by design).
            let plain = Scenario::generate(seed);
            assert_ne!(format!("{a:?}"), format!("{plain:?}"), "seed {seed}");
        }
    }

    #[test]
    fn durable_scenarios_carry_only_logged_ops() {
        let (mut checkpoints, mut merges, mut ticks) = (0, 0, 0);
        for seed in 0..300u64 {
            let s = Scenario::generate_durable(seed);
            assert_eq!(
                s.config.restore_shards, s.config.n_shards,
                "seed {seed}: recovery keeps the shard count"
            );
            assert!(matches!(s.ops.first(), Some(Op::Register(specs)) if !specs.is_empty()));
            let mut tasks = 0usize;
            for op in &s.ops {
                match op {
                    Op::Register(specs) => tasks += specs.len(),
                    Op::Submit(reports) => {
                        for r in reports {
                            assert!(r.user < s.config.n_users);
                            assert!(r.task_index < tasks, "seed {seed}: dangling task index");
                        }
                    }
                    Op::Merge { kept, absorbed } => assert_ne!(kept, absorbed, "seed {seed}"),
                    Op::Tick | Op::CheckpointRestore => {}
                    other => panic!("seed {seed}: read-side op {other:?} in durable scenario"),
                }
                match op {
                    Op::CheckpointRestore => checkpoints += 1,
                    Op::Merge { .. } => merges += 1,
                    Op::Tick => ticks += 1,
                    _ => {}
                }
            }
        }
        assert!(checkpoints > 0, "no durable checkpoints generated");
        assert!(merges > 0, "no merges generated");
        assert!(ticks > 0, "no ticks generated");
    }

    #[test]
    fn truncation_preserves_prefix() {
        let s = Scenario::generate(9);
        let t = s.truncated(3);
        assert_eq!(t.ops.len(), 3.min(s.ops.len()));
        assert_eq!(&s.ops[..t.ops.len()], &t.ops[..]);
        assert_eq!(s.truncated(usize::MAX).ops.len(), s.ops.len());
    }
}
