//! # eta2-check — correctness harness for the ETA² reproduction
//!
//! Two facilities, both deterministic and dependency-free:
//!
//! * **Invariant registry** ([`invariant!`]): cheap predicates compiled
//!   into production code paths (core, serve, sim) and asserted at
//!   runtime behind a gate. The gate is a single relaxed atomic load, so
//!   a disabled run costs one predictable branch per site — the same
//!   discipline as `eta2-obs`. Breaches are counted through
//!   `eta2_obs::counter("check.breach", 1)`, recorded in an in-process
//!   registry ([`breaches`]), and — in [`Mode::Panic`] — abort the
//!   offending operation with a message naming the invariant.
//! * **Scenario generator** ([`scenario`]): a splitmix64-seeded composer
//!   of random workloads × fault plans × `merge_domains` ×
//!   checkpoint/restore × `tick()` interleavings. The generator knows
//!   nothing about eta2 types (raw ids and floats only); the runner that
//!   feeds scenarios through the system's oracle pairs lives in the
//!   umbrella crate (`eta2::check`), which can see both members of each
//!   pair.
//!
//! ## Gate
//!
//! Checking is off by default. It is enabled by, in priority order:
//!
//! 1. [`set_mode`] — programmatic, wins over everything;
//! 2. the `ETA2_CHECK` environment variable, read once on first use:
//!    `panic` (or `strict`/`abort`) → [`Mode::Panic`], any other truthy
//!    value (`1`, `count`, `on`, …) → [`Mode::Count`], falsy/unset →
//!    compile-time default;
//! 3. the `strict` cargo feature, which flips the compile-time default
//!    from [`Mode::Off`] to [`Mode::Panic`] (used by CI's check-corpus
//!    job so a breach fails the build even if the env is lost).

pub mod corpus;
pub mod rng;
pub mod scenario;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// How invariant breaches are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Predicates are not evaluated (one relaxed load + branch per site).
    Off,
    /// Predicates run; breaches are counted and recorded, execution
    /// continues. For soak runs where one bad epoch shouldn't end the
    /// process but should show up in metrics.
    Count,
    /// Predicates run; a breach panics with the invariant name and
    /// detail. For CI and the differential harness.
    Panic,
}

// Encoding for the MODE atomic. 0 = not yet initialized from env.
const MODE_UNSET: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_COUNT: u8 = 2;
const MODE_PANIC: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// Total breaches since process start or last [`reset_breaches`].
static BREACH_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Most recent breach records, capped so a hot broken invariant cannot
/// grow memory without bound.
const BREACH_LOG_CAP: usize = 64;
static BREACH_LOG: Mutex<Vec<Breach>> = Mutex::new(Vec::new());

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    /// Invariant name as passed to [`invariant!`], e.g. `"serve.flushes_monotone"`.
    pub name: &'static str,
    /// Formatted detail message from the breach site.
    pub detail: String,
}

#[cfg(feature = "strict")]
const DEFAULT_MODE: u8 = MODE_PANIC;
#[cfg(not(feature = "strict"))]
const DEFAULT_MODE: u8 = MODE_OFF;

#[cold]
fn init_mode_from_env() -> u8 {
    let resolved = match std::env::var("ETA2_CHECK") {
        Err(_) => DEFAULT_MODE,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            match v.as_str() {
                "" | "0" | "false" | "off" | "no" => DEFAULT_MODE,
                "panic" | "strict" | "abort" => MODE_PANIC,
                _ => MODE_COUNT,
            }
        }
    };
    // Racing first uses agree on the value (env is stable), so a plain
    // store is fine; set_mode may still overwrite later.
    MODE.store(resolved, Ordering::Relaxed);
    resolved
}

#[inline]
fn mode_raw() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m == MODE_UNSET {
        init_mode_from_env()
    } else {
        m
    }
}

/// The current checking mode.
pub fn mode() -> Mode {
    match mode_raw() {
        MODE_COUNT => Mode::Count,
        MODE_PANIC => Mode::Panic,
        _ => Mode::Off,
    }
}

/// Overrides the checking mode for this process, superseding both the
/// `ETA2_CHECK` environment variable and the `strict` feature default.
pub fn set_mode(mode: Mode) {
    let raw = match mode {
        Mode::Off => MODE_OFF,
        Mode::Count => MODE_COUNT,
        Mode::Panic => MODE_PANIC,
    };
    MODE.store(raw, Ordering::Relaxed);
}

/// Whether invariant predicates should be evaluated. This is the fast
/// path branched on by every [`invariant!`] site.
#[inline]
pub fn enabled() -> bool {
    mode_raw() != MODE_OFF
}

/// Records a breach of `name`. Called by [`invariant!`] when a predicate
/// fails; callable directly for checks that don't fit a boolean
/// expression. Panics in [`Mode::Panic`].
pub fn breach(name: &'static str, detail: &str) {
    BREACH_TOTAL.fetch_add(1, Ordering::Relaxed);
    eta2_obs::counter("check.breach", 1);
    eta2_obs::emit_with(|| eta2_obs::Event::InvariantBreach {
        name,
        detail: detail.to_string(),
    });
    {
        let mut log = BREACH_LOG.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() < BREACH_LOG_CAP {
            log.push(Breach {
                name,
                detail: detail.to_string(),
            });
        }
    }
    // A breach is exactly the moment the flight recorder exists for: dump
    // the recent-event ring before (possibly) panicking, so the events
    // leading up to the violation survive as a replayable post-mortem.
    // No-op unless `ETA2_FLIGHT_DIR` (or `flight::configure`) enabled it.
    if let Some(path) = eta2_obs::flight::dump(&format!("invariant_breach: {name}")) {
        eprintln!("eta2-check: flight recorder dumped to {}", path.display());
    }
    if mode_raw() == MODE_PANIC {
        panic!("eta2-check invariant breach: {name}: {detail}");
    }
}

/// Total breaches recorded since start or last [`reset_breaches`].
pub fn breach_count() -> u64 {
    BREACH_TOTAL.load(Ordering::Relaxed)
}

/// The recorded breaches (most recent runs are appended; capped at an
/// internal limit, so under a storm this holds the earliest breaches —
/// the ones closest to the root cause).
pub fn breaches() -> Vec<Breach> {
    BREACH_LOG.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears the breach log and total. For tests and between harness runs.
pub fn reset_breaches() {
    BREACH_TOTAL.store(0, Ordering::Relaxed);
    BREACH_LOG.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Asserts a named runtime invariant.
///
/// ```
/// # let spent = 1.0; let cap = 2.0;
/// eta2_check::invariant!(
///     "alloc.round_budget",
///     spent < cap,
///     "round charged at {spent} with cap {cap}"
/// );
/// ```
///
/// When checking is off ([`Mode::Off`], the default) neither the
/// condition nor the message arguments are evaluated. On breach the
/// formatted detail is recorded via [`breach`], which counts it, logs
/// it, and panics in [`Mode::Panic`].
#[macro_export]
macro_rules! invariant {
    ($name:expr, $cond:expr $(,)?) => {
        $crate::invariant!($name, $cond, "condition failed: {}", stringify!($cond))
    };
    ($name:expr, $cond:expr, $($fmt:tt)+) => {
        if $crate::enabled() && !($cond) {
            $crate::breach($name, &format!($($fmt)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The mode/breach registry is process-global; tests in this module
    // serialize on this lock and restore Off before returning.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn off_mode_evaluates_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Off);
        reset_breaches();
        let mut evaluated = false;
        invariant!("test.off", {
            evaluated = true;
            false
        });
        assert!(!evaluated, "condition must not run when checking is off");
        assert_eq!(breach_count(), 0);
    }

    #[test]
    fn count_mode_records_and_continues() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Count);
        reset_breaches();
        invariant!("test.count", 1 + 1 == 3, "arithmetic broke: {}", 42);
        invariant!("test.count_ok", 1 + 1 == 2);
        assert_eq!(breach_count(), 1);
        let log = breaches();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].name, "test.count");
        assert!(log[0].detail.contains("42"), "{:?}", log[0].detail);
        set_mode(Mode::Off);
        reset_breaches();
    }

    #[test]
    fn panic_mode_panics_with_name() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Panic);
        reset_breaches();
        let err = std::panic::catch_unwind(|| {
            invariant!("test.panic", false, "boom");
        })
        .expect_err("breach must panic in Panic mode");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test.panic"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        set_mode(Mode::Off);
        reset_breaches();
    }

    #[test]
    fn breach_log_is_capped() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_mode(Mode::Count);
        reset_breaches();
        for i in 0..(BREACH_LOG_CAP + 10) {
            invariant!("test.storm", false, "breach {i}");
        }
        assert_eq!(breach_count(), (BREACH_LOG_CAP + 10) as u64);
        let log = breaches();
        assert_eq!(log.len(), BREACH_LOG_CAP);
        // Earliest breaches are kept — closest to the root cause.
        assert_eq!(log[0].detail, "breach 0");
        set_mode(Mode::Off);
        reset_breaches();
    }

    #[test]
    fn default_mode_is_compile_time_default() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // set_mode in other tests may have run first; exercise the
        // explicit path rather than racing the env init.
        set_mode(Mode::Count);
        assert_eq!(mode(), Mode::Count);
        assert!(enabled());
        set_mode(Mode::Off);
        assert_eq!(mode(), Mode::Off);
        assert!(!enabled());
    }
}
