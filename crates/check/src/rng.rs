//! Deterministic splitmix64 generator for scenario construction.
//!
//! Same finalizer constants as `eta2_serve::shard_of` and the sim fault
//! plan's hash, so scenario replay is bit-stable across platforms and
//! needs no `rand` dependency. Never seeded from the clock — the seed is
//! the scenario's identity.

/// Splitmix64 stream. Copy-cheap; `Clone` forks an identical stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53-bit mantissa path).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`. `bound` must be non-zero. The
    /// modulo bias is immaterial for bounds this small (≪ 2^32).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform usize in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_forks() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut forked = a.clone();
        assert_eq!(a.next_u64(), forked.next_u64());
    }

    #[test]
    fn known_vector() {
        // Reference output of splitmix64(seed=0) from the Vigna
        // reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn f64_in_unit_interval_and_range_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
            let n = r.range(3, 9);
            assert!((3..=9).contains(&n), "{n}");
            let u = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
