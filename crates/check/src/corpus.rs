//! Seed-corpus file format.
//!
//! The corpus is a plain text file, one scenario seed per line:
//!
//! ```text
//! # eta2-check seed corpus — replayed by `cli check` and CI.
//! 17           # merge + checkpoint interleaving (pending re-route)
//! 0xdeadbeef   # hex accepted too
//! ```
//!
//! Lines are `#`-comments, blank, or a decimal/hex (`0x`-prefixed) u64
//! optionally followed by a trailing comment. Seeds are replayed in file
//! order; duplicates are allowed (harmless) but flagged by [`parse`] so
//! a review can catch accidental double-adds.

/// A parsed corpus: ordered seeds plus any duplicate warnings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corpus {
    /// Seeds in file order.
    pub seeds: Vec<u64>,
    /// Seeds that appeared more than once.
    pub duplicates: Vec<u64>,
}

/// Parses corpus text. Returns an error naming the first malformed line
/// (1-based) — a corrupt corpus must fail loudly, not silently shrink
/// coverage.
pub fn parse(text: &str) -> Result<Corpus, String> {
    let mut seeds = Vec::new();
    let mut duplicates = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = if let Some(hex) = line.strip_prefix("0x").or_else(|| line.strip_prefix("0X"))
        {
            u64::from_str_radix(hex, 16)
        } else {
            line.parse::<u64>()
        };
        match parsed {
            Ok(seed) => {
                if seeds.contains(&seed) && !duplicates.contains(&seed) {
                    duplicates.push(seed);
                }
                seeds.push(seed);
            }
            Err(e) => {
                return Err(format!(
                    "corpus line {}: cannot parse seed from {:?}: {e}",
                    idx + 1,
                    raw
                ))
            }
        }
    }
    Ok(Corpus { seeds, duplicates })
}

/// Formats one corpus entry line for appending a minimized seed.
pub fn entry_line(seed: u64, comment: &str) -> String {
    if comment.is_empty() {
        format!("{seed}\n")
    } else {
        format!("{seed}  # {comment}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_comments_blanks() {
        let text = "\
# header comment
17  # inline note

0xDEADBEEF
42
";
        let c = parse(text).unwrap();
        assert_eq!(c.seeds, vec![17, 0xdead_beef, 42]);
        assert!(c.duplicates.is_empty());
    }

    #[test]
    fn flags_duplicates_but_keeps_order() {
        let c = parse("5\n6\n5\n5\n").unwrap();
        assert_eq!(c.seeds, vec![5, 6, 5, 5]);
        assert_eq!(c.duplicates, vec![5]);
    }

    #[test]
    fn rejects_malformed_line_with_position() {
        let err = parse("1\nnot-a-seed\n3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("not-a-seed"), "{err}");
    }

    #[test]
    fn entry_line_round_trips() {
        let text = format!(
            "{}{}",
            entry_line(99, "minimized from seed 1234"),
            entry_line(7, "")
        );
        let c = parse(&text).unwrap();
        assert_eq!(c.seeds, vec![99, 7]);
    }
}
