//! Segmented write-ahead log for durable ETA2 ingest.
//!
//! The serving engine (`eta2-serve`) computes truth and expertise *online*:
//! every report batch folds into decayed accumulators that cannot be
//! recomputed once the raw observations are gone. A crash between
//! checkpoints therefore loses history the paper's estimator (Eqs. 4–6)
//! depends on. This crate provides the redo log that closes the gap: the
//! engine appends a record describing each mutation *before* acking it, and
//! recovery replays the log tail over the latest checkpoint.
//!
//! # On-disk format (DESIGN.md §12)
//!
//! A log is a directory of segment files named `wal-<first-index>.log`,
//! where `<first-index>` is the zero-padded index of the first record the
//! segment holds. Each segment starts with a 24-byte header:
//!
//! ```text
//! magic    [u8; 8]   b"ETA2WAL\0"
//! version  u32 LE    format version (currently 1)
//! reserved u32 LE    zero
//! first    u64 LE    index of the segment's first record
//! ```
//!
//! followed by length-prefixed, checksummed record frames:
//!
//! ```text
//! len      u32 LE    payload length in bytes
//! crc      u32 LE    CRC32 (IEEE) over the 4 len bytes then the payload
//! payload  [u8; len]
//! ```
//!
//! # Torn tails vs. corruption
//!
//! A crash can tear the *end* of the log mid-frame; that is expected and
//! recoverable: an invalid frame (bad length, failed checksum, or truncated
//! bytes) in the **last** segment marks the end of the durable prefix, and
//! [`Wal::open`] chops it off. The same damage in a **sealed** (non-last)
//! segment cannot be a crash artifact — later segments prove records
//! followed — so it is reported as [`WalError::Corrupt`] instead of being
//! silently dropped.
//!
//! Fsync gating is configurable per [`FsyncPolicy`]: every record, at batch
//! boundaries (group commit via [`Wal::sync_batched`]), or never.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"ETA2WAL\0";

/// Segment format version written by this build. Unknown versions are
/// rejected at open/replay with a [`WalError::Corrupt`] naming the file.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the segment header (magic + version + reserved + first).
pub const HEADER_BYTES: u64 = 24;

/// Byte length of a record frame prefix (len + crc).
pub const FRAME_PREFIX_BYTES: u64 = 8;

/// Upper bound on a single record payload. Frames claiming more are treated
/// as corruption (a torn tail in the last segment) rather than allocated.
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table generated at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `parts` concatenated, as used by the record frames.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure opening, appending to, or replaying a log. Every variant carries
/// the offending path so callers can report actionable messages (the same
/// contract as `eta2_datasets::io`).
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// The underlying filesystem operation failed.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// The wrapped I/O error.
        source: std::io::Error,
    },
    /// A sealed segment is damaged in a way a crash cannot explain, or the
    /// segment set itself is inconsistent (overlapping record ranges, bad
    /// header in a sealed file, unsupported version).
    Corrupt {
        /// The damaged segment file.
        path: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal i/o failed for {}: {source}", path.display())
            }
            WalError::Corrupt { path, detail } => {
                write!(f, "wal segment {} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Corrupt { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> WalError {
    WalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every [`Wal::append`]. Strongest guarantee, slowest.
    PerRecord,
    /// `fsync` only when the writer reaches a batch boundary and calls
    /// [`Wal::sync_batched`] (group commit). Records acked since the last
    /// boundary can be lost to a crash, but never reordered or torn into
    /// the durable prefix.
    PerBatch,
    /// Never `fsync`; durability is whatever the OS page cache provides.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `per-record`, `per-batch`, or `off`.
    pub fn parse(raw: &str) -> Option<FsyncPolicy> {
        match raw {
            "per-record" => Some(FsyncPolicy::PerRecord),
            "per-batch" => Some(FsyncPolicy::PerBatch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }
}

/// Where and how a [`Wal`] writes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WalConfig {
    /// Directory holding the `wal-*.log` segments (created if missing).
    pub dir: PathBuf,
    /// Fsync gating. Defaults to [`FsyncPolicy::PerBatch`].
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the active one reaches this many
    /// bytes. Defaults to 8 MiB; tests use tiny values to force rotation.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Config with defaults for the segment directory `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::PerBatch,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

// ---------------------------------------------------------------------------
// Segment scanning (shared by open and replay)
// ---------------------------------------------------------------------------

fn segment_name(first_index: u64) -> String {
    format!("wal-{first_index:020}.log")
}

/// Sorted `(first_index, path)` list of the segment files in `dir`.
/// Returns an empty list when the directory does not exist yet.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(digits) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(first) = digits.parse::<u64>() {
                out.push((first, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// How the scan of one segment ended.
enum SegmentEnd {
    /// Every byte accounted for.
    Clean,
    /// Valid records end at `valid_len`; the remaining bytes are damaged.
    Torn { valid_len: u64, reason: String },
}

/// Parsed contents of a single segment file.
struct SegmentScan {
    first_index: u64,
    records: Vec<Vec<u8>>,
    end: SegmentEnd,
    len: u64,
}

/// Reads and validates one segment. `Torn` is only acceptable for the last
/// segment of a log; the caller enforces that.
fn scan_segment(path: &Path) -> Result<SegmentScan, WalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, e))?;
    let len = bytes.len() as u64;
    if len < HEADER_BYTES {
        return Ok(SegmentScan {
            first_index: 0,
            records: Vec::new(),
            end: SegmentEnd::Torn {
                valid_len: 0,
                reason: format!("truncated header ({len} of {HEADER_BYTES} bytes)"),
            },
            len,
        });
    }
    if bytes[0..8] != MAGIC {
        return Ok(SegmentScan {
            first_index: 0,
            records: Vec::new(),
            end: SegmentEnd::Torn {
                valid_len: 0,
                reason: "bad magic".to_string(),
            },
            len,
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version == 0 || version > WAL_VERSION {
        return Err(corrupt(
            path,
            format!(
                "unsupported wal version {version}; this build reads versions 1..={WAL_VERSION}"
            ),
        ));
    }
    let first_index = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut at = HEADER_BYTES as usize;
    let end = loop {
        if at == bytes.len() {
            break SegmentEnd::Clean;
        }
        if bytes.len() - at < FRAME_PREFIX_BYTES as usize {
            break SegmentEnd::Torn {
                valid_len: at as u64,
                reason: format!("truncated frame prefix ({} bytes)", bytes.len() - at),
            };
        }
        let rec_len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if rec_len > MAX_RECORD_BYTES {
            break SegmentEnd::Torn {
                valid_len: at as u64,
                reason: format!("implausible record length {rec_len}"),
            };
        }
        let body_at = at + FRAME_PREFIX_BYTES as usize;
        if bytes.len() - body_at < rec_len as usize {
            break SegmentEnd::Torn {
                valid_len: at as u64,
                reason: format!(
                    "truncated record ({} of {rec_len} payload bytes)",
                    bytes.len() - body_at
                ),
            };
        }
        let payload = &bytes[body_at..body_at + rec_len as usize];
        if crc32(&[&bytes[at..at + 4], payload]) != crc {
            break SegmentEnd::Torn {
                valid_len: at as u64,
                reason: "checksum mismatch".to_string(),
            };
        }
        records.push(payload.to_vec());
        at = body_at + rec_len as usize;
    };
    Ok(SegmentScan {
        first_index,
        records,
        end,
        len,
    })
}

/// Validated scan of a whole log directory: per-segment record lists plus
/// where (if anywhere) the tail is torn.
struct LogScan {
    /// `(first_index, path, records)` per segment, sorted.
    segments: Vec<(u64, PathBuf, Vec<Vec<u8>>)>,
    torn: Option<TornTail>,
}

fn scan_log(dir: &Path) -> Result<LogScan, WalError> {
    let listed = list_segments(dir)?;
    let last = listed.len().saturating_sub(1);
    let mut segments = Vec::with_capacity(listed.len());
    let mut torn = None;
    let mut next_expected = 0u64;
    for (i, (name_first, path)) in listed.into_iter().enumerate() {
        let scan = scan_segment(&path)?;
        let is_last = i == last;
        match scan.end {
            SegmentEnd::Clean => {}
            SegmentEnd::Torn { valid_len, reason } if is_last => {
                torn = Some(TornTail {
                    segment: path.clone(),
                    valid_len,
                    dropped_bytes: scan.len - valid_len,
                    reason,
                });
            }
            SegmentEnd::Torn { valid_len, reason } => {
                return Err(corrupt(
                    &path,
                    format!("sealed segment damaged at byte {valid_len}: {reason}"),
                ));
            }
        }
        // A segment whose header never made it to disk has no trustworthy
        // first_index; infer it from the predecessor. Only tolerable on the
        // last segment (the torn arm above already rejected sealed damage).
        let first = if scan.len < HEADER_BYTES
            || matches!(torn, Some(ref t) if t.valid_len == 0 && t.segment == path)
        {
            next_expected.max(name_first)
        } else {
            scan.first_index
        };
        if first != name_first {
            return Err(corrupt(
                &path,
                format!("header first-index {first} disagrees with file name ({name_first})"),
            ));
        }
        if first < next_expected {
            return Err(corrupt(
                &path,
                format!("record range overlaps predecessor (starts at {first}, expected >= {next_expected})"),
            ));
        }
        next_expected = first + scan.records.len() as u64;
        segments.push((first, path, scan.records));
    }
    Ok(LogScan { segments, torn })
}

// ---------------------------------------------------------------------------
// Replay (read-only)
// ---------------------------------------------------------------------------

/// One durable record, as seen by [`replay`].
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Monotone record index (stable across rotation and truncation).
    pub index: u64,
    /// The record payload, exactly as appended.
    pub payload: Vec<u8>,
}

/// Where a log's tail stopped being valid.
#[derive(Debug, Clone)]
pub struct TornTail {
    /// Segment holding the torn bytes.
    pub segment: PathBuf,
    /// Length of the valid prefix of that segment.
    pub valid_len: u64,
    /// Bytes past the valid prefix that will be dropped.
    pub dropped_bytes: u64,
    /// Human-readable cause (truncated frame, checksum mismatch, …).
    pub reason: String,
}

/// Result of a read-only [`replay`] scan.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Replay {
    /// Every valid record, in index order.
    pub records: Vec<WalRecord>,
    /// The torn tail, if the last segment ends mid-frame.
    pub torn: Option<TornTail>,
    /// Number of segment files scanned.
    pub segments: usize,
}

/// Scans the log in `dir` without modifying it. Valid records are returned
/// in order; a damaged tail in the last segment is reported via
/// [`Replay::torn`] rather than treated as an error, while damage in a
/// sealed segment yields [`WalError::Corrupt`]. A missing directory reads
/// as an empty log.
pub fn replay(dir: &Path) -> Result<Replay, WalError> {
    let started = Instant::now();
    let scan = scan_log(dir)?;
    let mut records = Vec::new();
    for (first, _path, payloads) in &scan.segments {
        for (k, payload) in payloads.iter().enumerate() {
            records.push(WalRecord {
                index: first + k as u64,
                payload: payload.clone(),
            });
        }
    }
    eta2_obs::counter("wal.replay", 1);
    eta2_obs::counter("wal.replay_records", records.len() as u64);
    eta2_obs::observe("wal.replay_seconds", started.elapsed().as_secs_f64());
    Ok(Replay {
        records,
        torn: scan.torn,
        segments: scan.segments.len(),
    })
}

/// Frame layout of the records in the last segment — `(byte_offset,
/// frame_len, index)` per record. Exists for crash-simulation harnesses
/// that tear or corrupt the newest record in place; `None` when the log has
/// no segments.
pub fn tail_segment_layout(dir: &Path) -> Result<Option<TailLayout>, WalError> {
    let listed = list_segments(dir)?;
    let Some((_, path)) = listed.last() else {
        return Ok(None);
    };
    let scan = scan_segment(path)?;
    let mut records = Vec::with_capacity(scan.records.len());
    let mut at = HEADER_BYTES;
    for (k, payload) in scan.records.iter().enumerate() {
        let frame = FRAME_PREFIX_BYTES + payload.len() as u64;
        records.push(TailRecord {
            offset: at,
            frame_len: frame,
            index: scan.first_index + k as u64,
        });
        at += frame;
    }
    Ok(Some(TailLayout {
        segment: path.clone(),
        records,
    }))
}

/// See [`tail_segment_layout`].
#[derive(Debug, Clone)]
pub struct TailLayout {
    /// The last (active) segment file.
    pub segment: PathBuf,
    /// Valid records in that segment, in order.
    pub records: Vec<TailRecord>,
}

/// One record's position inside the tail segment.
#[derive(Debug, Clone, Copy)]
pub struct TailRecord {
    /// Byte offset of the frame (the `len` word) inside the segment.
    pub offset: u64,
    /// Total frame length (prefix + payload).
    pub frame_len: u64,
    /// The record's log index.
    pub index: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct OpenReport {
    /// Valid records already in the log.
    pub records: u64,
    /// Segment files present after opening.
    pub segments: usize,
    /// The torn tail that was chopped off, if any.
    pub torn: Option<TornTail>,
}

/// An open, appendable write-ahead log.
///
/// Not internally synchronized: the engine wraps it in a mutex and holds
/// the guard across append-then-apply so log order equals apply order.
#[derive(Debug)]
pub struct Wal {
    cfg: WalConfig,
    /// Active (last) segment.
    file: File,
    path: PathBuf,
    seg_len: u64,
    next_index: u64,
    dirty: bool,
}

impl Wal {
    /// Opens (creating if needed) the log in `cfg.dir`, truncating any torn
    /// tail so the file ends at a record boundary, and positions the writer
    /// after the last valid record.
    pub fn open(cfg: WalConfig) -> Result<(Wal, OpenReport), WalError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err(&cfg.dir, e))?;
        let scan = scan_log(&cfg.dir)?;
        let mut records = 0u64;
        for (_, _, payloads) in &scan.segments {
            records += payloads.len() as u64;
        }
        let (next_index, path, seg_len) = match scan.segments.last() {
            Some((first, path, payloads)) => {
                let next = first + payloads.len() as u64;
                if let Some(torn) = &scan.torn {
                    // Chop the damaged bytes; if even the header was torn,
                    // valid_len is 0 and the header is rewritten below.
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| io_err(path, e))?;
                    f.set_len(torn.valid_len).map_err(|e| io_err(path, e))?;
                    f.sync_data().map_err(|e| io_err(path, e))?;
                }
                let valid_len = match &scan.torn {
                    Some(t) => t.valid_len,
                    None => 0, // recomputed below when no tear happened
                };
                let len = if scan.torn.is_some() {
                    valid_len
                } else {
                    fs::metadata(path).map_err(|e| io_err(path, e))?.len()
                };
                if len < HEADER_BYTES {
                    // Header never reached disk: rewrite it in place.
                    let mut f = OpenOptions::new()
                        .write(true)
                        .truncate(true)
                        .open(path)
                        .map_err(|e| io_err(path, e))?;
                    write_header(&mut f, path, *first)?;
                    f.sync_data().map_err(|e| io_err(path, e))?;
                    (next, path.clone(), HEADER_BYTES)
                } else {
                    (next, path.clone(), len)
                }
            }
            None => {
                let path = cfg.dir.join(segment_name(0));
                let mut f = File::create(&path).map_err(|e| io_err(&path, e))?;
                write_header(&mut f, &path, 0)?;
                if cfg.fsync != FsyncPolicy::Off {
                    f.sync_data().map_err(|e| io_err(&path, e))?;
                    sync_dir(&cfg.dir)?;
                }
                (0, path, HEADER_BYTES)
            }
        };
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let report = OpenReport {
            records,
            segments: scan.segments.len().max(1),
            torn: scan.torn,
        };
        Ok((
            Wal {
                cfg,
                file,
                path,
                seg_len,
                next_index,
                dirty: false,
            },
            report,
        ))
    }

    /// Index the next appended record will get (equivalently: the number of
    /// records ever appended to this log).
    pub fn position(&self) -> u64 {
        self.next_index
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Appends one record, returning its index. Under
    /// [`FsyncPolicy::PerRecord`] the record is durable when this returns;
    /// under the other policies it is buffered until [`Wal::sync`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        self.maybe_rotate()?;
        let len = (payload.len() as u32).to_le_bytes();
        let crc = crc32(&[&len, payload]).to_le_bytes();
        let mut frame = Vec::with_capacity(FRAME_PREFIX_BYTES as usize + payload.len());
        frame.extend_from_slice(&len);
        frame.extend_from_slice(&crc);
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))?;
        self.seg_len += frame.len() as u64;
        self.dirty = true;
        let index = self.next_index;
        self.next_index += 1;
        eta2_obs::counter("wal.append", 1);
        eta2_obs::counter("wal.append_bytes", frame.len() as u64);
        if self.cfg.fsync == FsyncPolicy::PerRecord {
            self.sync()?;
        }
        Ok(index)
    }

    /// Forces buffered appends to stable storage (no-op when nothing is
    /// buffered). Called by the engine at checkpoint time regardless of
    /// policy, so a checkpoint never claims a position beyond the durable
    /// log.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if !self.dirty {
            return Ok(());
        }
        let started = Instant::now();
        self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        self.dirty = false;
        eta2_obs::counter("wal.fsync", 1);
        eta2_obs::observe("wal.fsync_seconds", started.elapsed().as_secs_f64());
        Ok(())
    }

    /// Group-commit hook: syncs only under [`FsyncPolicy::PerBatch`]. The
    /// engine calls this at flush boundaries (batch flush, tick).
    pub fn sync_batched(&mut self) -> Result<(), WalError> {
        if self.cfg.fsync == FsyncPolicy::PerBatch {
            self.sync()
        } else {
            Ok(())
        }
    }

    /// Deletes sealed segments whose records all precede `index` (typically
    /// a checkpoint's position). The active segment is never deleted.
    /// Returns how many segment files were removed.
    pub fn truncate_up_to(&mut self, index: u64) -> Result<usize, WalError> {
        let listed = list_segments(&self.cfg.dir)?;
        let mut removed = 0usize;
        for pair in listed.windows(2) {
            let (_, ref path) = pair[0];
            let (next_first, _) = pair[1];
            if next_first <= index && *path != self.path {
                fs::remove_file(path).map_err(|e| io_err(path, e))?;
                removed += 1;
            }
        }
        if removed > 0 {
            if self.cfg.fsync != FsyncPolicy::Off {
                sync_dir(&self.cfg.dir)?;
            }
            eta2_obs::counter("wal.truncate_segments", removed as u64);
        }
        Ok(removed)
    }

    /// Fast-forwards the writer so the next record gets index `index` (at
    /// least). Recovery uses this when a checkpoint proves records up to
    /// `index` were applied but the log tail holding them is gone — new
    /// appends must not reuse the dead indices.
    pub fn advance_to(&mut self, index: u64) -> Result<(), WalError> {
        if index <= self.next_index {
            return Ok(());
        }
        self.rotate(index)
    }

    fn maybe_rotate(&mut self) -> Result<(), WalError> {
        if self.seg_len >= self.cfg.segment_bytes && self.seg_len > HEADER_BYTES {
            self.rotate(self.next_index)?;
        }
        Ok(())
    }

    fn rotate(&mut self, first_index: u64) -> Result<(), WalError> {
        self.sync_batched()?;
        let path = self.cfg.dir.join(segment_name(first_index));
        let mut f = File::create(&path).map_err(|e| io_err(&path, e))?;
        write_header(&mut f, &path, first_index)?;
        if self.cfg.fsync != FsyncPolicy::Off {
            f.sync_data().map_err(|e| io_err(&path, e))?;
            sync_dir(&self.cfg.dir)?;
        }
        drop(f);
        self.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        self.path = path;
        self.seg_len = HEADER_BYTES;
        self.next_index = first_index;
        self.dirty = false;
        eta2_obs::counter("wal.rotate", 1);
        Ok(())
    }
}

fn write_header(f: &mut File, path: &Path, first_index: u64) -> Result<(), WalError> {
    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    header[16..24].copy_from_slice(&first_index.to_le_bytes());
    f.write_all(&header).map_err(|e| io_err(path, e))
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| io_err(dir, e))
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> Result<(), WalError> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eta2-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, segment_bytes: u64) -> (Wal, OpenReport) {
        let mut cfg = WalConfig::new(dir);
        cfg.fsync = FsyncPolicy::Off;
        cfg.segment_bytes = segment_bytes;
        Wal::open(cfg).expect("open")
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmp("roundtrip");
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; (i as usize) * 7 + 1]).collect();
        {
            let (mut wal, report) = open(&dir, 1 << 20);
            assert_eq!(report.records, 0);
            for (i, p) in payloads.iter().enumerate() {
                assert_eq!(wal.append(p).expect("append"), i as u64);
            }
            wal.sync().expect("sync");
        }
        let rep = replay(&dir).expect("replay");
        assert!(rep.torn.is_none());
        assert_eq!(rep.records.len(), payloads.len());
        for (i, rec) in rep.records.iter().enumerate() {
            assert_eq!(rec.index, i as u64);
            assert_eq!(rec.payload, payloads[i]);
        }
        let (wal, report) = open(&dir, 1 << 20);
        assert_eq!(report.records, 10);
        assert_eq!(wal.position(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = tmp("rotate");
        let (mut wal, _) = open(&dir, 64);
        for i in 0..20u64 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        wal.sync().expect("sync");
        let segments = list_segments(&dir).expect("list");
        assert!(segments.len() > 1, "tiny segment_bytes must force rotation");
        let rep = replay(&dir).expect("replay");
        assert_eq!(rep.records.len(), 20);
        assert_eq!(rep.segments, segments.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_chopped_and_survivors_replay() {
        let dir = tmp("torn");
        let (mut wal, _) = open(&dir, 1 << 20);
        for i in 0..5u64 {
            wal.append(&[i as u8; 16]).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);
        // Tear the last record mid-frame.
        let layout = tail_segment_layout(&dir).expect("layout").expect("segment");
        let last = *layout.records.last().expect("records");
        let f = OpenOptions::new()
            .write(true)
            .open(&layout.segment)
            .expect("open");
        f.set_len(last.offset + last.frame_len / 2)
            .expect("truncate");
        drop(f);
        let rep = replay(&dir).expect("replay");
        assert_eq!(rep.records.len(), 4, "torn record must drop");
        let torn = rep.torn.expect("torn tail reported");
        assert!(torn.reason.contains("truncated"), "reason: {}", torn.reason);
        // Open chops the tail and appends continue from index 4.
        let (mut wal, report) = open(&dir, 1 << 20);
        assert!(report.torn.is_some());
        assert_eq!(wal.position(), 4);
        wal.append(b"after-crash").expect("append");
        wal.sync().expect("sync");
        let rep = replay(&dir).expect("replay");
        assert!(rep.torn.is_none());
        assert_eq!(rep.records.len(), 5);
        assert_eq!(rep.records[4].payload, b"after-crash");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checksum_at_tail_is_torn() {
        let dir = tmp("crc");
        let (mut wal, _) = open(&dir, 1 << 20);
        for i in 0..3u64 {
            wal.append(&[0x40 | i as u8; 12]).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);
        let layout = tail_segment_layout(&dir).expect("layout").expect("segment");
        let last = *layout.records.last().expect("records");
        // Flip one payload byte; the frame length stays plausible so only
        // the checksum catches it.
        let mut bytes = fs::read(&layout.segment).expect("read");
        let at = (last.offset + FRAME_PREFIX_BYTES) as usize;
        bytes[at] ^= 0xFF;
        fs::write(&layout.segment, &bytes).expect("write");
        let rep = replay(&dir).expect("replay");
        assert_eq!(rep.records.len(), 2);
        assert_eq!(rep.torn.expect("torn").reason, "checksum mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segment_corruption_is_an_error() {
        let dir = tmp("sealed");
        let (mut wal, _) = open(&dir, 64);
        for i in 0..20u64 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);
        let segments = list_segments(&dir).expect("list");
        assert!(segments.len() > 2);
        // Damage the first (sealed) segment's first record payload.
        let path = &segments[0].1;
        let mut bytes = fs::read(path).expect("read");
        let at = (HEADER_BYTES + FRAME_PREFIX_BYTES) as usize;
        bytes[at] ^= 0xFF;
        fs::write(path, &bytes).expect("write");
        let err = replay(&dir).expect_err("sealed damage must not be silently dropped");
        match err {
            WalError::Corrupt { path: p, detail } => {
                assert_eq!(&p, path);
                assert!(detail.contains("checksum mismatch"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_on_fresh_segment_recovers() {
        let dir = tmp("header");
        let (mut wal, _) = open(&dir, 32);
        for i in 0..6u64 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);
        // Simulate a crash during rotation: the newest segment has only a
        // partial header.
        let segments = list_segments(&dir).expect("list");
        let (last_first, last_path) = segments.last().expect("segments").clone();
        let f = OpenOptions::new()
            .write(true)
            .open(&last_path)
            .expect("open");
        f.set_len(HEADER_BYTES / 2).expect("truncate");
        drop(f);
        let rep = replay(&dir).expect("replay");
        let survivors = rep.records.len() as u64;
        assert_eq!(
            survivors, last_first,
            "records before the torn segment survive"
        );
        let (wal, report) = open(&dir, 32);
        assert!(report.torn.is_some());
        assert_eq!(wal.position(), last_first);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_drops_only_fully_covered_sealed_segments() {
        let dir = tmp("truncate");
        let (mut wal, _) = open(&dir, 64);
        for i in 0..20u64 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        wal.sync().expect("sync");
        let before = list_segments(&dir).expect("list").len();
        assert!(before > 2);
        // Position of the second segment's first record.
        let second_first = list_segments(&dir).expect("list")[1].0;
        let removed = wal.truncate_up_to(second_first).expect("truncate");
        assert_eq!(removed, 1, "only the first segment is fully below the mark");
        let removed = wal.truncate_up_to(wal.position()).expect("truncate all");
        assert!(removed >= 1);
        let rep = replay(&dir).expect("replay");
        // Surviving records are exactly the active segment's.
        assert!(rep.records.iter().all(|r| r.payload.len() == 8));
        assert_eq!(rep.records.last().expect("tail").index, 19);
        // The log still appends and reopens cleanly after truncation.
        let next = wal.append(b"post-truncate").expect("append");
        assert_eq!(next, 20);
        wal.sync().expect("sync");
        drop(wal);
        let (wal, _) = open(&dir, 64);
        assert_eq!(wal.position(), 21);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn advance_to_skips_dead_indices() {
        let dir = tmp("advance");
        let (mut wal, _) = open(&dir, 1 << 20);
        wal.append(b"a").expect("append");
        wal.advance_to(10).expect("advance");
        assert_eq!(wal.position(), 10);
        let idx = wal.append(b"b").expect("append");
        assert_eq!(idx, 10);
        wal.sync().expect("sync");
        let rep = replay(&dir).expect("replay");
        assert_eq!(rep.records.len(), 2);
        assert_eq!(rep.records[1].index, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(
            FsyncPolicy::parse("per-record"),
            Some(FsyncPolicy::PerRecord)
        );
        assert_eq!(FsyncPolicy::parse("per-batch"), Some(FsyncPolicy::PerBatch));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("always"), None);
    }

    #[test]
    fn errors_carry_path_context() {
        let dir = tmp("errpath");
        fs::create_dir_all(&dir).expect("mkdir");
        let bogus = dir.join(segment_name(0));
        let mut header = vec![0u8; HEADER_BYTES as usize];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&(WAL_VERSION + 1).to_le_bytes());
        fs::write(&bogus, &header).expect("write");
        // Unsupported version in the header.
        let err = replay(&dir).expect_err("bad version");
        let msg = err.to_string();
        assert!(msg.contains(&bogus.display().to_string()), "message: {msg}");
        assert!(msg.contains("unsupported wal version"), "message: {msg}");
        let _ = fs::remove_dir_all(&dir);
    }
}
