//! # eta2-par — minimal data-parallel helpers
//!
//! The hot paths of the reproduction (the §4.1 MLE's per-domain expertise
//! updates, seed sweeps, the opt-in Hogwild skip-gram) all share one shape:
//! a fixed set of independent work items whose runtimes are uneven. This
//! crate provides exactly the three primitives they need, built on
//! `std::thread::scope` with no external dependencies:
//!
//! * [`Parallelism`] — the workspace-wide knob (sequential / auto / fixed),
//!   encoded in configs as a plain `usize` (`0` = auto, `1` = sequential,
//!   `n` = `n` threads) so config crates stay serde-agnostic here.
//! * [`map_indexed`] — run `f(i)` for `i in 0..n`, workers claiming indices
//!   from a shared atomic counter (self-scheduling, so uneven items never
//!   leave a worker idle), results returned in index order.
//! * [`for_each_shard`] — run `f` over pre-split disjoint mutable shards
//!   (e.g. one expertise column per domain), again dynamically claimed.
//!
//! Determinism: both helpers produce results/effects identical to the
//! sequential loop whenever each item only touches its own state — the
//! claiming order varies between runs, but slot `i` always receives exactly
//! `f(i)`. With `threads <= 1` the helpers degrade to a plain in-order loop
//! with no thread machinery at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How much parallelism a component should use.
///
/// Configs carry this as a `usize` (see [`Parallelism::from_threads`]) so
/// that serde-deriving crates need no dependency on this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// One thread, no pool — the deterministic default everywhere.
    #[default]
    Sequential,
    /// One worker per available core.
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Decodes the `usize` convention used by config fields:
    /// `0` → [`Parallelism::Auto`], `1` → [`Parallelism::Sequential`],
    /// `n` → [`Parallelism::Threads`]`(n)`.
    pub fn from_threads(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Sequential,
            n => Parallelism::Threads(n),
        }
    }

    /// The concrete worker count: `Sequential` → 1, `Auto` → the number of
    /// available cores (at least 1), `Threads(n)` → `max(n, 1)`.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => available_parallelism(),
            Parallelism::Threads(n) => n.max(1),
        }
    }

    /// Whether this resolves to a single worker.
    pub fn is_sequential(self) -> bool {
        self.resolve() <= 1
    }
}

/// The number of cores the scheduler reports, at least 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned lock means a sibling worker panicked; the scope join below
    // will propagate that panic, so the state behind the lock is moot.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f(i)` for every `i in 0..n` on up to `threads` workers and returns
/// the results in index order.
///
/// Workers claim indices from a shared atomic counter (self-scheduling), so
/// a slow item never idles the other workers — the work-stealing behaviour
/// seed sweeps with uneven runtimes need. With `threads <= 1` (or `n <= 1`)
/// this is a plain sequential loop.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
///
/// # Examples
///
/// ```
/// let squares = eta2_par::map_indexed(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i);
                    *lock(&slots[i]) = Some(value);
                })
            })
            .collect();
        // Join explicitly so a worker panic resurfaces with its original
        // payload (scope's automatic join would replace the message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            lock(&slot)
                .take()
                .expect("every index 0..n is claimed exactly once")
        })
        .collect()
}

/// Runs `f(shard_index, &mut shard)` over every shard on up to `threads`
/// workers, shards dynamically claimed from a shared queue.
///
/// The caller pre-splits its state into disjoint shards (typically via
/// `split_at_mut` / `chunks_mut` — e.g. one accumulator-plus-expertise
/// column per domain in the MLE); each shard is visited exactly once. With
/// `threads <= 1` the shards run in order on the calling thread.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
///
/// # Examples
///
/// ```
/// let mut data = vec![0u64; 6];
/// let mut shards: Vec<&mut [u64]> = data.chunks_mut(2).collect();
/// eta2_par::for_each_shard(&mut shards, 3, |k, shard| {
///     for v in shard.iter_mut() {
///         *v = k as u64;
///     }
/// });
/// assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
/// ```
pub fn for_each_shard<S, F>(shards: &mut [S], threads: usize, f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let workers = threads.min(shards.len());
    if workers <= 1 {
        for (k, shard) in shards.iter_mut().enumerate() {
            f(k, shard);
        }
        return;
    }

    let queue = Mutex::new(shards.iter_mut().enumerate());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let claimed = lock(&queue).next();
                    match claimed {
                        Some((k, shard)) => f(k, shard),
                        None => break,
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallelism_decode_and_resolve() {
        assert_eq!(Parallelism::from_threads(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_threads(7), Parallelism::Threads(7));
        assert_eq!(Parallelism::Sequential.resolve(), 1);
        assert_eq!(Parallelism::Threads(3).resolve(), 3);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert!(Parallelism::Sequential.is_sequential());
        assert!(!Parallelism::Threads(4).is_sequential());
        assert_eq!(Parallelism::default(), Parallelism::Sequential);
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 4, 9] {
            let out = map_indexed(17, threads, |i| 3 * i + 1);
            assert_eq!(out, (0..17).map(|i| 3 * i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 5), vec![5]);
    }

    #[test]
    fn map_indexed_runs_each_index_once() {
        let calls = AtomicU64::new(0);
        let out = map_indexed(100, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn map_indexed_balances_uneven_items() {
        // One item is much slower than the rest; self-scheduling must let
        // the other workers drain the queue meanwhile. (Correctness, not a
        // timing assertion: everything still completes with right values.)
        let out = map_indexed(16, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i * 2
        });
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_shard_visits_disjoint_chunks() {
        let mut data = vec![0u32; 10];
        let mut shards: Vec<&mut [u32]> = data.chunks_mut(3).collect();
        for threads in [1, 4] {
            for_each_shard(&mut shards, threads, |k, shard| {
                for v in shard.iter_mut() {
                    *v += k as u32 + 1;
                }
            });
        }
        // Two passes, each adding (shard index + 1) to its chunk.
        assert_eq!(data, vec![2, 2, 2, 4, 4, 4, 6, 6, 6, 8]);
    }

    #[test]
    fn for_each_shard_empty_is_noop() {
        let mut shards: Vec<&mut [u8]> = Vec::new();
        for_each_shard(&mut shards, 4, |_, _| panic!("no shards to visit"));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn map_indexed_propagates_panics() {
        map_indexed(8, 4, |i| {
            if i == 3 {
                panic!("worker boom");
            }
            i
        });
    }
}
