//! # ETA² — Expertise-Aware Truth Analysis and Task Allocation
//!
//! A from-scratch Rust reproduction of *"Expertise-Aware Truth Analysis and
//! Task Allocation in Mobile Crowdsourcing"* (Zhang, Wu, Huang, Ji, Cao —
//! ICDCS 2017).
//!
//! This facade crate re-exports the full public API:
//!
//! * [`stats`] — special functions, normal/χ² distributions, the normality
//!   goodness-of-fit test, descriptive statistics, confidence intervals.
//! * [`embed`] — tokenizer, skip-gram-with-negative-sampling trainer, topic
//!   corpus generator and the paper's pair-word semantic extractor (§3.2).
//! * [`cluster`] — (dynamic) average-linkage hierarchical clustering for
//!   expertise-domain identification (§3.3).
//! * [`core`] — the expertise model (§2.4), expertise-aware MLE truth
//!   analysis (§4), max-quality and min-cost task allocation (§5), and the
//!   comparison truth-discovery methods (§6.3).
//! * [`datasets`] — survey-like, SFV-like and synthetic dataset generators
//!   (§6.1).
//! * [`sim`] — the day-by-day crowdsourcing simulator and sweep harness
//!   (§6.2).
//! * [`server`] — the paper's Figure-1 loop as an embeddable, stateful
//!   online API (`Eta2Server`, built with `ServerBuilder`).
//! * [`serve`] — the concurrent serving engine: domain-sharded state,
//!   batched ingest through the parallel MLE, and lock-free epoch-snapshot
//!   reads (`ServeEngine`).
//! * [`obs`] — structured observability: counters/gauges/histograms, span
//!   timers around MLE/allocation/simulation, and typed JSONL trace events
//!   (enable with [`obs::init_file`] or the CLI's `--trace`).
//! * [`check`] — the differential + invariant correctness harness: seeded
//!   scenario replay through the sharded-engine/sequential, MLE/reference
//!   and heap/scan oracle pairs, with runtime invariants gated on the
//!   `ETA2_CHECK` environment variable (see [`check::gate`]), plus the
//!   crash-point kill-replay sweep for durable ingest ([`check::crash`]).
//! * [`wal`] — the segmented, checksummed write-ahead log backing
//!   `ServeEngine`'s durable mode (`ServeEngine::recover`).
//! * [`net`] — the wire-level front door: the versioned `Request` /
//!   `Response` surface, its length-prefixed CRC-framed binary codec, a
//!   backpressure-aware TCP server with an HTTP/1.1 fallback
//!   (`NetServer`), a blocking client (`NetClient`), and the protocol
//!   fuzzer (`net::fuzz`).
//!
//! # Quickstart
//!
//! ```
//! use eta2::datasets::synthetic::SyntheticConfig;
//! use eta2::sim::{ApproachKind, SimConfig, Simulation};
//!
//! // A small instance of the paper's synthetic dataset (§6.1.3).
//! let dataset = SyntheticConfig {
//!     n_users: 20,
//!     n_tasks: 50,
//!     n_domains: 3,
//!     ..SyntheticConfig::default()
//! }
//! .generate(42);
//!
//! // Run ETA² for five simulated days and read the error trajectory.
//! let sim = Simulation::new(SimConfig::default());
//! let metrics = sim.run(&dataset, ApproachKind::Eta2, 0)?;
//! println!("daily estimation error: {:?}", metrics.daily_error);
//! assert!(metrics.overall_error.is_finite());
//! # Ok::<(), eta2::sim::PipelineError>(())
//! ```
//!
//! The runnable examples in `examples/` cover the full pipeline (noise
//! mapping with textual task descriptions), budgeted campaigns with
//! ETA²-mc, and streaming task arrival with dynamic domain discovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;

pub use eta2_cluster as cluster;
pub use eta2_core as core;
pub use eta2_datasets as datasets;
pub use eta2_embed as embed;
pub use eta2_net as net;
pub use eta2_obs as obs;
pub use eta2_serve as serve;
pub use eta2_server as server;
pub use eta2_sim as sim;
pub use eta2_stats as stats;
pub use eta2_wal as wal;

/// One-line import of the types nearly every embedding application needs.
///
/// ```
/// use eta2::prelude::*;
///
/// let mut server = ServerBuilder::new(4).build();
/// let ids = server
///     .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, 1.0)])
///     .unwrap();
/// assert_eq!(ids.len(), 1);
/// ```
pub mod prelude {
    pub use eta2_core::allocation::{Allocation, MinCostConfig};
    pub use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId, UserProfile};
    pub use eta2_core::truth::{MleConfig, TruthEstimate};
    pub use eta2_net::{Request, Response};
    pub use eta2_serve::{EpochSnapshot, ServeConfig, ServeEngine, TaskSpec};
    pub use eta2_server::{
        Eta2Server, ServerBuilder, ServerConfig, ServerError, ServerSnapshot, TaskInput,
    };
}
