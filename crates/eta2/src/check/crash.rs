//! Deterministic kill-replay: crash-point coverage for durable ingest.
//!
//! For a seeded durable workload ([`Scenario::generate_durable`]) the
//! sweep runs the whole op sequence once on a WAL-backed
//! [`ServeEngine`], snapshotting the durability directories (checkpoints
//! + log segments) after *every* op. Each snapshot is then killed three
//! ways and recovered:
//!
//! * **clean** — the process died between two ops; every acked record is
//!   on disk. Recovery must reproduce the state after exactly the ops
//!   run so far.
//! * **torn** — the last record's frame is cut mid-way (the suffix an
//!   interrupted write leaves). Recovery must drop exactly that op and
//!   reproduce the state one op earlier.
//! * **corrupt** — a payload byte of the last record is flipped, so the
//!   frame is length-complete but fails its CRC. Same contract as torn.
//!
//! "Reproduce" is bit-level: the recovered engine is compared against an
//! uninterrupted twin (a fresh volatile engine replaying the expected op
//! prefix) through the same [`state_divergence`](super::state_divergence)
//! used by the differential harness, plus task-table equality.
//!
//! When the killed op was a durable checkpoint, the checkpoint *file*
//! supersedes its own log record: tearing or corrupting the trailing
//! `Tick` record must not lose the op, because the checkpoint's rename
//! was the durable commit. The expected prefix accounts for that.

use eta2_check::scenario::{Op, Scenario};
use eta2_core::model::{DomainId, ObservationSet, TaskId, UserId};
use eta2_serve::{ServeEngine, TaskSpec};
use eta2_wal::{FsyncPolicy, WalConfig};
use std::path::{Path, PathBuf};

/// Segment-rotation threshold for the sweep: tiny, so even short
/// workloads spread records across several segments and recovery
/// exercises multi-segment scans.
const SWEEP_SEGMENT_BYTES: u64 = 256;

/// One kill point whose recovery did not match the uninterrupted twin.
#[derive(Debug, Clone)]
pub struct CrashFailure {
    /// Index of the last op before the kill (1-based; 0 = before any op).
    pub op_index: usize,
    /// Kill variant: `"clean"`, `"torn"` or `"corrupt"`.
    pub variant: &'static str,
    /// The op prefix the recovered engine was expected to equal.
    pub expected_prefix: usize,
    /// First mismatch found (or the recovery error).
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kill after op {} ({}), expected prefix {}: {}",
            self.op_index, self.variant, self.expected_prefix, self.detail
        )
    }
}

/// What one seed's crash-point sweep covered.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// The swept seed.
    pub seed: u64,
    /// Ops in the durable workload.
    pub ops: usize,
    /// WAL records the full run appended (one per op).
    pub records: u64,
    /// Kill points recovered (clean at every boundary, torn and corrupt
    /// at every record).
    pub kill_points: usize,
    /// Kill points whose recovery diverged from the twin.
    pub failures: Vec<CrashFailure>,
}

impl CrashReport {
    /// Whether every kill point recovered to the twin's exact state.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn io_fail(what: &str, path: &Path, e: std::io::Error) -> String {
    format!("{what} {}: {e}", path.display())
}

/// Recursively copies `src` into `dst` (created). A missing `src` copies
/// as nothing: before the first checkpoint the checkpoint dir does not
/// exist, and that absence is part of the state under test.
fn copy_dir(src: &Path, dst: &Path) -> Result<(), String> {
    if !src.exists() {
        return Ok(());
    }
    std::fs::create_dir_all(dst).map_err(|e| io_fail("cannot create", dst, e))?;
    let entries = std::fs::read_dir(src).map_err(|e| io_fail("cannot read", src, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_fail("cannot read", src, e))?;
        let from = entry.path();
        let to = dst.join(entry.file_name());
        let ty = entry
            .file_type()
            .map_err(|e| io_fail("cannot stat", &from, e))?;
        if ty.is_dir() {
            copy_dir(&from, &to)?;
        } else {
            std::fs::copy(&from, &to).map_err(|e| io_fail("cannot copy", &from, e))?;
        }
    }
    Ok(())
}

fn reset_dir(dir: &Path) -> Result<(), String> {
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(|e| io_fail("cannot clear", dir, e))?;
    }
    std::fs::create_dir_all(dir).map_err(|e| io_fail("cannot create", dir, e))
}

fn wal_cfg(dir: PathBuf) -> WalConfig {
    let mut cfg = WalConfig::new(dir);
    // Durability-under-power-loss is the WAL's own test surface; the
    // sweep injects its crashes by mutating files, so fsync only slows
    // the quadratic replay down.
    cfg.fsync = FsyncPolicy::Off;
    cfg.segment_bytes = SWEEP_SEGMENT_BYTES;
    cfg
}

/// Applies one scenario op. `checkpoint_dir` selects the role: the
/// durable engine checkpoints there, the volatile twin maps the same op
/// to the `tick()` a durable checkpoint performs internally.
fn apply_op(
    engine: &ServeEngine,
    op: &Op,
    task_ids: &mut Vec<TaskId>,
    checkpoint_dir: Option<&Path>,
) -> Result<(), String> {
    match op {
        Op::Register(specs) => {
            let batch: Vec<TaskSpec> = specs
                .iter()
                .map(|s| TaskSpec::new(DomainId(s.domain as u32), s.processing_time, s.cost))
                .collect();
            let ids = engine
                .register_tasks(&batch)
                .map_err(|e| format!("register failed on valid specs: {e}"))?;
            task_ids.extend(ids);
        }
        Op::Submit(reports) => {
            let mut batch = ObservationSet::new();
            for r in reports {
                batch.insert(UserId(r.user as u32), task_ids[r.task_index], r.value);
            }
            engine.submit(&batch);
        }
        Op::Tick => {
            engine.tick();
        }
        Op::Merge { kept, absorbed } => {
            engine.merge_domains(DomainId(*kept as u32), DomainId(*absorbed as u32));
        }
        Op::CheckpointRestore => match checkpoint_dir {
            Some(dir) => {
                engine
                    .checkpoint_durable(dir)
                    .map_err(|e| format!("durable checkpoint failed: {e}"))?;
            }
            None => {
                engine.tick();
            }
        },
        other => return Err(format!("non-durable op {other:?} in durable scenario")),
    }
    Ok(())
}

/// Builds the uninterrupted twin: a fresh volatile engine after the first
/// `prefix` ops. Returns the twin and the task ids it assigned.
fn build_twin(scenario: &Scenario, prefix: usize) -> Result<(ServeEngine, Vec<TaskId>), String> {
    let cfg = super::serve_cfg(
        scenario.config.n_users as usize,
        scenario.config.n_shards,
        scenario.config.flush_threshold,
    );
    let twin = ServeEngine::new(cfg);
    let mut task_ids = Vec::new();
    for op in &scenario.ops[..prefix] {
        apply_op(&twin, op, &mut task_ids, None)?;
    }
    Ok((twin, task_ids))
}

/// Recovers the durability snapshot in `dir` and bit-compares it against
/// the twin for `prefix` ops. Returns the first mismatch found.
fn recover_and_compare(scenario: &Scenario, dir: &Path, prefix: usize) -> Option<String> {
    let cfg = super::serve_cfg(
        scenario.config.n_users as usize,
        scenario.config.n_shards,
        scenario.config.flush_threshold,
    );
    let recovered =
        match ServeEngine::recover(cfg, &dir.join("checkpoints"), wal_cfg(dir.join("wal"))) {
            Ok((engine, _report)) => engine,
            Err(e) => return Some(format!("recovery failed: {e}")),
        };
    let (twin, task_ids) = match build_twin(scenario, prefix) {
        Ok(t) => t,
        Err(e) => return Some(format!("twin replay failed: {e}")),
    };
    if recovered.snapshot().tasks() != twin.snapshot().tasks() {
        return Some(format!(
            "task tables differ: {} vs {} tasks",
            recovered.snapshot().tasks().len(),
            twin.snapshot().tasks().len()
        ));
    }
    super::state_divergence(&recovered, &twin, &task_ids, ("recovered", "twin"))
}

/// Sweeps every crash point of the durable workload for `seed`, using
/// `scratch` for the live directories and per-op snapshots. Returns an
/// `Err` only for environmental problems (unwritable scratch path);
/// recovery mismatches land in [`CrashReport::failures`].
pub fn run_crash_seed(seed: u64, scratch: &Path) -> Result<CrashReport, String> {
    let scenario = Scenario::generate_durable(seed);
    let root = scratch.join(format!("crash-{seed:016x}"));
    reset_dir(&root)?;
    let live = root.join("live");
    let snap_for = |j: usize| root.join(format!("snap-{j:04}"));

    // Record pass: run the full workload durably, snapshotting the
    // checkpoint + log directories after every op. Snapshots (not offsets
    // into the final log) are what make the sweep exact — a durable
    // checkpoint *truncates* segments, so the final directory does not
    // contain the bytes an earlier crash would have seen.
    {
        let cfg = super::serve_cfg(
            scenario.config.n_users as usize,
            scenario.config.n_shards,
            scenario.config.flush_threshold,
        );
        let (engine, _) =
            ServeEngine::recover(cfg, &live.join("checkpoints"), wal_cfg(live.join("wal")))
                .map_err(|e| format!("cannot start durable engine in {}: {e}", live.display()))?;
        copy_dir(&live, &snap_for(0))?;
        let mut task_ids = Vec::new();
        for (i, op) in scenario.ops.iter().enumerate() {
            let j = i + 1;
            apply_op(&engine, op, &mut task_ids, Some(&live.join("checkpoints")))?;
            let position = engine.wal_position().expect("durable engine");
            if position != j as u64 {
                return Err(format!(
                    "op {j} left wal position {position}; every op must log exactly one record"
                ));
            }
            copy_dir(&live, &snap_for(j))?;
        }
    }

    // Kill pass. Op indices are 1-based; op j appended record j-1, so the
    // snapshot after op j holds records 0..=j-1 (minus what checkpoints
    // truncated). `checkpoint_ops[j]` = ops covered by the latest durable
    // checkpoint at that boundary.
    let n = scenario.ops.len();
    let mut checkpoint_ops = vec![0usize; n + 1];
    for (i, op) in scenario.ops.iter().enumerate() {
        let j = i + 1;
        checkpoint_ops[j] = if matches!(op, Op::CheckpointRestore) {
            j
        } else {
            checkpoint_ops[j - 1]
        };
    }

    let mut failures = Vec::new();
    let mut kill_points = 0usize;
    let work = root.join("work");
    let mut fail = |j: usize, variant: &'static str, prefix: usize, detail: String| {
        failures.push(CrashFailure {
            op_index: j,
            variant,
            expected_prefix: prefix,
            detail,
        });
    };

    for j in 0..=n {
        // Clean kill: everything op j acked is on disk.
        reset_dir(&work)?;
        copy_dir(&snap_for(j), &work)?;
        kill_points += 1;
        if let Some(detail) = recover_and_compare(&scenario, &work, j) {
            fail(j, "clean", j, detail);
        }
        if j == 0 {
            continue;
        }

        // Torn and corrupt kills mutilate the last record (index j-1).
        // If op j was a checkpoint, its file already committed the op, so
        // losing the trailing Tick record must not lose the op.
        let expected = checkpoint_ops[j].max(j - 1);
        for variant in ["torn", "corrupt"] {
            reset_dir(&work)?;
            copy_dir(&snap_for(j), &work)?;
            kill_points += 1;
            let layout = match eta2_wal::tail_segment_layout(&work.join("wal")) {
                Ok(Some(layout)) if !layout.records.is_empty() => layout,
                Ok(_) => {
                    fail(j, variant, expected, "tail segment has no records".into());
                    continue;
                }
                Err(e) => {
                    fail(j, variant, expected, format!("cannot scan tail: {e}"));
                    continue;
                }
            };
            let last = layout.records.last().expect("checked non-empty");
            if last.index != (j - 1) as u64 {
                fail(
                    j,
                    variant,
                    expected,
                    format!("tail record has index {}, want {}", last.index, j - 1),
                );
                continue;
            }
            let mutate = || -> std::io::Result<()> {
                use std::io::{Read, Seek, SeekFrom, Write};
                let mut f = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&layout.segment)?;
                if variant == "torn" {
                    f.set_len(last.offset + last.frame_len / 2)?;
                } else {
                    // Flip the first payload byte: the frame stays
                    // length-complete but its CRC no longer matches.
                    let at = last.offset + eta2_wal::FRAME_PREFIX_BYTES;
                    let mut byte = [0u8];
                    f.seek(SeekFrom::Start(at))?;
                    f.read_exact(&mut byte)?;
                    byte[0] ^= 0xff;
                    f.seek(SeekFrom::Start(at))?;
                    f.write_all(&byte)?;
                }
                Ok(())
            };
            if let Err(e) = mutate() {
                return Err(io_fail("cannot mutilate", &layout.segment, e));
            }
            if let Some(detail) = recover_and_compare(&scenario, &work, expected) {
                fail(j, variant, expected, detail);
            }
        }
    }

    let report = CrashReport {
        seed,
        ops: n,
        records: n as u64,
        kill_points,
        failures,
    };
    let _ = std::fs::remove_dir_all(&root);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("eta2-crash-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn small_seed_sweep_recovers_every_kill_point() {
        let dir = scratch("sweep");
        for seed in 0..3u64 {
            let report = run_crash_seed(seed, &dir).expect("sweep runs");
            assert_eq!(report.records, report.ops as u64);
            assert_eq!(report.kill_points, 3 * report.ops + 1);
            assert!(
                report.passed(),
                "seed {seed}: {}",
                report
                    .failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_scratch_is_an_error_not_a_panic() {
        let report = run_crash_seed(1, Path::new("/dev/null/not-a-dir"));
        let err = report.expect_err("unwritable scratch must fail");
        assert!(err.contains("/dev/null/not-a-dir"), "{err}");
    }
}
