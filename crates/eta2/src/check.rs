//! Differential correctness runner over the [`eta2_check`] harness.
//!
//! [`eta2_check`] (the leaf crate) owns the pieces with no engine
//! dependencies: the invariant gate (`ETA2_CHECK`), the seeded scenario
//! generator and the corpus format. This module closes the loop: it maps a
//! generated [`Scenario`] onto the *real* system and runs every op through
//! both members of each oracle pair, failing on any divergence:
//!
//! * **sharded [`ServeEngine`] vs its single-shard sequential twin** — by
//!   the per-domain decomposition invariant of
//!   [`DynamicExpertise::ingest_batch`](eta2_core::truth::dynamic::DynamicExpertise::ingest_batch),
//!   the two must agree bit-for-bit on every truth, every expertise value
//!   and the pending-queue depth after every op;
//! * **optimized MLE vs the frozen reference solver**
//!   ([`eta2_core::truth::reference`]) on the accumulated report mirror;
//! * **lazy-greedy heap allocator vs the full-scan oracle**
//!   ([`MaxQualityAllocator::allocate_scan`]).
//!
//! Engines run with count-triggered flushing disabled (`batch_capacity: 0`)
//! whenever the primary is sharded: an automatic flush partitions reports
//! into *different* MLE batches on different shard counts, and batch
//! partitioning legitimately changes the decayed-accumulator trajectory —
//! only [`Op::Tick`] points are comparable. When the primary itself has one
//! shard, the scenario's `flush_threshold` is applied to both twins, which
//! turns the pair into a pure determinism check with in-line flushes
//! exercised.
//!
//! Invariant breaches surface through whatever `ETA2_CHECK` mode is active
//! (see [`eta2_check::init_mode_from_env`]); the runner reports the breach
//! *delta* it produced so corpus replays fail loudly even in count mode.

/// Re-export of the leaf harness crate: the `ETA2_CHECK` gate
/// ([`gate::init_mode_from_env`], [`gate::set_mode`], [`gate::enabled`]),
/// breach accounting, the seeded scenario generator and the corpus format.
pub use eta2_check as gate;

pub mod crash;

use eta2_check::rng::SplitMix64;
use eta2_check::scenario::{Op, Scenario};
use eta2_core::allocation::{
    MaxQualityAllocator, MaxQualityConfig, MinCostAllocator, MinCostConfig,
};
use eta2_core::model::{
    DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId, UserProfile,
};
use eta2_core::truth::{reference, ExpertiseAwareMle, MleConfig, PARITY_REL_TOL};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use std::collections::BTreeSet;

/// A point where two members of an oracle pair disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the scenario that produced the disagreement.
    pub seed: u64,
    /// Index of the op after which the disagreement was observed
    /// (`ops.len()` means the runner's final implicit tick).
    pub op_index: usize,
    /// Which oracle pair disagreed.
    pub pair: &'static str,
    /// Human-readable description of the first mismatch found.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {:#x} op {} [{}]: {}",
            self.seed, self.op_index, self.pair, self.detail
        )
    }
}

/// What one scenario replay produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The replayed seed.
    pub seed: u64,
    /// Ops executed (excluding the final implicit tick).
    pub ops_run: usize,
    /// Invariant breaches recorded *during this run* (global breach-counter
    /// delta; always 0 unless an `ETA2_CHECK` mode is active).
    pub new_breaches: u64,
    /// First oracle-pair disagreement, if any. The run stops there.
    pub divergence: Option<Divergence>,
}

impl RunOutcome {
    /// Whether the replay was clean: no divergence and no new breaches.
    pub fn passed(&self) -> bool {
        self.divergence.is_none() && self.new_breaches == 0
    }
}

/// Generates and replays the scenario for `seed`.
pub fn run_seed(seed: u64) -> RunOutcome {
    run_scenario(&Scenario::generate(seed))
}

// `ServeConfig` is `#[non_exhaustive]`, so struct literals (including
// functional-record-update) are unavailable outside `eta2-serve`; mutating
// a default is the supported construction path.
#[allow(clippy::field_reassign_with_default)]
pub(crate) fn serve_cfg(n_users: usize, n_shards: usize, batch_capacity: usize) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.n_users = n_users;
    cfg.n_shards = n_shards;
    cfg.batch_capacity = batch_capacity;
    cfg.threads = 1;
    cfg
}

/// [`serve_cfg`] with the incremental-path switches set explicitly, for
/// the dirty-set twins (`incremental` / `warm_start` in [`ServeConfig`]).
fn serve_cfg_flags(
    n_users: usize,
    n_shards: usize,
    batch_capacity: usize,
    incremental: bool,
    warm_start: bool,
) -> ServeConfig {
    let mut cfg = serve_cfg(n_users, n_shards, batch_capacity);
    cfg.incremental = incremental;
    cfg.warm_start = warm_start;
    cfg
}

/// Mismatch-description labels for the sharded-vs-sequential pair.
const SHARDED_LABELS: (&str, &str) = ("sharded", "sequential");
/// Mismatch-description labels for the incremental-vs-full pair.
const INCREMENTAL_LABELS: (&str, &str) = ("incremental", "full-reconvergence");

/// Bit-compares the externally observable state of the two engines: truth
/// estimates for every registered task, expertise over the union of both
/// snapshots' domains, and the pending-queue depth. `labels` names the two
/// sides in the mismatch description.
pub(crate) fn state_divergence(
    eng: &ServeEngine,
    ora: &ServeEngine,
    task_ids: &[TaskId],
    labels: (&str, &str),
) -> Option<String> {
    let (la, lb) = labels;
    for &id in task_ids {
        let a = eng.truth(id);
        let b = ora.truth(id);
        if a != b {
            return Some(format!("truth of {id:?}: {la} {a:?} vs {lb} {b:?}"));
        }
    }
    let snap_a = eng.snapshot();
    let snap_b = ora.snapshot();
    let ma = snap_a.expertise_matrix();
    let mb = snap_b.expertise_matrix();
    let domains: BTreeSet<DomainId> = ma.domains().chain(mb.domains()).collect();
    let n_users = snap_a.n_users();
    for &d in &domains {
        for i in 0..n_users {
            let u = UserId(i as u32);
            let a = ma.get(u, d);
            let b = mb.get(u, d);
            if a.to_bits() != b.to_bits() {
                return Some(format!(
                    "expertise of user {i} in {d:?}: {la} {a} vs {lb} {b}"
                ));
            }
        }
    }
    if eng.queue_depth() != ora.queue_depth() {
        return Some(format!(
            "queue depth: {la} {} vs {lb} {}",
            eng.queue_depth(),
            ora.queue_depth()
        ));
    }
    None
}

/// Warm-start divergence tripwire: a warm-seeded solve applies the 5%
/// convergence criterion against the previous epoch's estimate, so it can
/// legitimately stop one sweep short of where a cold solve lands, and the
/// gap feeds forward through the decayed expertise accumulators. The
/// warm-start sweep in `crates/serve/standalone/serve_extract.rs` (and
/// DESIGN.md §13.2) shows the resulting relative gap is data-dependent
/// with a heavy tail under adversarial scenarios — tiny (< 0.01) on ~99%
/// of seeds but approaching the metric's mathematical ceiling of 2.0 when
/// the criterion stalls on slowly-contracting solves and the expertise
/// feedback loop compounds it. A constant gate below that ceiling would
/// therefore flake on unlucky seeds, so this oracle pins the structural
/// properties (presence, receipts, queue depth, finiteness) and uses the
/// ceiling itself as the quantitative bound: only NaN estimates or
/// sign-catastrophe corruption (stale seeds applied to the wrong task,
/// lost flushes) can trip it. Benign-workload warm accuracy is asserted
/// by the deterministic test in `crates/serve/src/engine.rs` instead.
pub(crate) const WARM_DIVERGENCE_BOUND: f64 = 2.0;

/// Compares the warm-started twin against the cold engine: identical task
/// presence and queue depth, every estimate finite, and each `mu` within
/// [`WARM_DIVERGENCE_BOUND`] of the cold value (relative to scale, with an
/// absolute floor of 1.0 so near-zero truths compare absolutely — report
/// values are O(10) except for injected `1e300` corruption, which the
/// scale-relative form absorbs).
fn warm_divergence(cold: &ServeEngine, warm: &ServeEngine, task_ids: &[TaskId]) -> Option<String> {
    for &id in task_ids {
        match (cold.truth(id), warm.truth(id)) {
            (None, None) => {}
            (Some(c), Some(w)) => {
                let rel = if c.mu.to_bits() == w.mu.to_bits() {
                    0.0
                } else {
                    (c.mu - w.mu).abs() / c.mu.abs().max(w.mu.abs()).max(1.0)
                };
                // `!(<=)` also catches a NaN `rel` (one side non-finite).
                if !(rel <= WARM_DIVERGENCE_BOUND) {
                    return Some(format!(
                        "truth of {id:?}: cold mu {} vs warm mu {} (rel {rel:.4})",
                        c.mu, w.mu
                    ));
                }
            }
            (c, w) => {
                return Some(format!(
                    "truth presence of {id:?}: cold {} vs warm {}",
                    c.is_some(),
                    w.is_some()
                ));
            }
        }
    }
    if cold.queue_depth() != warm.queue_depth() {
        return Some(format!(
            "queue depth: cold {} vs warm {}",
            cold.queue_depth(),
            warm.queue_depth()
        ));
    }
    None
}

/// Merges the truths of a set of flush outcomes into one map.
fn merged_truths(
    outcomes: &[eta2_serve::FlushOutcome],
) -> std::collections::BTreeMap<TaskId, eta2_core::truth::TruthEstimate> {
    let mut all = std::collections::BTreeMap::new();
    for o in outcomes {
        all.extend(o.truths.iter().map(|(&k, &v)| (k, v)));
    }
    all
}

/// Replays one scenario through every oracle pair.
///
/// The replay stops at the first divergence; invariant breaches behave
/// according to the active `ETA2_CHECK` mode (panicking in `panic` mode,
/// counting otherwise).
pub fn run_scenario(scenario: &Scenario) -> RunOutcome {
    let breaches_before = eta2_check::breach_count();
    let seed = scenario.seed;
    let n_users = scenario.config.n_users as usize;
    // Count-triggered flushes are only comparable when both twins flush at
    // identical points, i.e. when the primary is single-shard too.
    let cap_for = |shards: usize| {
        if shards == 1 {
            scenario.config.flush_threshold
        } else {
            0
        }
    };

    let mut eng = ServeEngine::new(serve_cfg(
        n_users,
        scenario.config.n_shards,
        cap_for(scenario.config.n_shards),
    ));
    let mut ora = ServeEngine::new(serve_cfg(n_users, 1, cap_for(scenario.config.n_shards)));

    // Incremental-path twins. Unlike the sharded-vs-sequential pair, all
    // three share the scenario's shard count, so count-triggered flushes
    // land at identical points and the scenario's `flush_threshold` can
    // stay enabled even when the primary pair must disable it: `inc` is
    // the default dirty-set engine, `full` re-enters every domain per
    // flush (`incremental: false`, the pre-PR-8 cost profile) and must
    // match `inc` bit-for-bit, `warm` additionally seeds the MLE from the
    // previous epoch's estimates and must stay inside the documented
    // divergence envelope.
    let shards = scenario.config.n_shards;
    let icap = scenario.config.flush_threshold;
    let mut inc = ServeEngine::new(serve_cfg_flags(n_users, shards, icap, true, false));
    let mut full = ServeEngine::new(serve_cfg_flags(n_users, shards, icap, false, false));
    let mut warm = ServeEngine::new(serve_cfg_flags(n_users, shards, icap, true, true));

    let mut task_ids: Vec<TaskId> = Vec::new();
    // Last-wins mirror of all finite reports since the previous tick: the
    // input the MLE-vs-reference pair is fed at every tick point.
    let mut mirror = ObservationSet::new();

    let mut diverged: Option<Divergence> = None;
    let mut ops_run = 0usize;
    let fail = |op_index: usize, pair: &'static str, detail: String| Divergence {
        seed,
        op_index,
        pair,
        detail,
    };

    'ops: for (i, op) in scenario.ops.iter().enumerate() {
        ops_run = i + 1;
        match op {
            Op::Register(specs) => {
                let batch: Vec<TaskSpec> = specs
                    .iter()
                    .map(|s| TaskSpec::new(DomainId(s.domain as u32), s.processing_time, s.cost))
                    .collect();
                let a = eng.register_tasks(&batch);
                let b = ora.register_tasks(&batch);
                if a != b {
                    diverged = Some(fail(
                        i,
                        "engine_vs_sequential",
                        format!("register ids: {a:?} vs {b:?}"),
                    ));
                    break 'ops;
                }
                let c = inc.register_tasks(&batch);
                let d = full.register_tasks(&batch);
                let e = warm.register_tasks(&batch);
                if c != a || d != a || e != a {
                    diverged = Some(fail(
                        i,
                        "incremental_vs_full",
                        format!("register ids: {a:?} vs inc {c:?} / full {d:?} / warm {e:?}"),
                    ));
                    break 'ops;
                }
                task_ids.extend(a.expect("valid specs by construction"));
            }
            Op::Submit(reports) => {
                let mut batch = ObservationSet::new();
                for r in reports {
                    let task = task_ids[r.task_index];
                    batch.insert(UserId(r.user as u32), task, r.value);
                    if r.value.is_finite() {
                        mirror.insert(UserId(r.user as u32), task, r.value);
                    }
                }
                let ra = eng.submit(&batch);
                let rb = ora.submit(&batch);
                let counts_a = (
                    ra.accepted,
                    ra.unknown_task,
                    ra.quarantined,
                    ra.flushes.len(),
                );
                let counts_b = (
                    rb.accepted,
                    rb.unknown_task,
                    rb.quarantined,
                    rb.flushes.len(),
                );
                if counts_a != counts_b {
                    diverged = Some(fail(
                        i,
                        "engine_vs_sequential",
                        format!("submit receipts: {counts_a:?} vs {counts_b:?}"),
                    ));
                    break 'ops;
                }
                if !ra.flushes.is_empty() {
                    // In-line flushes only occur in the single-shard twin
                    // setup, where both must fold identical batches.
                    mirror = ObservationSet::new();
                    let ta = merged_truths(&ra.flushes);
                    let tb = merged_truths(&rb.flushes);
                    if ta != tb {
                        diverged = Some(fail(
                            i,
                            "engine_vs_sequential",
                            format!("in-line flush truths differ: {ta:?} vs {tb:?}"),
                        ));
                        break 'ops;
                    }
                }
                let rc = inc.submit(&batch);
                let rd = full.submit(&batch);
                let re = warm.submit(&batch);
                let counts_c = (
                    rc.accepted,
                    rc.unknown_task,
                    rc.quarantined,
                    rc.flushes.len(),
                );
                let counts_d = (
                    rd.accepted,
                    rd.unknown_task,
                    rd.quarantined,
                    rd.flushes.len(),
                );
                // Routing and count-triggered flush points are independent
                // of the solve path, so all three twins must agree on the
                // receipt; only `warm`'s folded values may differ.
                let counts_e = (
                    re.accepted,
                    re.unknown_task,
                    re.quarantined,
                    re.flushes.len(),
                );
                if counts_c != counts_d || counts_c != counts_e {
                    diverged = Some(fail(
                        i,
                        "incremental_vs_full",
                        format!(
                            "submit receipts: inc {counts_c:?} vs full {counts_d:?} \
                             vs warm {counts_e:?}"
                        ),
                    ));
                    break 'ops;
                }
            }
            Op::Tick => {
                if let Some(d) = tick_both(&eng, &ora, &mut mirror, n_users, seed, i) {
                    diverged = Some(d);
                    break 'ops;
                }
                inc.tick();
                full.tick();
                warm.tick();
            }
            Op::Merge { kept, absorbed } => {
                let (k, a) = (DomainId(*kept as u32), DomainId(*absorbed as u32));
                eng.merge_domains(k, a);
                ora.merge_domains(k, a);
                inc.merge_domains(k, a);
                full.merge_domains(k, a);
                warm.merge_domains(k, a);
            }
            Op::CheckpointRestore => {
                let rs = scenario.config.restore_shards;
                let cap = cap_for(rs);
                eng = ServeEngine::restore(serve_cfg(n_users, rs, cap), eng.checkpoint());
                ora = ServeEngine::restore(serve_cfg(n_users, 1, cap), ora.checkpoint());
                // The incremental twins keep count-triggered flushing on
                // through the restore; `warm` continues warm-seeding from
                // its restored truths (the checkpoint carries them).
                inc = ServeEngine::restore(
                    serve_cfg_flags(n_users, rs, icap, true, false),
                    inc.checkpoint(),
                );
                full = ServeEngine::restore(
                    serve_cfg_flags(n_users, rs, icap, false, false),
                    full.checkpoint(),
                );
                warm = ServeEngine::restore(
                    serve_cfg_flags(n_users, rs, icap, true, true),
                    warm.checkpoint(),
                );
            }
            Op::Allocate {
                capacities,
                per_hour,
            } => {
                let users: Vec<UserProfile> = capacities
                    .iter()
                    .enumerate()
                    .map(|(u, &c)| UserProfile::new(UserId(u as u32), c))
                    .collect();
                let snap = eng.snapshot();
                let tasks: Vec<Task> = snap.tasks().values().copied().collect();
                let expertise = snap.expertise_matrix();
                let alloc = MaxQualityAllocator::new(MaxQualityConfig {
                    epsilon: 0.1,
                    use_approximation_pass: !per_hour,
                });
                let heap = alloc.allocate(&tasks, &users, &expertise);
                let scan = alloc.allocate_scan(&tasks, &users, &expertise);
                if heap != scan {
                    diverged = Some(fail(
                        i,
                        "alloc_heap_vs_scan",
                        format!(
                            "{} vs {} assignments",
                            heap.assignment_count(),
                            scan.assignment_count()
                        ),
                    ));
                    break 'ops;
                }
                let a = snap.allocate_max_quality(&task_ids, &users);
                let b = ora.snapshot().allocate_max_quality(&task_ids, &users);
                if a != b {
                    diverged = Some(fail(
                        i,
                        "engine_vs_sequential",
                        format!(
                            "snapshot allocations differ: {} vs {} assignments",
                            a.assignment_count(),
                            b.assignment_count()
                        ),
                    ));
                    break 'ops;
                }
            }
            Op::MinCost {
                round_budget,
                max_error,
            } => {
                let snap = eng.snapshot();
                let tasks: Vec<Task> = snap.tasks().values().copied().collect();
                let users: Vec<UserProfile> = (0..n_users)
                    .map(|u| UserProfile::new(UserId(u as u32), 8.0))
                    .collect();
                let cfg = MinCostConfig {
                    round_budget: *round_budget,
                    max_error: *max_error,
                    max_rounds: 20,
                    ..MinCostConfig::default()
                };
                // Deterministic synthetic crowd: values depend only on the
                // scenario seed, op index and the call sequence.
                let mut rng = SplitMix64::new(seed ^ 0x6d69_6e5f_636f_7374 ^ i as u64);
                let mut source = |_u: UserId, _t: &Task| rng.uniform(0.0, 10.0);
                let outcome = MinCostAllocator::new(cfg).allocate(
                    &tasks,
                    &users,
                    &snap.expertise_matrix(),
                    &mut source,
                );
                if !outcome.total_cost.is_finite() || outcome.rounds > cfg.max_rounds {
                    diverged = Some(fail(
                        i,
                        "min_cost_postcondition",
                        format!(
                            "total_cost {} after {} rounds (cap {})",
                            outcome.total_cost, outcome.rounds, cfg.max_rounds
                        ),
                    ));
                    break 'ops;
                }
            }
        }
        if diverged.is_none() {
            if let Some(detail) = state_divergence(&eng, &ora, &task_ids, SHARDED_LABELS) {
                diverged = Some(fail(i, "engine_vs_sequential", detail));
                break 'ops;
            }
            if let Some(detail) = state_divergence(&inc, &full, &task_ids, INCREMENTAL_LABELS) {
                diverged = Some(fail(i, "incremental_vs_full", detail));
                break 'ops;
            }
            if let Some(detail) = warm_divergence(&inc, &warm, &task_ids) {
                diverged = Some(fail(i, "warm_vs_cold", detail));
                break 'ops;
            }
        }
    }

    // Final implicit tick: drain everything so truncated prefixes (the
    // minimizer's probes) compare the same way full scenarios do.
    if diverged.is_none() {
        let end = scenario.ops.len();
        inc.tick();
        full.tick();
        warm.tick();
        diverged = tick_both(&eng, &ora, &mut mirror, n_users, seed, end)
            .or_else(|| {
                state_divergence(&eng, &ora, &task_ids, SHARDED_LABELS)
                    .map(|detail| fail(end, "engine_vs_sequential", detail))
            })
            .or_else(|| {
                state_divergence(&inc, &full, &task_ids, INCREMENTAL_LABELS)
                    .map(|detail| fail(end, "incremental_vs_full", detail))
            })
            .or_else(|| {
                warm_divergence(&inc, &warm, &task_ids)
                    .map(|detail| fail(end, "warm_vs_cold", detail))
            });
    }

    RunOutcome {
        seed,
        ops_run,
        new_breaches: eta2_check::breach_count() - breaches_before,
        divergence: diverged,
    }
}

/// Ticks both twins, comparing the folded truths, and runs the
/// MLE-vs-reference pair on the report mirror accumulated since the last
/// tick point.
fn tick_both(
    eng: &ServeEngine,
    ora: &ServeEngine,
    mirror: &mut ObservationSet,
    n_users: usize,
    seed: u64,
    op_index: usize,
) -> Option<Divergence> {
    let fa = eng.tick();
    let fb = ora.tick();
    let ta = merged_truths(&fa);
    let tb = merged_truths(&fb);
    if ta != tb {
        return Some(Divergence {
            seed,
            op_index,
            pair: "engine_vs_sequential",
            detail: format!("tick truths differ: {ta:?} vs {tb:?}"),
        });
    }
    if !mirror.is_empty() {
        let tasks: Vec<Task> = eng.snapshot().tasks().values().copied().collect();
        let cfg = MleConfig::default();
        let a = ExpertiseAwareMle::new(cfg).estimate_with_initial(
            &tasks,
            mirror,
            ExpertiseMatrix::new(n_users),
        );
        let b =
            reference::estimate_with_initial(&cfg, &tasks, mirror, ExpertiseMatrix::new(n_users));
        // Tolerance, not `==`: the vectorized solver's 4-lane accumulators
        // reassociate floating-point sums (see mle::PARITY_REL_TOL).
        if let Err(why) = eta2_core::truth::mle::results_match(&a, &b, PARITY_REL_TOL) {
            return Some(Divergence {
                seed,
                op_index,
                pair: "mle_vs_reference",
                detail: format!(
                    "optimized solver disagrees with frozen reference beyond \
                     tolerance {PARITY_REL_TOL}: {why}"
                ),
            });
        }
        *mirror = ObservationSet::new();
    }
    None
}

/// Shrinks a failing scenario to the shortest op prefix that still fails,
/// re-running the prefix from scratch at each step. Returns the scenario
/// unchanged when it does not fail at full length.
///
/// Run this with `ETA2_CHECK=1` (count mode): in panic mode the probe runs
/// abort on the first breach instead of reporting it.
pub fn minimize(scenario: &Scenario) -> Scenario {
    if run_scenario(scenario).passed() {
        return scenario.clone();
    }
    for n in 1..=scenario.ops.len() {
        let probe = scenario.truncated(n);
        if !run_scenario(&probe).passed() {
            return probe;
        }
    }
    scenario.clone()
}

/// Replays every seed, returning one outcome per seed (failures included —
/// the caller decides whether to stop or report them all).
pub fn run_seeds(seeds: &[u64]) -> Vec<RunOutcome> {
    seeds.iter().map(|&s| run_seed(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_seed_range_replays_clean() {
        // Differential comparisons hold without any ETA2_CHECK mode set;
        // this exercises the runner machinery itself.
        for seed in 0..8u64 {
            let outcome = run_seed(seed);
            assert!(
                outcome.divergence.is_none(),
                "seed {seed}: {}",
                outcome.divergence.unwrap()
            );
        }
    }

    #[test]
    fn minimize_returns_full_scenario_when_clean() {
        let s = Scenario::generate(3);
        let m = minimize(&s);
        assert_eq!(m.ops.len(), s.ops.len());
    }
}
