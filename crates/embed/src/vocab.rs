//! Vocabulary: word↔id mapping, counts, subsampling and the negative-
//! sampling distribution.

use crate::error::EmbedError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A vocabulary built from a token stream.
///
/// Provides the three services skip-gram training needs: id lookup,
/// frequency-based subsampling probabilities (Mikolov et al. 2013, Eq. 5),
/// and the unigram^0.75 distribution for negative sampling.
///
/// # Examples
///
/// ```
/// use eta2_embed::Vocabulary;
///
/// let sentences = vec![
///     vec!["the".to_string(), "noise".to_string(), "level".to_string()],
///     vec!["the".to_string(), "noise".to_string()],
/// ];
/// let vocab = Vocabulary::build(&sentences, 1)?;
/// assert_eq!(vocab.len(), 3);
/// assert_eq!(vocab.count(vocab.id("noise").unwrap()), 2);
/// # Ok::<(), eta2_embed::EmbedError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    counts: Vec<u64>,
    index: HashMap<String, u32>,
    total: u64,
    /// Cumulative unigram^0.75 weights for negative sampling.
    neg_cdf: Vec<f64>,
}

impl Vocabulary {
    /// Builds a vocabulary from tokenized sentences, keeping words that
    /// occur at least `min_count` times. Words are assigned ids in
    /// descending frequency order (ties broken lexicographically), which
    /// makes the construction deterministic.
    ///
    /// # Errors
    ///
    /// [`EmbedError::EmptyVocabulary`] if no word survives the cut.
    pub fn build(sentences: &[Vec<String>], min_count: u64) -> Result<Self, EmbedError> {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for sentence in sentences {
            for word in sentence {
                *freq.entry(word.as_str()).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(&str, u64)> = freq
            .into_iter()
            .filter(|&(_, c)| c >= min_count.max(1))
            .collect();
        if entries.is_empty() {
            return Err(EmbedError::EmptyVocabulary);
        }
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let words: Vec<String> = entries.iter().map(|&(w, _)| w.to_string()).collect();
        let counts: Vec<u64> = entries.iter().map(|&(_, c)| c).collect();
        let index: HashMap<String, u32> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i as u32))
            .collect();
        let total = counts.iter().sum();

        let mut neg_cdf = Vec::with_capacity(counts.len());
        let mut acc = 0.0;
        for &c in &counts {
            acc += (c as f64).powf(0.75);
            neg_cdf.push(acc);
        }

        Ok(Vocabulary {
            words,
            counts,
            index,
            total,
            neg_cdf,
        })
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never true for a built vocabulary).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The id of `word`, if present.
    pub fn id(&self, word: &str) -> Option<u32> {
        self.index.get(word).copied()
    }

    /// The word with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }

    /// Corpus frequency of the word with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Total token count over the kept vocabulary.
    pub fn total_tokens(&self) -> u64 {
        self.total
    }

    /// All words in id order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Probability of *keeping* an occurrence of word `id` under frequency
    /// subsampling with threshold `t` (word2vec's `-sample`):
    /// `p = (sqrt(f/t) + 1) · t/f`, clamped to `[0, 1]`, where `f` is the
    /// word's relative frequency.
    pub fn keep_probability(&self, id: u32, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        let f = self.counts[id as usize] as f64 / self.total as f64;
        (((f / t).sqrt() + 1.0) * (t / f)).min(1.0)
    }

    /// Draws one word id from the unigram^0.75 negative-sampling
    /// distribution.
    pub fn sample_negative<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let top = *self.neg_cdf.last().expect("non-empty vocabulary");
        let x = rng.gen_range(0.0..top);
        self.neg_cdf.partition_point(|&c| c <= x) as u32
    }

    /// Converts a tokenized sentence to ids, dropping out-of-vocabulary
    /// words.
    pub fn encode(&self, sentence: &[String]) -> Vec<u32> {
        sentence.iter().filter_map(|w| self.id(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy_sentences() -> Vec<Vec<String>> {
        let raw = [
            "the noise level near the building",
            "the noise is loud",
            "parking lots near the building",
        ];
        raw.iter().map(|s| crate::text::tokenize(s)).collect()
    }

    #[test]
    fn build_orders_by_frequency() {
        let v = Vocabulary::build(&toy_sentences(), 1).unwrap();
        // "the" occurs 4 times and must take id 0.
        assert_eq!(v.id("the"), Some(0));
        assert_eq!(v.count(0), 4);
        assert_eq!(v.word(0), "the");
    }

    #[test]
    fn min_count_filters_rare_words() {
        let v = Vocabulary::build(&toy_sentences(), 2).unwrap();
        assert!(v.id("loud").is_none());
        assert!(v.id("noise").is_some());
    }

    #[test]
    fn build_rejects_empty() {
        assert_eq!(
            Vocabulary::build(&[], 1).unwrap_err(),
            EmbedError::EmptyVocabulary
        );
        let v: Vec<Vec<String>> = vec![vec!["rare".into()]];
        assert_eq!(
            Vocabulary::build(&v, 5).unwrap_err(),
            EmbedError::EmptyVocabulary
        );
    }

    #[test]
    fn build_is_deterministic() {
        let a = Vocabulary::build(&toy_sentences(), 1).unwrap();
        let b = Vocabulary::build(&toy_sentences(), 1).unwrap();
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn keep_probability_suppresses_frequent_words() {
        let v = Vocabulary::build(&toy_sentences(), 1).unwrap();
        let the = v.id("the").unwrap();
        let loud = v.id("loud").unwrap();
        let t = 0.01;
        assert!(v.keep_probability(the, t) < v.keep_probability(loud, t));
        assert!((0.0..=1.0).contains(&v.keep_probability(the, t)));
        // t = 0 disables subsampling.
        assert_eq!(v.keep_probability(the, 0.0), 1.0);
    }

    #[test]
    fn negative_sampling_follows_powered_unigram() {
        let v = Vocabulary::build(&toy_sentences(), 1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let draws = 60_000;
        let mut hist = vec![0u64; v.len()];
        for _ in 0..draws {
            hist[v.sample_negative(&mut rng) as usize] += 1;
        }
        // Every word must be sampled at least once and "the" (most frequent)
        // must dominate the rarest.
        assert!(hist.iter().all(|&h| h > 0));
        let the = v.id("the").unwrap() as usize;
        let loud = v.id("loud").unwrap() as usize;
        assert!(hist[the] > hist[loud]);
        // Check the ratio against (4/1)^0.75 ≈ 2.83 within sampling noise.
        let ratio = hist[the] as f64 / hist[loud] as f64;
        assert!((ratio - 4f64.powf(0.75)).abs() < 0.4, "ratio = {ratio}");
    }

    #[test]
    fn encode_drops_oov() {
        let v = Vocabulary::build(&toy_sentences(), 1).unwrap();
        let ids = v.encode(&crate::text::tokenize("the unknown noise"));
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], v.id("the").unwrap());
        assert_eq!(ids[1], v.id("noise").unwrap());
    }
}
