//! Trained word embeddings with additive phrase composition.

use crate::error::EmbedError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A set of word vectors produced by [`crate::skipgram::SkipGramTrainer`].
///
/// Multi-word phrases are embedded with the element-wise additive model the
/// paper adopts from Mikolov et al. (`V = x₁ + x₂ + … + x_l`, §3.2).
///
/// # Examples
///
/// ```
/// use eta2_embed::Embedding;
///
/// let emb = Embedding::from_vectors(
///     vec![("noise".into(), vec![1.0, 0.0]), ("level".into(), vec![0.0, 1.0])],
/// )?;
/// let phrase = emb.phrase_vector(&["noise".into(), "level".into()]).unwrap();
/// assert_eq!(phrase, vec![1.0, 1.0]);
/// # Ok::<(), eta2_embed::EmbedError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    dim: usize,
    words: Vec<String>,
    index: HashMap<String, usize>,
    // Row-major `words.len() × dim`.
    vectors: Vec<f32>,
}

impl Embedding {
    /// Builds an embedding from explicit `(word, vector)` pairs.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::EmptyVocabulary`] for an empty input.
    /// * [`EmbedError::DimensionMismatch`] if vectors differ in length.
    pub fn from_vectors(pairs: Vec<(String, Vec<f32>)>) -> Result<Self, EmbedError> {
        let dim = match pairs.first() {
            None => return Err(EmbedError::EmptyVocabulary),
            Some((_, v)) => v.len(),
        };
        let mut words = Vec::with_capacity(pairs.len());
        let mut vectors = Vec::with_capacity(pairs.len() * dim);
        let mut index = HashMap::with_capacity(pairs.len());
        for (word, vec) in pairs {
            if vec.len() != dim {
                return Err(EmbedError::DimensionMismatch {
                    left: dim,
                    right: vec.len(),
                });
            }
            index.insert(word.clone(), words.len());
            words.push(word);
            vectors.extend_from_slice(&vec);
        }
        Ok(Embedding {
            dim,
            words,
            index,
            vectors,
        })
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the embedding holds no words (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All words, in id order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// The vector of `word`, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        self.index
            .get(word)
            .map(|&i| &self.vectors[i * self.dim..(i + 1) * self.dim])
    }

    /// Additive phrase vector: the element-wise sum of the known words'
    /// vectors. Returns `None` if *no* word of the phrase is in vocabulary.
    pub fn phrase_vector(&self, words: &[String]) -> Option<Vec<f32>> {
        let mut sum = vec![0.0f32; self.dim];
        let mut any = false;
        for w in words {
            if let Some(v) = self.vector(w) {
                for (s, x) in sum.iter_mut().zip(v) {
                    *s += x;
                }
                any = true;
            }
        }
        any.then_some(sum)
    }

    /// Cosine similarity between two in-vocabulary words.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f64> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        Some(cosine(va, vb))
    }

    /// The `k` nearest in-vocabulary words to `word` by cosine similarity,
    /// excluding `word` itself, best first.
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f64)> {
        let Some(target) = self.vector(word) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f64)> = self
            .words
            .iter()
            .filter(|w| w.as_str() != word)
            .map(|w| {
                let v = self.vector(w).expect("word in index");
                (w.clone(), cosine(target, v))
            })
            .collect();
        // Descending by IEEE total order: a NaN similarity (possible only
        // if stored vectors carry NaN components) sorts to the front
        // instead of panicking the comparator.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors (0 if either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += (x as f64).powi(2);
        nb += (y as f64).powi(2);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Squared Euclidean distance of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Embedding {
        Embedding::from_vectors(vec![
            ("a".into(), vec![1.0, 0.0]),
            ("b".into(), vec![0.0, 1.0]),
            ("c".into(), vec![1.0, 1.0]),
        ])
        .unwrap()
    }

    #[test]
    fn from_vectors_validation() {
        assert_eq!(
            Embedding::from_vectors(vec![]).unwrap_err(),
            EmbedError::EmptyVocabulary
        );
        let err =
            Embedding::from_vectors(vec![("a".into(), vec![1.0]), ("b".into(), vec![1.0, 2.0])])
                .unwrap_err();
        assert_eq!(err, EmbedError::DimensionMismatch { left: 1, right: 2 });
    }

    #[test]
    fn vector_lookup() {
        let e = toy();
        assert_eq!(e.vector("a"), Some(&[1.0f32, 0.0][..]));
        assert_eq!(e.vector("zzz"), None);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn phrase_vector_adds_and_skips_oov() {
        let e = toy();
        let v = e
            .phrase_vector(&["a".into(), "b".into(), "oov".into()])
            .unwrap();
        assert_eq!(v, vec![1.0, 1.0]);
        assert_eq!(e.phrase_vector(&["oov".into()]), None);
        assert_eq!(e.phrase_vector(&[]), None);
    }

    #[test]
    fn cosine_basics() {
        let e = toy();
        assert!((e.cosine("a", "b").unwrap()).abs() < 1e-9);
        assert!((e.cosine("a", "a").unwrap() - 1.0).abs() < 1e-9);
        let ac = e.cosine("a", "c").unwrap();
        assert!((ac - 1.0 / 2f64.sqrt()).abs() < 1e-6);
        assert_eq!(e.cosine("a", "zzz"), None);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn nearest_orders_by_similarity() {
        let e = toy();
        let near = e.nearest("a", 2);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].0, "c"); // closer to a than b is
        assert_eq!(near[1].0, "b");
        assert!(e.nearest("zzz", 3).is_empty());
    }

    #[test]
    fn nearest_tolerates_nan_vectors() {
        // A vector with a NaN component yields NaN similarities; the sort
        // must not panic, and finite neighbours must still be ordered.
        let e = Embedding::from_vectors(vec![
            ("a".into(), vec![1.0, 0.0]),
            ("poison".into(), vec![f32::NAN, 1.0]),
            ("c".into(), vec![1.0, 1.0]),
            ("b".into(), vec![0.0, 1.0]),
        ])
        .unwrap();
        let near = e.nearest("a", 4);
        assert_eq!(near.len(), 3);
        let finite: Vec<&str> = near
            .iter()
            .filter(|(_, s)| s.is_finite())
            .map(|(w, _)| w.as_str())
            .collect();
        assert_eq!(finite, ["c", "b"]);
    }

    #[test]
    fn squared_euclidean_matches_hand_value() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn squared_euclidean_length_mismatch_panics() {
        squared_euclidean(&[1.0], &[1.0, 2.0]);
    }
}
