//! Word-embedding substrate for the ETA² reproduction.
//!
//! ETA² (§3.2) extracts semantic information from crowdsourcing task
//! descriptions with a *pair-word* method: each description yields a Query
//! term and a Target term, both embedded with skip-gram word vectors and an
//! element-wise additive model for multi-word phrases; the distance between
//! two tasks is Eq. 2 of the paper. This crate implements the full stack:
//!
//! * [`text`] — tokenizer and stopword list.
//! * [`vocab`] — vocabulary with frequency-based subsampling and the
//!   unigram^0.75 negative-sampling distribution.
//! * [`corpus`] — a deterministic topic-structured corpus generator that
//!   substitutes for the Wikipedia dump the paper trains on (see DESIGN.md
//!   §3: clustering only consumes relative distances, which the topical
//!   co-occurrence structure induces).
//! * [`skipgram`] — a from-scratch Continuous Skip-gram trainer with
//!   negative sampling (Mikolov et al. 2013), SGD and linear learning-rate
//!   decay.
//! * [`embedding`] — the trained embedding matrix with additive phrase
//!   composition.
//! * [`pairword`] — Query/Target extraction and the Eq. 2 task distance.
//!
//! # Examples
//!
//! ```
//! use eta2_embed::corpus::TopicCorpus;
//! use eta2_embed::skipgram::{SkipGramConfig, SkipGramTrainer};
//! use eta2_embed::pairword::PairWordExtractor;
//!
//! let corpus = TopicCorpus::builtin().generate(200, 42);
//! let embedding = SkipGramTrainer::new(SkipGramConfig {
//!     dim: 16,
//!     epochs: 2,
//!     ..SkipGramConfig::default()
//! })
//! .train_sentences(&corpus)?;
//!
//! let extractor = PairWordExtractor::default();
//! let a = extractor.extract("What is the noise level around the municipal building?");
//! assert!(!a.query.is_empty());
//! # Ok::<(), eta2_embed::EmbedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod embedding;
pub mod error;
pub mod pairword;
pub mod skipgram;
pub mod text;
pub mod vocab;

pub use embedding::Embedding;
pub use error::EmbedError;
pub use pairword::{PairWordExtractor, TaskSemantics};
pub use skipgram::{SkipGramConfig, SkipGramTrainer};
pub use vocab::Vocabulary;
