//! Tokenization and stopwords.
//!
//! Task descriptions in mobile crowdsourcing are short English sentences
//! ("What is the noise level around the municipal building?"), so a simple
//! lowercase alphanumeric tokenizer plus a compact stopword list is all the
//! pair-word extractor needs.

/// English stopwords relevant to short interrogative task descriptions.
///
/// Kept deliberately small: wh-words are *not* here because the pair-word
/// extractor keys on them before discarding them.
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "will",
    "would",
    "can",
    "could",
    "should",
    "shall",
    "may",
    "might",
    "must",
    "of",
    "in",
    "on",
    "at",
    "to",
    "for",
    "from",
    "by",
    "with",
    "about",
    "into",
    "through",
    "during",
    "before",
    "after",
    "above",
    "below",
    "between",
    "under",
    "around",
    "near",
    "this",
    "that",
    "these",
    "those",
    "there",
    "here",
    "it",
    "its",
    "they",
    "them",
    "their",
    "we",
    "our",
    "you",
    "your",
    "i",
    "my",
    "me",
    "he",
    "she",
    "his",
    "her",
    "and",
    "or",
    "but",
    "not",
    "no",
    "so",
    "if",
    "then",
    "than",
    "as",
    "up",
    "down",
    "out",
    "off",
    "over",
    "again",
    "today",
    "now",
    "currently",
    "please",
    "estimated",
    "average",
];

/// Prepositions that typically separate a Query term from a Target term in a
/// task description ("noise level **around** the municipal building").
pub const TERM_SEPARATORS: &[&str] = &[
    "of", "at", "in", "on", "around", "near", "to", "for", "from", "by", "inside", "outside",
    "within", "between", "during",
];

/// Lowercases and splits `text` into alphanumeric tokens.
///
/// Apostrophes are dropped in place (so `"what's"` → `"whats"` stays one
/// token); every other non-alphanumeric byte separates tokens.
///
/// # Examples
///
/// ```
/// use eta2_embed::text::tokenize;
///
/// let toks = tokenize("What is the noise level around the municipal building?");
/// assert_eq!(toks[0], "what");
/// assert_eq!(toks.last().unwrap(), "building");
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch == '\'' {
            continue;
        }
        if ch.is_alphanumeric() {
            for c in ch.to_lowercase() {
                current.push(c);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Whether `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Whether `word` is one of the Query/Target separator prepositions.
pub fn is_separator(word: &str) -> bool {
    TERM_SEPARATORS.contains(&word)
}

/// Tokenizes and drops stopwords — the "content words" of a description.
pub fn content_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|w| !is_stopword(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_handles_punctuation_and_case() {
        assert_eq!(
            tokenize("How many STUDENTS, attended(the)seminar?"),
            vec!["how", "many", "students", "attended", "the", "seminar"]
        );
    }

    #[test]
    fn tokenize_drops_apostrophes_in_place() {
        assert_eq!(tokenize("what's up"), vec!["whats", "up"]);
    }

    #[test]
    fn tokenize_empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!... --- ***").is_empty());
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(tokenize("route 66 speed"), vec!["route", "66", "speed"]);
    }

    #[test]
    fn stopwords_are_lowercase_and_detected() {
        for w in STOPWORDS {
            assert_eq!(&w.to_lowercase(), w);
            assert!(is_stopword(w));
        }
        assert!(!is_stopword("noise"));
    }

    #[test]
    fn separators_are_a_subset_of_reasonable_prepositions() {
        assert!(is_separator("around"));
        assert!(is_separator("of"));
        assert!(!is_separator("noise"));
    }

    #[test]
    fn content_words_strip_stopwords() {
        let words = content_words("What is the noise level around the municipal building?");
        assert_eq!(
            words,
            vec!["what", "noise", "level", "municipal", "building"]
        );
    }
}
