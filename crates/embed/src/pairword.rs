//! The pair-word semantic extractor and the Eq. 2 task distance (§3.2).
//!
//! Each task description yields a **Query** term (what is asked for — "noise
//! level") and a **Target** term (the entity it is asked about — "municipal
//! building"). Both are embedded with the additive phrase model and
//! concatenated; the distance between two tasks is
//!
//! ```text
//! E(i, j) = ½ (‖V_Q^i − V_Q^j‖² + ‖V_T^i − V_T^j‖²)      (Eq. 2)
//! ```
//!
//! The paper identifies Query/Target manually in its examples; this module
//! implements a deterministic heuristic extractor good enough for templated
//! crowdsourcing descriptions: the Query is the first content-word chunk
//! after the interrogative head, the Target is the content-word chunk after
//! the first separating preposition (with a halves-split fallback).

use crate::embedding::{squared_euclidean, Embedding};
use crate::text::{is_separator, is_stopword, tokenize};
use serde::{Deserialize, Serialize};

/// The semantic decomposition of one task description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSemantics {
    /// Query term — the words describing the requirement.
    pub query: Vec<String>,
    /// Target term — the words naming the desired entity/location.
    pub target: Vec<String>,
}

impl TaskSemantics {
    /// The concatenated semantic vector `[V_Q, V_T]` under `embedding`.
    ///
    /// Either half may fall back to the other when all of its words are
    /// out-of-vocabulary; returns `None` only when *both* halves are fully
    /// out-of-vocabulary.
    pub fn semantic_vector(&self, embedding: &Embedding) -> Option<Vec<f32>> {
        let q = embedding.phrase_vector(&self.query);
        let t = embedding.phrase_vector(&self.target);
        let (q, t) = match (q, t) {
            (Some(q), Some(t)) => (q, t),
            (Some(q), None) => (q.clone(), q),
            (None, Some(t)) => (t.clone(), t),
            (None, None) => return None,
        };
        let mut v = q;
        v.extend_from_slice(&t);
        Some(v)
    }
}

/// Eq. 2: the semantic distance between two concatenated `[V_Q, V_T]`
/// vectors, `½(‖ΔV_Q‖² + ‖ΔV_T‖²)` — which is simply half the squared
/// Euclidean distance of the concatenations.
///
/// # Panics
///
/// Panics if the vectors differ in length or have odd length.
pub fn pairword_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "semantic vector length mismatch");
    assert_eq!(
        a.len() % 2,
        0,
        "semantic vectors must be concatenated pairs"
    );
    0.5 * squared_euclidean(a, b)
}

/// Heuristic Query/Target extractor.
///
/// # Examples
///
/// ```
/// use eta2_embed::PairWordExtractor;
///
/// let ex = PairWordExtractor::default();
/// let s = ex.extract("What is the noise level around the municipal building?");
/// assert_eq!(s.query, vec!["noise", "level"]);
/// assert_eq!(s.target, vec!["municipal", "building"]);
///
/// let s = ex.extract("How many students have attended the seminar today?");
/// assert_eq!(s.query, vec!["students"]);
/// assert_eq!(s.target, vec!["seminar"]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairWordExtractor {
    _private: (),
}

impl PairWordExtractor {
    /// Creates an extractor (equivalent to `default()`).
    pub fn new() -> Self {
        PairWordExtractor::default()
    }

    /// Extracts Query and Target terms from a task description.
    ///
    /// Never returns two empty terms for a description containing at least
    /// one content word: the fallback splits the content words in half.
    pub fn extract(&self, description: &str) -> TaskSemantics {
        let tokens = tokenize(description);

        // Skip the interrogative head: leading wh-words and auxiliaries
        // ("what is the", "how many", "how long does it take").
        let mut start = 0;
        while start < tokens.len() {
            let t = tokens[start].as_str();
            let is_head = matches!(
                t,
                "what"
                    | "which"
                    | "how"
                    | "when"
                    | "where"
                    | "who"
                    | "whats"
                    | "many"
                    | "much"
                    | "long"
                    | "often"
            ) || is_stopword(t);
            if is_head {
                start += 1;
            } else {
                break;
            }
        }

        // Query: content words until the first separator; Target: content
        // words after it. Verbs commonly linking the two ("attended",
        // "spent") are not in the stopword list, so strip a small set of
        // generic verbs from chunk boundaries.
        let mut query = Vec::new();
        let mut target = Vec::new();
        let mut seen_separator = false;
        for tok in &tokens[start..] {
            let t = tok.as_str();
            if is_separator(t) || is_linking_verb(t) {
                if !query.is_empty() {
                    seen_separator = true;
                }
                continue;
            }
            if is_stopword(t) || is_wh(t) {
                continue;
            }
            if seen_separator {
                target.push(tok.clone());
            } else {
                query.push(tok.clone());
            }
        }

        // Fallback: no separator found — split content words in half
        // (favoring the query for odd counts).
        if target.is_empty() && query.len() > 1 {
            let mid = query.len().div_ceil(2);
            target = query.split_off(mid);
        }
        TaskSemantics { query, target }
    }
}

/// Generic verbs that link a Query chunk to a Target chunk in templated
/// descriptions ("students **attended** the seminar").
fn is_linking_verb(word: &str) -> bool {
    matches!(
        word,
        "attended"
            | "attend"
            | "visiting"
            | "visit"
            | "open"
            | "opened"
            | "required"
            | "require"
            | "take"
            | "takes"
            | "spent"
            | "spend"
            | "reported"
            | "report"
            | "serving"
            | "serve"
            | "charged"
            | "charge"
    )
}

fn is_wh(word: &str) -> bool {
    matches!(
        word,
        "what" | "which" | "how" | "when" | "where" | "who" | "whats" | "many" | "much"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TopicCorpus;
    use crate::skipgram::{SkipGramConfig, SkipGramTrainer};

    #[test]
    fn extracts_paper_examples() {
        let ex = PairWordExtractor::new();
        let t1 = ex.extract("What is the noise level around the municipal building?");
        assert_eq!(t1.query, vec!["noise", "level"]);
        assert_eq!(t1.target, vec!["municipal", "building"]);

        let t2 = ex.extract("How many students have attended the seminar today?");
        assert_eq!(t2.query, vec!["students"]);
        assert_eq!(t2.target, vec!["seminar"]);
    }

    #[test]
    fn fallback_splits_halves_without_separator() {
        let ex = PairWordExtractor::new();
        let s = ex.extract("Current cafeteria pizza price?");
        assert!(!s.query.is_empty());
        assert!(!s.target.is_empty());
        let all: Vec<String> = s.query.iter().chain(&s.target).cloned().collect();
        assert_eq!(all, vec!["current", "cafeteria", "pizza", "price"]);
    }

    #[test]
    fn single_content_word_goes_to_query() {
        let ex = PairWordExtractor::new();
        let s = ex.extract("What is the temperature?");
        assert_eq!(s.query, vec!["temperature"]);
        assert!(s.target.is_empty());
    }

    #[test]
    fn empty_description_yields_empty_semantics() {
        let ex = PairWordExtractor::new();
        let s = ex.extract("???");
        assert!(s.query.is_empty() && s.target.is_empty());
    }

    #[test]
    fn extraction_is_deterministic() {
        let ex = PairWordExtractor::new();
        let d = "What is the average salary for entry level software engineers?";
        assert_eq!(ex.extract(d), ex.extract(d));
    }

    fn trained_embedding() -> Embedding {
        let sentences = TopicCorpus::builtin().generate(300, 11);
        SkipGramTrainer::new(SkipGramConfig {
            dim: 16,
            epochs: 3,
            ..SkipGramConfig::default()
        })
        .train_sentences(&sentences)
        .unwrap()
    }

    #[test]
    fn semantic_vector_concatenates() {
        let emb = trained_embedding();
        let s = TaskSemantics {
            query: vec!["noise".into(), "level".into()],
            target: vec!["building".into()],
        };
        let v = s.semantic_vector(&emb).unwrap();
        assert_eq!(v.len(), 2 * emb.dim());
    }

    #[test]
    fn semantic_vector_oov_fallbacks() {
        let emb = trained_embedding();
        let only_query = TaskSemantics {
            query: vec!["noise".into()],
            target: vec!["zzzz".into()],
        };
        assert!(only_query.semantic_vector(&emb).is_some());
        let nothing = TaskSemantics {
            query: vec!["zzzz".into()],
            target: vec!["qqqq".into()],
        };
        assert!(nothing.semantic_vector(&emb).is_none());
    }

    #[test]
    fn eq2_distance_same_topic_smaller_than_cross_topic() {
        let emb = trained_embedding();
        let ex = PairWordExtractor::new();
        let noise_a = ex
            .extract("What is the noise level around the municipal building?")
            .semantic_vector(&emb)
            .unwrap();
        let noise_b = ex
            .extract("What is the decibel measurement near the construction street?")
            .semantic_vector(&emb)
            .unwrap();
        let parking = ex
            .extract("How many parking spots are open in the garage?")
            .semantic_vector(&emb)
            .unwrap();
        let same = pairword_distance(&noise_a, &noise_b);
        let cross = pairword_distance(&noise_a, &parking);
        assert!(
            same < cross,
            "same-topic distance {same:.4} not below cross-topic {cross:.4}"
        );
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let emb = trained_embedding();
        let ex = PairWordExtractor::new();
        let v = ex
            .extract("What is the noise level around the municipal building?")
            .semantic_vector(&emb)
            .unwrap();
        let w = ex
            .extract("How many parking spots are open in the garage?")
            .semantic_vector(&emb)
            .unwrap();
        assert_eq!(pairword_distance(&v, &v), 0.0);
        assert!((pairword_distance(&v, &w) - pairword_distance(&w, &v)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "semantic vector length mismatch")]
    fn distance_rejects_mismatched_lengths() {
        pairword_distance(&[1.0, 2.0], &[1.0, 2.0, 3.0, 4.0]);
    }
}
