//! Continuous Skip-gram with negative sampling, from scratch.
//!
//! This is the training algorithm the paper uses for its lexical
//! representations (§3.2, citing Mikolov et al. 2013): for each
//! (center, context) pair inside a randomly shrunk window, take one positive
//! update and `negative` sampled negative updates against the logistic loss,
//! with SGD and a linearly decaying learning rate. Frequency subsampling
//! follows word2vec's `-sample` formula (see
//! [`crate::vocab::Vocabulary::keep_probability`]).
//!
//! # Performance architecture
//!
//! The logistic function is served from a 4096-interval interpolated table
//! (word2vec's own trick), whose error is below f32 resolution — the
//! `lut_*` tests bound both the pointwise error and the end-to-end effect
//! on trained vectors. Training is sequential by default and fully
//! deterministic given the seed; setting [`SkipGramConfig::threads`] > 1
//! opts into a lock-free *Hogwild* trainer (Niu et al. 2011): sentences
//! are sharded contiguously across workers with per-shard seeded RNGs,
//! weights live in relaxed `AtomicU32` bit patterns (element races lose an
//! update but can never tear a float), and the learning rate decays along
//! a shared atomic step counter. Hogwild output depends on thread
//! interleaving, so the sequential path remains the determinism target —
//! the parallel one is a throughput option for large corpora.
//!
//! The SGNS inner loops (the center·target dot product and the fused
//! grad/output update) run over contiguous row slices in four independent
//! f32 lanes, so the multiplies pipeline and autovectorize instead of
//! serializing on the FP-add chain. Lane reassociation changes the
//! floating-point rounding, so the pre-vectorization scalar kernel is kept
//! frozen ([`SkipGramTrainer::train_encoded_reference`]) as the perf
//! baseline and as the anchor of the `vectorized_*` cosine-parity test —
//! the same parity-vs-tolerance contract the MLE kernel documents in
//! DESIGN.md §15. Trained pairs are counted on the `sg.pairs` metric
//! (one bump per center word), which is how `perf_suite` derives
//! pairs/sec.

use crate::embedding::Embedding;
use crate::error::EmbedError;
use crate::vocab::Vocabulary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hyperparameters for skip-gram training.
///
/// The defaults are sized for the bundled topic corpus (small vocabulary,
/// strong topical signal), not for Wikipedia-scale text.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum context window; per pair the effective window is drawn from
    /// `1..=window` as in word2vec.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to `lr_end`.
    pub lr_start: f64,
    /// Final learning rate.
    pub lr_end: f64,
    /// Frequency-subsampling threshold (`0` disables).
    pub subsample_t: f64,
    /// Drop words rarer than this from the vocabulary.
    pub min_count: u64,
    /// RNG seed — sequential training is fully deterministic given the
    /// seed.
    pub seed: u64,
    /// Worker threads: `1` (the default) trains sequentially and
    /// deterministically; `0` uses one Hogwild worker per available core,
    /// `n` exactly `n`. Hogwild training is *not* bit-reproducible — its
    /// result depends on thread interleaving — so keep the default
    /// wherever determinism matters (every simulation path does).
    #[serde(default = "default_sg_threads")]
    pub threads: usize,
}

fn default_sg_threads() -> usize {
    1
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 32,
            window: 4,
            negative: 5,
            epochs: 5,
            lr_start: 0.05,
            lr_end: 0.0001,
            subsample_t: 1e-3,
            min_count: 2,
            seed: 0x5eed,
            threads: default_sg_threads(),
        }
    }
}

impl SkipGramConfig {
    fn validate(&self) -> Result<(), EmbedError> {
        if self.dim == 0 {
            return Err(EmbedError::InvalidConfig {
                field: "dim",
                reason: "must be > 0",
            });
        }
        if self.window == 0 {
            return Err(EmbedError::InvalidConfig {
                field: "window",
                reason: "must be > 0",
            });
        }
        if self.epochs == 0 {
            return Err(EmbedError::InvalidConfig {
                field: "epochs",
                reason: "must be > 0",
            });
        }
        // NaN falls through `<=` but is caught by the finiteness check.
        if self.lr_start <= 0.0 || !self.lr_start.is_finite() {
            return Err(EmbedError::InvalidConfig {
                field: "lr_start",
                reason: "must be finite and > 0",
            });
        }
        if self.lr_end < 0.0 || self.lr_end > self.lr_start {
            return Err(EmbedError::InvalidConfig {
                field: "lr_end",
                reason: "must satisfy 0 <= lr_end <= lr_start",
            });
        }
        Ok(())
    }
}

/// Skip-gram trainer.
///
/// # Examples
///
/// ```
/// use eta2_embed::corpus::TopicCorpus;
/// use eta2_embed::{SkipGramConfig, SkipGramTrainer};
///
/// let sentences = TopicCorpus::builtin().generate(100, 3);
/// let emb = SkipGramTrainer::new(SkipGramConfig {
///     dim: 8,
///     epochs: 1,
///     ..SkipGramConfig::default()
/// })
/// .train_sentences(&sentences)?;
/// assert_eq!(emb.dim(), 8);
/// assert!(emb.vector("parking").is_some());
/// # Ok::<(), eta2_embed::EmbedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SkipGramTrainer {
    config: SkipGramConfig,
}

impl SkipGramTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: SkipGramConfig) -> Self {
        SkipGramTrainer { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &SkipGramConfig {
        &self.config
    }

    /// Builds a vocabulary from `sentences` and trains embeddings.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::InvalidConfig`] for a bad configuration.
    /// * [`EmbedError::EmptyVocabulary`] if no word meets `min_count`.
    pub fn train_sentences(&self, sentences: &[Vec<String>]) -> Result<Embedding, EmbedError> {
        self.config.validate()?;
        let vocab = Vocabulary::build(sentences, self.config.min_count)?;
        let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode(s)).collect();
        Ok(self.train_encoded(&vocab, &encoded))
    }

    /// Trains on pre-encoded sentences against an existing vocabulary.
    ///
    /// Dispatches to the deterministic sequential trainer, or to the
    /// Hogwild trainer when [`SkipGramConfig::threads`] resolves to more
    /// than one worker and there is enough work to shard.
    pub fn train_encoded(&self, vocab: &Vocabulary, sentences: &[Vec<u32>]) -> Embedding {
        let threads = eta2_par::Parallelism::from_threads(self.config.threads).resolve();
        if threads <= 1 || sentences.len() < 2 {
            self.train_encoded_with(vocab, sentences, sigmoid, train_pair::<StdRng>)
        } else {
            self.train_encoded_hogwild(vocab, sentences, threads.min(sentences.len()))
        }
    }

    /// The frozen pre-vectorization trainer: identical driver, scalar
    /// [`train_pair_reference`] inner loops. Kept (like `truth::reference`)
    /// as the "before" column of `BENCH_perf.json` and as the anchor of the
    /// vectorization cosine-parity test; not part of the supported API.
    pub fn train_encoded_reference(&self, vocab: &Vocabulary, sentences: &[Vec<u32>]) -> Embedding {
        self.train_encoded_with(vocab, sentences, sigmoid, train_pair_reference::<StdRng>)
    }

    /// The sequential trainer, parameterized over the logistic function
    /// (so the LUT can be tested end-to-end against the exact sigmoid) and
    /// over the pair kernel (so the frozen scalar reference shares this
    /// driver — including the `sg.pairs` accounting — exactly).
    fn train_encoded_with(
        &self,
        vocab: &Vocabulary,
        sentences: &[Vec<u32>],
        sig: fn(f32) -> f32,
        pair: PairFn,
    ) -> Embedding {
        let cfg = &self.config;
        let n = vocab.len();
        let dim = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // word2vec init: input vectors uniform in [-0.5/dim, 0.5/dim),
        // output vectors zero.
        let mut w_in: Vec<f32> = (0..n * dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
            .collect();
        let mut w_out: Vec<f32> = vec![0.0; n * dim];

        // Estimate total training pairs for the LR schedule.
        let tokens_per_epoch: usize = sentences.iter().map(Vec::len).sum();
        let total_steps = (tokens_per_epoch * cfg.epochs).max(1);
        let mut step = 0usize;

        let mut grad = vec![0.0f32; dim];
        for _epoch in 0..cfg.epochs {
            for sentence in sentences {
                // Subsample frequent words per occurrence.
                let kept: Vec<u32> = sentence
                    .iter()
                    .copied()
                    .filter(|&w| {
                        cfg.subsample_t <= 0.0
                            || rng.gen::<f64>() < vocab.keep_probability(w, cfg.subsample_t)
                    })
                    .collect();
                for (pos, &center) in kept.iter().enumerate() {
                    step += 1;
                    let progress = step as f64 / total_steps as f64;
                    let lr =
                        (cfg.lr_start + (cfg.lr_end - cfg.lr_start) * progress).max(cfg.lr_end);
                    let b = rng.gen_range(1..=cfg.window);
                    let lo = pos.saturating_sub(b);
                    let hi = (pos + b + 1).min(kept.len());
                    eta2_obs::counter("sg.pairs", (hi - lo) as u64 - 1);
                    for (ctx_pos, &context) in kept.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        pair(
                            &mut w_in,
                            &mut w_out,
                            dim,
                            center as usize,
                            context as usize,
                            cfg.negative,
                            lr as f32,
                            vocab,
                            &mut rng,
                            &mut grad,
                            sig,
                        );
                    }
                }
            }
        }

        embedding_from(vocab, &w_in, dim)
    }

    /// The lock-free Hogwild trainer: contiguous sentence shards, one
    /// worker and one seeded RNG per shard, weights in relaxed atomics, a
    /// shared step counter driving the learning-rate decay.
    fn train_encoded_hogwild(
        &self,
        vocab: &Vocabulary,
        sentences: &[Vec<u32>],
        threads: usize,
    ) -> Embedding {
        let cfg = &self.config;
        let n = vocab.len();
        let dim = cfg.dim;

        // Same starting point as the sequential trainer: the init draws
        // come from the seed-keyed RNG in the same order.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let init: Vec<f32> = (0..n * dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
            .collect();
        let w_in = AtomicWeights::from_vec(init);
        let w_out = AtomicWeights::zeros(n * dim);

        let tokens_per_epoch: usize = sentences.iter().map(Vec::len).sum();
        let total_steps = (tokens_per_epoch * cfg.epochs).max(1);
        let steps = AtomicUsize::new(0);

        let n_sentences = sentences.len();
        eta2_par::map_indexed(threads, threads, |shard| {
            let lo_s = shard * n_sentences / threads;
            let hi_s = (shard + 1) * n_sentences / threads;
            let mut rng = StdRng::seed_from_u64(splitmix64(
                cfg.seed.wrapping_add(shard as u64).wrapping_add(1),
            ));
            let mut grad = vec![0.0f32; dim];
            let mut kept: Vec<u32> = Vec::new();
            for _epoch in 0..cfg.epochs {
                for sentence in &sentences[lo_s..hi_s] {
                    kept.clear();
                    kept.extend(sentence.iter().copied().filter(|&w| {
                        cfg.subsample_t <= 0.0
                            || rng.gen::<f64>() < vocab.keep_probability(w, cfg.subsample_t)
                    }));
                    for (pos, &center) in kept.iter().enumerate() {
                        let step = steps.fetch_add(1, Ordering::Relaxed) + 1;
                        let progress = step as f64 / total_steps as f64;
                        let lr =
                            (cfg.lr_start + (cfg.lr_end - cfg.lr_start) * progress).max(cfg.lr_end);
                        let b = rng.gen_range(1..=cfg.window);
                        let lo = pos.saturating_sub(b);
                        let hi = (pos + b + 1).min(kept.len());
                        eta2_obs::counter("sg.pairs", (hi - lo) as u64 - 1);
                        for (ctx_pos, &context) in kept.iter().enumerate().take(hi).skip(lo) {
                            if ctx_pos == pos {
                                continue;
                            }
                            train_pair_atomic(
                                &w_in,
                                &w_out,
                                dim,
                                center as usize,
                                context as usize,
                                cfg.negative,
                                lr as f32,
                                vocab,
                                &mut rng,
                                &mut grad,
                            );
                        }
                    }
                }
            }
        });

        embedding_from(vocab, &w_in.into_vec(), dim)
    }
}

/// Builds the [`Embedding`] from the trained input matrix.
fn embedding_from(vocab: &Vocabulary, w_in: &[f32], dim: usize) -> Embedding {
    let pairs: Vec<(String, Vec<f32>)> = (0..vocab.len())
        .map(|i| {
            (
                vocab.word(i as u32).to_string(),
                w_in[i * dim..(i + 1) * dim].to_vec(),
            )
        })
        .collect();
    Embedding::from_vectors(pairs).expect("non-empty vocabulary")
}

/// f32 weight matrix stored as relaxed [`AtomicU32`] bit patterns, giving
/// the Hogwild trainer lock-free element access without `unsafe`: a racing
/// store can lose a concurrent update (which Hogwild tolerates by design)
/// but can never tear a float, because every element is a single atomic.
struct AtomicWeights(Vec<AtomicU32>);

impl AtomicWeights {
    fn from_vec(v: Vec<f32>) -> Self {
        AtomicWeights(v.into_iter().map(|x| AtomicU32::new(x.to_bits())).collect())
    }

    fn zeros(len: usize) -> Self {
        AtomicWeights((0..len).map(|_| AtomicU32::new(0.0f32.to_bits())).collect())
    }

    #[inline]
    fn get(&self, i: usize) -> f32 {
        f32::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline]
    fn set(&self, i: usize, v: f32) {
        self.0[i].store(v.to_bits(), Ordering::Relaxed);
    }

    fn into_vec(self) -> Vec<f32> {
        self.0
            .into_iter()
            .map(|a| f32::from_bits(a.into_inner()))
            .collect()
    }
}

/// SplitMix64 finalizer — decorrelates per-shard RNG seeds derived from
/// the single user-facing seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Signature shared by the vectorized pair kernel and its frozen scalar
/// reference, so [`SkipGramTrainer::train_encoded_with`] can drive either.
type PairFn = fn(
    &mut [f32],
    &mut [f32],
    usize,
    usize,
    usize,
    usize,
    f32,
    &Vocabulary,
    &mut StdRng,
    &mut [f32],
    fn(f32) -> f32,
);

/// Dot product of two equal-length rows in four independent f32 lanes
/// (combined pairwise), so the multiplies pipeline and autovectorize
/// instead of serializing on the FP-add latency.
#[inline]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let mut l = [0.0f32; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (a4, b4) in (&mut ca).zip(&mut cb) {
        for k in 0..4 {
            l[k] += a4[k] * b4[k];
        }
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        l[0] += x * y;
    }
    (l[0] + l[1]) + (l[2] + l[3])
}

/// One positive + `negative` negative SGD updates for a (center, context)
/// pair — the standard SGNS inner loop, restructured over contiguous row
/// slices: the dot runs in four lanes and the grad/output update is a
/// single fused elementwise pass with the bounds checks hoisted into the
/// slice construction. Lane reassociation makes this kernel agree with
/// [`train_pair_reference`] in cosine rather than bitwise — see the
/// module docs.
#[allow(clippy::too_many_arguments)]
fn train_pair<R: Rng + ?Sized>(
    w_in: &mut [f32],
    w_out: &mut [f32],
    dim: usize,
    center: usize,
    context: usize,
    negative: usize,
    lr: f32,
    vocab: &Vocabulary,
    rng: &mut R,
    grad: &mut [f32],
    sig: fn(f32) -> f32,
) {
    grad.fill(0.0);
    let in_row = &mut w_in[center * dim..(center + 1) * dim];
    for sample in 0..=negative {
        let (target, label) = if sample == 0 {
            (context, 1.0f32)
        } else {
            let mut neg = vocab.sample_negative(rng) as usize;
            if neg == context {
                // Resample once; if it still collides, skip (cheap and
                // unbiased enough at these vocabulary sizes).
                neg = vocab.sample_negative(rng) as usize;
                if neg == context {
                    continue;
                }
            }
            (neg, 0.0f32)
        };
        let out_row = &mut w_out[target * dim..(target + 1) * dim];
        let pred = sig(dot_lanes(in_row, out_row));
        let g = (label - pred) * lr;
        for ((gr, o), &i) in grad.iter_mut().zip(out_row.iter_mut()).zip(in_row.iter()) {
            *gr += g * *o;
            *o += g * i;
        }
    }
    for (i, &gr) in in_row.iter_mut().zip(grad.iter()) {
        *i += gr;
    }
}

/// The frozen pre-vectorization pair kernel, kept verbatim as the perf
/// baseline and parity anchor for [`train_pair`] (the skip-gram analogue
/// of `truth::reference`). Do not optimize.
#[allow(clippy::too_many_arguments)]
fn train_pair_reference<R: Rng + ?Sized>(
    w_in: &mut [f32],
    w_out: &mut [f32],
    dim: usize,
    center: usize,
    context: usize,
    negative: usize,
    lr: f32,
    vocab: &Vocabulary,
    rng: &mut R,
    grad: &mut [f32],
    sig: fn(f32) -> f32,
) {
    grad.fill(0.0);
    let in_range = center * dim..(center + 1) * dim;
    for sample in 0..=negative {
        let (target, label) = if sample == 0 {
            (context, 1.0f32)
        } else {
            let mut neg = vocab.sample_negative(rng) as usize;
            if neg == context {
                neg = vocab.sample_negative(rng) as usize;
                if neg == context {
                    continue;
                }
            }
            (neg, 0.0f32)
        };
        let out_range = target * dim..(target + 1) * dim;
        let dot: f32 = w_in[in_range.clone()]
            .iter()
            .zip(&w_out[out_range.clone()])
            .map(|(a, b)| a * b)
            .sum();
        let pred = sig(dot);
        let g = (label - pred) * lr;
        for k in 0..dim {
            grad[k] += g * w_out[target * dim + k];
            w_out[target * dim + k] += g * w_in[center * dim + k];
        }
    }
    for k in 0..dim {
        w_in[center * dim + k] += grad[k];
    }
}

/// The Hogwild twin of [`train_pair`]: identical math over atomic weights.
/// Concurrent updates to the same element may be lost, never torn.
#[allow(clippy::too_many_arguments)]
fn train_pair_atomic<R: Rng + ?Sized>(
    w_in: &AtomicWeights,
    w_out: &AtomicWeights,
    dim: usize,
    center: usize,
    context: usize,
    negative: usize,
    lr: f32,
    vocab: &Vocabulary,
    rng: &mut R,
    grad: &mut [f32],
) {
    grad.fill(0.0);
    for sample in 0..=negative {
        let (target, label) = if sample == 0 {
            (context, 1.0f32)
        } else {
            let mut neg = vocab.sample_negative(rng) as usize;
            if neg == context {
                neg = vocab.sample_negative(rng) as usize;
                if neg == context {
                    continue;
                }
            }
            (neg, 0.0f32)
        };
        // Same four-lane reduction as [`dot_lanes`], expressed over the
        // atomic cells (relaxed loads; element races lose, never tear).
        let (in_base, out_base) = (center * dim, target * dim);
        let mut l = [0.0f32; 4];
        let mut k = 0;
        while k + 4 <= dim {
            for j in 0..4 {
                l[j] += w_in.get(in_base + k + j) * w_out.get(out_base + k + j);
            }
            k += 4;
        }
        while k < dim {
            l[0] += w_in.get(in_base + k) * w_out.get(out_base + k);
            k += 1;
        }
        let pred = sigmoid((l[0] + l[1]) + (l[2] + l[3]));
        let g = (label - pred) * lr;
        for k in 0..dim {
            let o = w_out.get(target * dim + k);
            grad[k] += g * o;
            w_out.set(target * dim + k, o + g * w_in.get(center * dim + k));
        }
    }
    for k in 0..dim {
        let idx = center * dim + k;
        w_in.set(idx, w_in.get(idx) + grad[k]);
    }
}

/// Interpolation intervals of the sigmoid lookup table.
const SIGMOID_TABLE_SIZE: usize = 4096;
/// Clamp bound: `σ(±8) ≈ 1 ∓ 3.4e-4`, matching the exact path's clamp.
const SIGMOID_CLAMP: f32 = 8.0;

/// Table nodes `σ(-8 + 16k/4096)`, built once in f64 precision.
fn sigmoid_table() -> &'static [f32; SIGMOID_TABLE_SIZE + 1] {
    static TABLE: OnceLock<[f32; SIGMOID_TABLE_SIZE + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0f32; SIGMOID_TABLE_SIZE + 1];
        for (k, v) in t.iter_mut().enumerate() {
            let x = -8.0 + 16.0 * k as f64 / SIGMOID_TABLE_SIZE as f64;
            *v = (1.0 / (1.0 + (-x).exp())) as f32;
        }
        t
    })
}

/// Numerically clamped logistic function, served from the interpolated
/// lookup table shared by the sequential and Hogwild trainers. The
/// interpolation error over one 16/4096 interval is below 2e-8 — under
/// f32 resolution at these magnitudes — so training trajectories match
/// the exact sigmoid to within the tolerance the `lut_*` tests assert.
fn sigmoid(x: f32) -> f32 {
    if x > SIGMOID_CLAMP {
        1.0
    } else if x < -SIGMOID_CLAMP {
        0.0
    } else {
        let table = sigmoid_table();
        let pos = (x + SIGMOID_CLAMP) * (SIGMOID_TABLE_SIZE as f32 / (2.0 * SIGMOID_CLAMP));
        let k = (pos as usize).min(SIGMOID_TABLE_SIZE - 1);
        let frac = pos - k as f32;
        table[k] + frac * (table[k + 1] - table[k])
    }
}

/// The exact logistic function the table replaces — kept for the LUT
/// parity tests.
fn sigmoid_exact(x: f32) -> f32 {
    if x > SIGMOID_CLAMP {
        1.0
    } else if x < -SIGMOID_CLAMP {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TopicCorpus;
    use crate::embedding::cosine;

    #[test]
    fn config_validation() {
        let bad = [
            SkipGramConfig {
                dim: 0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                window: 0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                epochs: 0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                lr_start: 0.0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                lr_end: 1.0,
                lr_start: 0.05,
                ..SkipGramConfig::default()
            },
        ];
        for cfg in bad {
            assert!(
                SkipGramTrainer::new(cfg).train_sentences(&toy()).is_err(),
                "{cfg:?} should be rejected"
            );
        }
    }

    fn toy() -> Vec<Vec<String>> {
        TopicCorpus::builtin().generate(20, 0)
    }

    #[test]
    fn training_is_deterministic() {
        let sentences = toy();
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 1,
            ..SkipGramConfig::default()
        };
        let a = SkipGramTrainer::new(cfg)
            .train_sentences(&sentences)
            .unwrap();
        let b = SkipGramTrainer::new(cfg)
            .train_sentences(&sentences)
            .unwrap();
        assert_eq!(a.vector("parking"), b.vector("parking"));
    }

    #[test]
    fn empty_corpus_is_rejected() {
        let r = SkipGramTrainer::new(SkipGramConfig::default()).train_sentences(&[]);
        assert_eq!(r.unwrap_err(), EmbedError::EmptyVocabulary);
    }

    #[test]
    fn sigmoid_clamps() {
        assert_eq!(sigmoid(100.0), 1.0);
        assert_eq!(sigmoid(-100.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lut_sigmoid_matches_exact_pointwise() {
        // Dense sweep across the clamp range plus the boundaries.
        for k in 0..=160_000u32 {
            let x = -8.0 + 16.0 * k as f32 / 160_000.0;
            let lut = sigmoid(x);
            let exact = sigmoid_exact(x);
            assert!(
                (lut - exact).abs() < 1e-6,
                "sigmoid LUT off at x = {x}: {lut} vs {exact}"
            );
        }
    }

    /// End-to-end LUT effect: training with the table must leave every
    /// word's vector within 1e-6 cosine similarity of training with the
    /// exact sigmoid.
    #[test]
    fn lut_training_matches_exact_within_cosine_tolerance() {
        let sentences = TopicCorpus::builtin().generate(60, 5);
        let cfg = SkipGramConfig {
            dim: 12,
            epochs: 2,
            ..SkipGramConfig::default()
        };
        let trainer = SkipGramTrainer::new(cfg);
        let vocab = Vocabulary::build(&sentences, cfg.min_count).unwrap();
        let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode(s)).collect();
        let with_lut = trainer.train_encoded_with(&vocab, &encoded, sigmoid, train_pair::<StdRng>);
        let exact =
            trainer.train_encoded_with(&vocab, &encoded, sigmoid_exact, train_pair::<StdRng>);
        for w in with_lut.words() {
            let c = cosine(with_lut.vector(w).unwrap(), exact.vector(w).unwrap());
            assert!(c >= 1.0 - 1e-6, "vector for {w:?} drifted: cosine = {c}");
        }
    }

    /// The vectorized kernel against the frozen scalar reference: lane
    /// reassociation perturbs each dot product by a few f32 ULP, and SGD
    /// amplifies perturbations over the run, so parity is a cosine bound
    /// (like the LUT test), not bit-equality. The bound is deliberately
    /// looser than the LUT one — reassociation noise enters every dot
    /// product, the LUT only where interpolation error exceeds f32
    /// resolution.
    #[test]
    fn vectorized_training_matches_reference_within_cosine_tolerance() {
        let sentences = TopicCorpus::builtin().generate(60, 5);
        let cfg = SkipGramConfig {
            dim: 12,
            epochs: 2,
            ..SkipGramConfig::default()
        };
        let trainer = SkipGramTrainer::new(cfg);
        let vocab = Vocabulary::build(&sentences, cfg.min_count).unwrap();
        let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode(s)).collect();
        let fast = trainer.train_encoded(&vocab, &encoded);
        let slow = trainer.train_encoded_reference(&vocab, &encoded);
        for w in fast.words() {
            let c = cosine(fast.vector(w).unwrap(), slow.vector(w).unwrap());
            assert!(
                c >= 1.0 - 1e-3,
                "vector for {w:?} drifted from scalar reference: cosine = {c}"
            );
        }
    }

    #[test]
    fn skipgram_config_without_threads_field_still_deserializes() {
        let mut v = serde_json::to_value(SkipGramConfig::default()).unwrap();
        v.as_object_mut().unwrap().remove("threads");
        let cfg: SkipGramConfig = serde_json::from_value(v).unwrap();
        assert_eq!(cfg, SkipGramConfig::default());
    }

    /// The Hogwild trainer is a throughput option, not an accuracy trade:
    /// it must still produce finite vectors with the topical structure the
    /// clustering downstream relies on.
    #[test]
    fn hogwild_training_learns_topical_structure() {
        let sentences = TopicCorpus::builtin().generate(400, 7);
        let emb = SkipGramTrainer::new(SkipGramConfig {
            dim: 24,
            epochs: 4,
            threads: 4,
            ..SkipGramConfig::default()
        })
        .train_sentences(&sentences)
        .unwrap();
        for w in emb.words() {
            assert!(emb.vector(w).unwrap().iter().all(|v| v.is_finite()));
        }
        let avg = |pairs: &[(&str, &str)]| -> f64 {
            pairs
                .iter()
                .map(|&(a, b)| cosine(emb.vector(a).unwrap(), emb.vector(b).unwrap()))
                .sum::<f64>()
                / pairs.len() as f64
        };
        let same = avg(&[
            ("parking", "garage"),
            ("noise", "decibel"),
            ("salary", "wage"),
        ]);
        let cross = avg(&[
            ("parking", "decibel"),
            ("noise", "wage"),
            ("salary", "garage"),
        ]);
        assert!(
            same > cross,
            "topical structure not learned under Hogwild: same = {same:.3}, cross = {cross:.3}"
        );
    }

    /// The load-bearing property: words of one topic embed closer to each
    /// other than to words of a different topic. This is exactly what the
    /// hierarchical clustering downstream relies on.
    #[test]
    fn same_topic_words_embed_closer_than_cross_topic() {
        let sentences = TopicCorpus::builtin().generate(400, 7);
        let emb = SkipGramTrainer::new(SkipGramConfig {
            dim: 24,
            epochs: 4,
            ..SkipGramConfig::default()
        })
        .train_sentences(&sentences)
        .unwrap();

        let pairs_same = [
            ("parking", "garage"),
            ("noise", "decibel"),
            ("salary", "wage"),
        ];
        let pairs_cross = [
            ("parking", "decibel"),
            ("noise", "wage"),
            ("salary", "garage"),
        ];
        let avg = |pairs: &[(&str, &str)]| -> f64 {
            pairs
                .iter()
                .map(|&(a, b)| cosine(emb.vector(a).unwrap(), emb.vector(b).unwrap()))
                .sum::<f64>()
                / pairs.len() as f64
        };
        let same = avg(&pairs_same);
        let cross = avg(&pairs_cross);
        assert!(
            same > cross + 0.15,
            "topical structure not learned: same = {same:.3}, cross = {cross:.3}"
        );
    }

    #[test]
    fn vectors_are_finite_after_training() {
        let sentences = toy();
        let emb = SkipGramTrainer::new(SkipGramConfig {
            dim: 8,
            epochs: 2,
            ..SkipGramConfig::default()
        })
        .train_sentences(&sentences)
        .unwrap();
        for w in emb.words() {
            assert!(emb.vector(w).unwrap().iter().all(|v| v.is_finite()));
        }
    }
}
