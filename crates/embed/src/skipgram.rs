//! Continuous Skip-gram with negative sampling, from scratch.
//!
//! This is the training algorithm the paper uses for its lexical
//! representations (§3.2, citing Mikolov et al. 2013): for each
//! (center, context) pair inside a randomly shrunk window, take one positive
//! update and `negative` sampled negative updates against the logistic loss,
//! with SGD and a linearly decaying learning rate. Frequency subsampling
//! follows word2vec's `-sample` formula (see
//! [`crate::vocab::Vocabulary::keep_probability`]).

use crate::embedding::Embedding;
use crate::error::EmbedError;
use crate::vocab::Vocabulary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters for skip-gram training.
///
/// The defaults are sized for the bundled topic corpus (small vocabulary,
/// strong topical signal), not for Wikipedia-scale text.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum context window; per pair the effective window is drawn from
    /// `1..=window` as in word2vec.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to `lr_end`.
    pub lr_start: f64,
    /// Final learning rate.
    pub lr_end: f64,
    /// Frequency-subsampling threshold (`0` disables).
    pub subsample_t: f64,
    /// Drop words rarer than this from the vocabulary.
    pub min_count: u64,
    /// RNG seed — training is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 32,
            window: 4,
            negative: 5,
            epochs: 5,
            lr_start: 0.05,
            lr_end: 0.0001,
            subsample_t: 1e-3,
            min_count: 2,
            seed: 0x5eed,
        }
    }
}

impl SkipGramConfig {
    fn validate(&self) -> Result<(), EmbedError> {
        if self.dim == 0 {
            return Err(EmbedError::InvalidConfig {
                field: "dim",
                reason: "must be > 0",
            });
        }
        if self.window == 0 {
            return Err(EmbedError::InvalidConfig {
                field: "window",
                reason: "must be > 0",
            });
        }
        if self.epochs == 0 {
            return Err(EmbedError::InvalidConfig {
                field: "epochs",
                reason: "must be > 0",
            });
        }
        // NaN falls through `<=` but is caught by the finiteness check.
        if self.lr_start <= 0.0 || !self.lr_start.is_finite() {
            return Err(EmbedError::InvalidConfig {
                field: "lr_start",
                reason: "must be finite and > 0",
            });
        }
        if self.lr_end < 0.0 || self.lr_end > self.lr_start {
            return Err(EmbedError::InvalidConfig {
                field: "lr_end",
                reason: "must satisfy 0 <= lr_end <= lr_start",
            });
        }
        Ok(())
    }
}

/// Skip-gram trainer.
///
/// # Examples
///
/// ```
/// use eta2_embed::corpus::TopicCorpus;
/// use eta2_embed::{SkipGramConfig, SkipGramTrainer};
///
/// let sentences = TopicCorpus::builtin().generate(100, 3);
/// let emb = SkipGramTrainer::new(SkipGramConfig {
///     dim: 8,
///     epochs: 1,
///     ..SkipGramConfig::default()
/// })
/// .train_sentences(&sentences)?;
/// assert_eq!(emb.dim(), 8);
/// assert!(emb.vector("parking").is_some());
/// # Ok::<(), eta2_embed::EmbedError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SkipGramTrainer {
    config: SkipGramConfig,
}

impl SkipGramTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: SkipGramConfig) -> Self {
        SkipGramTrainer { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &SkipGramConfig {
        &self.config
    }

    /// Builds a vocabulary from `sentences` and trains embeddings.
    ///
    /// # Errors
    ///
    /// * [`EmbedError::InvalidConfig`] for a bad configuration.
    /// * [`EmbedError::EmptyVocabulary`] if no word meets `min_count`.
    pub fn train_sentences(&self, sentences: &[Vec<String>]) -> Result<Embedding, EmbedError> {
        self.config.validate()?;
        let vocab = Vocabulary::build(sentences, self.config.min_count)?;
        let encoded: Vec<Vec<u32>> = sentences.iter().map(|s| vocab.encode(s)).collect();
        Ok(self.train_encoded(&vocab, &encoded))
    }

    /// Trains on pre-encoded sentences against an existing vocabulary.
    pub fn train_encoded(&self, vocab: &Vocabulary, sentences: &[Vec<u32>]) -> Embedding {
        let cfg = &self.config;
        let n = vocab.len();
        let dim = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // word2vec init: input vectors uniform in [-0.5/dim, 0.5/dim),
        // output vectors zero.
        let mut w_in: Vec<f32> = (0..n * dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
            .collect();
        let mut w_out: Vec<f32> = vec![0.0; n * dim];

        // Estimate total training pairs for the LR schedule.
        let tokens_per_epoch: usize = sentences.iter().map(Vec::len).sum();
        let total_steps = (tokens_per_epoch * cfg.epochs).max(1);
        let mut step = 0usize;

        let mut grad = vec![0.0f32; dim];
        for _epoch in 0..cfg.epochs {
            for sentence in sentences {
                // Subsample frequent words per occurrence.
                let kept: Vec<u32> = sentence
                    .iter()
                    .copied()
                    .filter(|&w| {
                        cfg.subsample_t <= 0.0
                            || rng.gen::<f64>() < vocab.keep_probability(w, cfg.subsample_t)
                    })
                    .collect();
                for (pos, &center) in kept.iter().enumerate() {
                    step += 1;
                    let progress = step as f64 / total_steps as f64;
                    let lr =
                        (cfg.lr_start + (cfg.lr_end - cfg.lr_start) * progress).max(cfg.lr_end);
                    let b = rng.gen_range(1..=cfg.window);
                    let lo = pos.saturating_sub(b);
                    let hi = (pos + b + 1).min(kept.len());
                    for (ctx_pos, &context) in kept.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        train_pair(
                            &mut w_in,
                            &mut w_out,
                            dim,
                            center as usize,
                            context as usize,
                            cfg.negative,
                            lr as f32,
                            vocab,
                            &mut rng,
                            &mut grad,
                        );
                    }
                }
            }
        }

        let pairs: Vec<(String, Vec<f32>)> = (0..n)
            .map(|i| {
                (
                    vocab.word(i as u32).to_string(),
                    w_in[i * dim..(i + 1) * dim].to_vec(),
                )
            })
            .collect();
        Embedding::from_vectors(pairs).expect("non-empty vocabulary")
    }
}

/// One positive + `negative` negative SGD updates for a (center, context)
/// pair — the standard SGNS inner loop.
#[allow(clippy::too_many_arguments)]
fn train_pair<R: Rng + ?Sized>(
    w_in: &mut [f32],
    w_out: &mut [f32],
    dim: usize,
    center: usize,
    context: usize,
    negative: usize,
    lr: f32,
    vocab: &Vocabulary,
    rng: &mut R,
    grad: &mut [f32],
) {
    grad.fill(0.0);
    let in_range = center * dim..(center + 1) * dim;
    for sample in 0..=negative {
        let (target, label) = if sample == 0 {
            (context, 1.0f32)
        } else {
            let mut neg = vocab.sample_negative(rng) as usize;
            if neg == context {
                // Resample once; if it still collides, skip (cheap and
                // unbiased enough at these vocabulary sizes).
                neg = vocab.sample_negative(rng) as usize;
                if neg == context {
                    continue;
                }
            }
            (neg, 0.0f32)
        };
        let out_range = target * dim..(target + 1) * dim;
        let dot: f32 = w_in[in_range.clone()]
            .iter()
            .zip(&w_out[out_range.clone()])
            .map(|(a, b)| a * b)
            .sum();
        let pred = sigmoid(dot);
        let g = (label - pred) * lr;
        for k in 0..dim {
            grad[k] += g * w_out[target * dim + k];
            w_out[target * dim + k] += g * w_in[center * dim + k];
        }
    }
    for k in 0..dim {
        w_in[center * dim + k] += grad[k];
    }
}

/// Numerically clamped logistic function.
fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::TopicCorpus;
    use crate::embedding::cosine;

    #[test]
    fn config_validation() {
        let bad = [
            SkipGramConfig {
                dim: 0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                window: 0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                epochs: 0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                lr_start: 0.0,
                ..SkipGramConfig::default()
            },
            SkipGramConfig {
                lr_end: 1.0,
                lr_start: 0.05,
                ..SkipGramConfig::default()
            },
        ];
        for cfg in bad {
            assert!(
                SkipGramTrainer::new(cfg).train_sentences(&toy()).is_err(),
                "{cfg:?} should be rejected"
            );
        }
    }

    fn toy() -> Vec<Vec<String>> {
        TopicCorpus::builtin().generate(20, 0)
    }

    #[test]
    fn training_is_deterministic() {
        let sentences = toy();
        let cfg = SkipGramConfig {
            dim: 8,
            epochs: 1,
            ..SkipGramConfig::default()
        };
        let a = SkipGramTrainer::new(cfg)
            .train_sentences(&sentences)
            .unwrap();
        let b = SkipGramTrainer::new(cfg)
            .train_sentences(&sentences)
            .unwrap();
        assert_eq!(a.vector("parking"), b.vector("parking"));
    }

    #[test]
    fn empty_corpus_is_rejected() {
        let r = SkipGramTrainer::new(SkipGramConfig::default()).train_sentences(&[]);
        assert_eq!(r.unwrap_err(), EmbedError::EmptyVocabulary);
    }

    #[test]
    fn sigmoid_clamps() {
        assert_eq!(sigmoid(100.0), 1.0);
        assert_eq!(sigmoid(-100.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }

    /// The load-bearing property: words of one topic embed closer to each
    /// other than to words of a different topic. This is exactly what the
    /// hierarchical clustering downstream relies on.
    #[test]
    fn same_topic_words_embed_closer_than_cross_topic() {
        let sentences = TopicCorpus::builtin().generate(400, 7);
        let emb = SkipGramTrainer::new(SkipGramConfig {
            dim: 24,
            epochs: 4,
            ..SkipGramConfig::default()
        })
        .train_sentences(&sentences)
        .unwrap();

        let pairs_same = [
            ("parking", "garage"),
            ("noise", "decibel"),
            ("salary", "wage"),
        ];
        let pairs_cross = [
            ("parking", "decibel"),
            ("noise", "wage"),
            ("salary", "garage"),
        ];
        let avg = |pairs: &[(&str, &str)]| -> f64 {
            pairs
                .iter()
                .map(|&(a, b)| cosine(emb.vector(a).unwrap(), emb.vector(b).unwrap()))
                .sum::<f64>()
                / pairs.len() as f64
        };
        let same = avg(&pairs_same);
        let cross = avg(&pairs_cross);
        assert!(
            same > cross + 0.15,
            "topical structure not learned: same = {same:.3}, cross = {cross:.3}"
        );
    }

    #[test]
    fn vectors_are_finite_after_training() {
        let sentences = toy();
        let emb = SkipGramTrainer::new(SkipGramConfig {
            dim: 8,
            epochs: 2,
            ..SkipGramConfig::default()
        })
        .train_sentences(&sentences)
        .unwrap();
        for w in emb.words() {
            assert!(emb.vector(w).unwrap().iter().all(|v| v.is_finite()));
        }
    }
}
