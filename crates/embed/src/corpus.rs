//! Deterministic topic-structured training corpus.
//!
//! The paper trains skip-gram on a Wikipedia dump. A dump is neither
//! distributable nor necessary here: the clustering module consumes only
//! *relative* distances between task vectors (Eq. 2), so what the embedding
//! must encode is "words of the same expertise domain co-occur". This
//! generator produces exactly that signal — documents drawn from topical
//! vocabularies mixed with shared function words — deterministically from a
//! seed, so tests and experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One topic: a name and its content vocabulary.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Short identifier, e.g. `"parking"`.
    pub name: &'static str,
    /// Content words characteristic of the topic.
    pub words: &'static [&'static str],
}

/// The built-in topics, mirroring the question categories of the paper's
/// survey dataset (campus parking, commuting, salaries, environment, dining,
/// weather, sports, academics) plus two extra to exercise domain growth.
pub const BUILTIN_TOPICS: &[Topic] = &[
    Topic {
        name: "parking",
        words: &[
            "parking",
            "lot",
            "lots",
            "garage",
            "spots",
            "spaces",
            "permit",
            "car",
            "cars",
            "vehicle",
            "meter",
            "curb",
            "valet",
            "deck",
            "stall",
            "occupancy",
            "full",
            "empty",
            "entrance",
            "gate",
        ],
    },
    Topic {
        name: "commute",
        words: &[
            "driving",
            "drive",
            "hours",
            "traffic",
            "highway",
            "road",
            "route",
            "commute",
            "congestion",
            "miles",
            "speed",
            "bus",
            "train",
            "transit",
            "trip",
            "travel",
            "departure",
            "arrival",
            "lane",
            "toll",
        ],
    },
    Topic {
        name: "salary",
        words: &[
            "salary",
            "salaries",
            "wage",
            "wages",
            "pay",
            "income",
            "engineer",
            "engineers",
            "software",
            "entry",
            "level",
            "job",
            "jobs",
            "company",
            "hiring",
            "bonus",
            "compensation",
            "career",
            "annual",
            "dollars",
        ],
    },
    Topic {
        name: "noise",
        words: &[
            "noise",
            "decibel",
            "decibels",
            "loud",
            "quiet",
            "sound",
            "construction",
            "municipal",
            "building",
            "street",
            "measurement",
            "sensor",
            "ambient",
            "pollution",
            "honking",
            "sirens",
            "volume",
            "acoustic",
            "hum",
            "roar",
        ],
    },
    Topic {
        name: "dining",
        words: &[
            "restaurant",
            "food",
            "lunch",
            "dinner",
            "menu",
            "price",
            "prices",
            "meal",
            "cafeteria",
            "coffee",
            "pizza",
            "burger",
            "grocery",
            "supermarket",
            "produce",
            "milk",
            "bread",
            "cost",
            "cheap",
            "expensive",
        ],
    },
    Topic {
        name: "weather",
        words: &[
            "weather",
            "temperature",
            "rain",
            "rainfall",
            "snow",
            "wind",
            "humidity",
            "forecast",
            "degrees",
            "celsius",
            "fahrenheit",
            "storm",
            "sunny",
            "cloudy",
            "cold",
            "hot",
            "freezing",
            "precipitation",
            "umbrella",
            "overcast",
        ],
    },
    Topic {
        name: "sports",
        words: &[
            "game",
            "stadium",
            "team",
            "score",
            "football",
            "basketball",
            "soccer",
            "players",
            "season",
            "tickets",
            "fans",
            "attendance",
            "coach",
            "league",
            "match",
            "win",
            "tournament",
            "court",
            "field",
            "playoff",
        ],
    },
    Topic {
        name: "academics",
        words: &[
            "students",
            "seminar",
            "lecture",
            "class",
            "classes",
            "professor",
            "course",
            "courses",
            "exam",
            "library",
            "campus",
            "tuition",
            "enrollment",
            "semester",
            "graduate",
            "undergraduate",
            "degree",
            "credits",
            "attended",
            "homework",
        ],
    },
    Topic {
        name: "health",
        words: &[
            "clinic",
            "hospital",
            "doctor",
            "patients",
            "wait",
            "appointment",
            "pharmacy",
            "flu",
            "vaccine",
            "steps",
            "exercise",
            "calories",
            "heart",
            "rate",
            "sleep",
            "gym",
            "wellness",
            "nurse",
            "emergency",
            "blood",
        ],
    },
    Topic {
        name: "technology",
        words: &[
            "wifi",
            "network",
            "signal",
            "bandwidth",
            "download",
            "upload",
            "latency",
            "coverage",
            "phone",
            "battery",
            "charger",
            "laptop",
            "printer",
            "outage",
            "router",
            "hotspot",
            "bars",
            "megabits",
            "connection",
            "devices",
        ],
    },
];

/// Function words shared across all topics, giving skip-gram the common
/// context glue real text has.
const FUNCTION_WORDS: &[&str] = &[
    "the", "a", "an", "is", "are", "was", "of", "in", "on", "at", "to", "for", "near", "around",
    "what", "how", "many", "much", "very", "there", "today", "now", "and", "with", "about", "this",
    "that",
];

/// A topic-structured corpus generator.
///
/// # Examples
///
/// ```
/// use eta2_embed::corpus::TopicCorpus;
///
/// let sentences = TopicCorpus::builtin().generate(50, 7);
/// assert_eq!(sentences.len(), 50 * 12); // 12 sentences per document
/// ```
#[derive(Debug, Clone)]
pub struct TopicCorpus {
    topics: Vec<Topic>,
    sentences_per_doc: usize,
    words_per_sentence: (usize, usize),
    topic_word_fraction: f64,
}

impl TopicCorpus {
    /// Generator over the built-in topic set.
    pub fn builtin() -> Self {
        TopicCorpus {
            topics: BUILTIN_TOPICS.to_vec(),
            sentences_per_doc: 12,
            words_per_sentence: (8, 16),
            topic_word_fraction: 0.6,
        }
    }

    /// Generator over a custom topic set.
    ///
    /// # Panics
    ///
    /// Panics if `topics` is empty or any topic has an empty word list.
    pub fn with_topics(topics: Vec<Topic>) -> Self {
        assert!(!topics.is_empty(), "need at least one topic");
        assert!(
            topics.iter().all(|t| !t.words.is_empty()),
            "every topic needs a non-empty word list"
        );
        TopicCorpus {
            topics,
            ..TopicCorpus::builtin()
        }
    }

    /// The topics this generator draws from.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// Generates `documents` topical documents and returns all their
    /// sentences, tokenized. Deterministic in `seed`.
    pub fn generate(&self, documents: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sentences = Vec::with_capacity(documents * self.sentences_per_doc);
        for doc in 0..documents {
            // Round-robin topics so every topic gets equal coverage, then
            // jitter inside the document.
            let topic = &self.topics[doc % self.topics.len()];
            for _ in 0..self.sentences_per_doc {
                let len = rng.gen_range(self.words_per_sentence.0..=self.words_per_sentence.1);
                let mut sentence = Vec::with_capacity(len);
                for _ in 0..len {
                    if rng.gen_bool(self.topic_word_fraction) {
                        let w = topic.words[rng.gen_range(0..topic.words.len())];
                        sentence.push(w.to_string());
                    } else {
                        let w = FUNCTION_WORDS[rng.gen_range(0..FUNCTION_WORDS.len())];
                        sentence.push(w.to_string());
                    }
                }
                sentences.push(sentence);
            }
        }
        sentences
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn builtin_topics_have_disjoint_core_vocabulary() {
        // Topical separation only works if the topic vocabularies barely
        // overlap; enforce full disjointness for the builtin set.
        let mut seen: HashSet<&str> = HashSet::new();
        for t in BUILTIN_TOPICS {
            for w in t.words {
                assert!(seen.insert(w), "word {w:?} appears in two topics");
            }
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let g = TopicCorpus::builtin();
        assert_eq!(g.generate(10, 99), g.generate(10, 99));
        assert_ne!(g.generate(10, 99), g.generate(10, 100));
    }

    #[test]
    fn generate_covers_every_topic() {
        let g = TopicCorpus::builtin();
        let sentences = g.generate(BUILTIN_TOPICS.len() * 3, 1);
        let all: HashSet<&str> = sentences.iter().flatten().map(String::as_str).collect();
        for t in BUILTIN_TOPICS {
            assert!(
                t.words.iter().any(|w| all.contains(w)),
                "topic {} unseen",
                t.name
            );
        }
    }

    #[test]
    fn sentence_lengths_within_bounds() {
        let g = TopicCorpus::builtin();
        for s in g.generate(20, 5) {
            assert!((8..=16).contains(&s.len()), "len = {}", s.len());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one topic")]
    fn with_topics_rejects_empty() {
        TopicCorpus::with_topics(vec![]);
    }
}
