//! Error type for the embedding substrate.

use std::fmt;

/// Error returned by embedding training and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// The training corpus produced an empty vocabulary (no token met the
    /// minimum count).
    EmptyVocabulary,
    /// A configuration field was invalid.
    InvalidConfig {
        /// Which field.
        field: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Two embeddings or vectors of different dimensionality were combined.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::EmptyVocabulary => {
                write!(f, "training corpus produced an empty vocabulary")
            }
            EmbedError::InvalidConfig { field, reason } => {
                write!(f, "invalid skip-gram config `{field}`: {reason}")
            }
            EmbedError::DimensionMismatch { left, right } => {
                write!(f, "embedding dimension mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for EmbedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(EmbedError::EmptyVocabulary
            .to_string()
            .contains("vocabulary"));
        let e = EmbedError::DimensionMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmbedError>();
    }
}
