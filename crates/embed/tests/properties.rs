//! Property-based tests for the embedding substrate.

use eta2_embed::corpus::TopicCorpus;
use eta2_embed::embedding::{cosine, squared_euclidean, Embedding};
use eta2_embed::pairword::{pairword_distance, PairWordExtractor};
use eta2_embed::text::{content_words, tokenize};
use eta2_embed::Vocabulary;
use proptest::prelude::*;

proptest! {
    /// Tokenization is idempotent: re-tokenizing the joined tokens yields
    /// the same tokens.
    #[test]
    fn tokenize_idempotent(s in "[ -~]{0,120}") {
        let once = tokenize(&s);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    /// Tokens are alphanumeric and lowercase-stable (re-lowercasing them
    /// changes nothing; some scripts have caseless "uppercase" letters like
    /// mathematical alphanumerics, which is fine).
    #[test]
    fn tokens_are_normalized(s in "\\PC{0,80}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            let relowered: String = t.chars().flat_map(char::to_lowercase).collect();
            prop_assert_eq!(&relowered, &t);
        }
    }

    /// Content words are a subsequence of the tokens.
    #[test]
    fn content_words_subset_of_tokens(s in "[a-zA-Z ?,.]{0,100}") {
        let tokens = tokenize(&s);
        let content = content_words(&s);
        let mut it = tokens.iter();
        for w in &content {
            prop_assert!(it.any(|t| t == w), "{w} out of order");
        }
    }

    /// Extraction always yields at least one term when a content word
    /// exists, and query/target are disjoint from stopword-only inputs.
    #[test]
    fn extraction_total(s in "[a-z ]{1,80}") {
        let sem = PairWordExtractor::new().extract(&s);
        let total = sem.query.len() + sem.target.len();
        let content = content_words(&s)
            .into_iter()
            .filter(|w| !matches!(w.as_str(), "what"|"which"|"how"|"when"|"where"|"who"|"whats"|"many"|"much"|"long"|"often"))
            .count();
        // Extraction may drop linking verbs/separators, never add words.
        prop_assert!(total <= content);
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounded_symmetric(
        a in proptest::collection::vec(-10.0..10.0f32, 4),
        b in proptest::collection::vec(-10.0..10.0f32, 4),
    ) {
        let c1 = cosine(&a, &b);
        let c2 = cosine(&b, &a);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c1));
        prop_assert!((c1 - c2).abs() < 1e-12);
    }

    /// Squared Euclidean distance satisfies the metric-squared basics.
    #[test]
    fn sqeuclid_positive_symmetric(
        a in proptest::collection::vec(-10.0..10.0f32, 6),
        b in proptest::collection::vec(-10.0..10.0f32, 6),
    ) {
        prop_assert_eq!(squared_euclidean(&a, &a), 0.0);
        let d1 = squared_euclidean(&a, &b);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - squared_euclidean(&b, &a)).abs() < 1e-9);
    }

    /// The Eq. 2 distance equals half the squared Euclidean distance of the
    /// concatenation.
    #[test]
    fn pairword_distance_is_half_sq(
        a in proptest::collection::vec(-5.0..5.0f32, 8),
        b in proptest::collection::vec(-5.0..5.0f32, 8),
    ) {
        let d = pairword_distance(&a, &b);
        prop_assert!((d - 0.5 * squared_euclidean(&a, &b)).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Vocabulary invariants on generated corpora: dense ids, counts match
    /// raw frequencies, encode drops nothing in-vocabulary.
    #[test]
    fn vocabulary_invariants(docs in 1usize..6, seed in 0u64..100) {
        let sentences = TopicCorpus::builtin().generate(docs, seed);
        let vocab = Vocabulary::build(&sentences, 1).unwrap();
        // Every token is in vocabulary at min_count 1.
        for s in &sentences {
            prop_assert_eq!(vocab.encode(s).len(), s.len());
        }
        // Counts sum to the corpus token count.
        let total: u64 = sentences.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(vocab.total_tokens(), total);
        // Ids are dense and consistent.
        for id in 0..vocab.len() as u32 {
            prop_assert_eq!(vocab.id(vocab.word(id)), Some(id));
        }
        // Frequency ordering: counts are non-increasing in id.
        for id in 1..vocab.len() as u32 {
            prop_assert!(vocab.count(id - 1) >= vocab.count(id));
        }
    }
}

#[test]
fn phrase_vector_is_additive() {
    let emb = Embedding::from_vectors(vec![
        ("a".into(), vec![1.0, 2.0]),
        ("b".into(), vec![-3.0, 4.0]),
        ("c".into(), vec![10.0, -1.0]),
    ])
    .unwrap();
    let ab = emb.phrase_vector(&["a".into(), "b".into()]).unwrap();
    let abc = emb
        .phrase_vector(&["a".into(), "b".into(), "c".into()])
        .unwrap();
    for k in 0..2 {
        assert!((abc[k] - (ab[k] + emb.vector("c").unwrap()[k])).abs() < 1e-6);
    }
}
