//! Concurrency soak over the full observability plane: scoped writer
//! threads hammer counters, histograms and the event sink while a reader
//! drains the registry with `snapshot_and_reset` and tails the memory
//! sink. Conservation (no lost increments, no double counting) and
//! snapshot integrity (no torn histogram: per-bucket counts always sum to
//! the sample count) must both hold.
//!
//! This is an integration test so it owns the process-global sink,
//! metrics flag and registry for its whole run.

use std::sync::atomic::{AtomicBool, Ordering};

const WRITERS: usize = 4;
const ROUNDS: u64 = 2_000;

#[test]
fn hammered_registry_and_sink_lose_nothing_and_never_tear() {
    let handle = eta2_obs::install_memory(); // enables tracing + metrics
    let stop = AtomicBool::new(false);
    // Names unique to this test binary; the global registry may also be
    // carrying unrelated series from the library under test.
    let counter = "conc.test.count";
    let hist = "conc.test.observe";

    let (drained_counts, drained_obs, final_snapshot) = std::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        eta2_obs::counter(counter, 1);
                        eta2_obs::observe(hist, (r % 10) as f64 * 0.01);
                        eta2_obs::emit_with(|| eta2_obs::Event::DomainCreated {
                            domain: ((w as u64) << 32) | r,
                        });
                    }
                })
            })
            .collect();

        let reader = s.spawn(|| {
            let (mut c, mut o) = (0u64, 0u64);
            while !stop.load(Ordering::Acquire) {
                let snap = eta2_obs::registry::global().snapshot_and_reset();
                if let Some(h) = snap.histograms.get(hist) {
                    assert_eq!(
                        h.counts.iter().sum::<u64>(),
                        h.count,
                        "torn histogram snapshot: bucket counts disagree with count"
                    );
                    assert!(h.sum >= 0.0 && h.sum.is_finite(), "torn sum {}", h.sum);
                    o += h.count;
                }
                c += snap.counters.get(counter).copied().unwrap_or(0);
                // A drained sink read interleaves with concurrent emits;
                // every captured line must still be intact JSONL.
                std::thread::yield_now();
            }
            (c, o)
        });

        for w in writers {
            w.join().expect("writer panicked");
        }
        stop.store(true, Ordering::Release);
        let (c, o) = reader.join().expect("reader panicked");
        (c, o, eta2_obs::registry::global().snapshot_and_reset())
    });

    let expected = (WRITERS as u64) * ROUNDS;
    let total_counts = drained_counts + final_snapshot.counters.get(counter).copied().unwrap_or(0);
    let total_obs = drained_obs + final_snapshot.histograms.get(hist).map_or(0, |h| h.count);
    assert_eq!(
        total_counts, expected,
        "counter increments lost or duplicated"
    );
    assert_eq!(total_obs, expected, "histogram samples lost or duplicated");

    // Every emitted event arrived exactly once and every line is whole —
    // no interleaved/torn writes in the sink.
    eta2_obs::flush();
    let lines = handle.lines();
    let mine: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"domain_created\""))
        .collect();
    assert_eq!(mine.len(), (WRITERS as u64 * ROUNDS) as usize);
    let mut seen = std::collections::HashSet::new();
    for line in &mine {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "torn line {line}"
        );
        let domain = line
            .split("\"domain\":")
            .nth(1)
            .and_then(|rest| rest.trim_end_matches('}').parse::<u64>().ok())
            .unwrap_or_else(|| panic!("unparseable domain in {line}"));
        assert!(seen.insert(domain), "duplicate event for domain {domain}");
    }

    eta2_obs::disable();
    eta2_obs::set_metrics(false);
}
