//! Verbosity-gated human-readable logging for the CLI and bench harness.
//!
//! Three levels: `Quiet` suppresses everything, `Normal` (the default)
//! shows result-bearing output, `Verbose` adds progress detail. The
//! [`progress!`], [`detail!`] and [`warn!`] macros route through these
//! levels so "quiet runs are actually quiet".

use std::sync::atomic::{AtomicU8, Ordering};

/// How much human-readable output to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// No stdout chatter at all (warnings still reach stderr).
    Quiet = 0,
    /// Result-bearing output only (default).
    Normal = 1,
    /// Progress and per-step detail.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Sets the process-wide verbosity level.
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// Returns the current verbosity level.
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// Whether output at `level` should be produced right now.
pub fn log_enabled(level: Verbosity) -> bool {
    verbosity() >= level
}

/// Prints to stdout at `Normal` verbosity and above. Use for the
/// result-bearing lines a default run should show.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Verbosity::Normal) {
            println!($($arg)*);
        }
    };
}

/// Prints to stdout only at `Verbose`. Use for per-step chatter.
#[macro_export]
macro_rules! detail {
    ($($arg:tt)*) => {
        if $crate::log_enabled($crate::Verbosity::Verbose) {
            println!($($arg)*);
        }
    };
}

/// Prints to stderr at every verbosity level, prefixed `warning:`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        eprintln!("warning: {}", format!($($arg)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_gating() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);

        // The level is process-global; restore the default before leaving
        // so other tests in this binary observe Normal.
        set_verbosity(Verbosity::Quiet);
        assert!(!log_enabled(Verbosity::Normal));
        assert!(!log_enabled(Verbosity::Verbose));
        assert!(log_enabled(Verbosity::Quiet));

        set_verbosity(Verbosity::Verbose);
        assert!(log_enabled(Verbosity::Normal));
        assert!(log_enabled(Verbosity::Verbose));

        set_verbosity(Verbosity::Normal);
        assert!(log_enabled(Verbosity::Normal));
        assert!(!log_enabled(Verbosity::Verbose));
        assert_eq!(verbosity(), Verbosity::Normal);
    }
}
