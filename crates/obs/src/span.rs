//! RAII span timers. `Span::start("mle.solve")` (or the [`span!`] macro)
//! returns a guard that, when dropped, records the elapsed wall time in
//! seconds into the global registry's histogram of the same name.
//!
//! When metrics are disabled the guard holds no state and drop is a no-op,
//! so spans may be left in hot loops unconditionally.

use std::borrow::Cow;
use std::time::Instant;

/// A live span. Records its wall time on drop.
#[derive(Debug)]
pub struct Span {
    // `None` when metrics were disabled at start: the drop path then costs
    // only a branch on an already-loaded Option.
    started: Option<(Cow<'static, str>, Instant)>,
}

impl Span {
    /// Starts timing `name` if metrics are enabled, else returns an inert
    /// guard.
    pub fn start(name: &'static str) -> Span {
        if crate::metrics_enabled() {
            Span {
                started: Some((Cow::Borrowed(name), Instant::now())),
            }
        } else {
            Span { started: None }
        }
    }

    /// Starts timing a runtime-built name (e.g. a labeled series like
    /// `serve.flush_seconds|shard=3`). The caller pays the allocation even
    /// when metrics are off; prefer [`Span::start_with`] on hot paths.
    pub fn start_owned(name: String) -> Span {
        if crate::metrics_enabled() {
            Span {
                started: Some((Cow::Owned(name), Instant::now())),
            }
        } else {
            Span { started: None }
        }
    }

    /// Starts timing a lazily-built name: `make` only runs when metrics
    /// are enabled, so the formatting cost vanishes on the disabled path.
    pub fn start_with(make: impl FnOnce() -> String) -> Span {
        if crate::metrics_enabled() {
            Span {
                started: Some((Cow::Owned(make()), Instant::now())),
            }
        } else {
            Span { started: None }
        }
    }

    /// Ends the span early and records its duration (equivalent to drop).
    pub fn finish(self) {}

    /// Discards the span without recording anything.
    pub fn cancel(mut self) {
        self.started = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, at)) = self.started.take() {
            crate::registry::global().observe(&name, at.elapsed().as_secs_f64());
        }
    }
}

/// Starts an RAII span timer bound to the enclosing scope:
/// `let _span = eta2_obs::span!("mle.solve");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry and metrics flag are shared across tests in this
    // binary; use span names unique to each test, avoid global resets, and
    // hold TEST_FLAG_LOCK while flipping the metrics flag.

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_metrics(false);
        {
            let _s = Span::start("test.span.disabled");
        }
        crate::set_metrics(true);
        {
            let _s = Span::start("test.span.enabled");
        }
        let snap = crate::registry::global().snapshot();
        assert!(!snap.histograms.contains_key("test.span.disabled"));
        assert_eq!(snap.histograms["test.span.enabled"].count, 1);
    }

    #[test]
    fn cancel_records_nothing_finish_records() {
        let _guard = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_metrics(true);
        Span::start("test.span.cancelled").cancel();
        Span::start("test.span.finished").finish();
        let snap = crate::registry::global().snapshot();
        assert!(!snap.histograms.contains_key("test.span.cancelled"));
        assert_eq!(snap.histograms["test.span.finished"].count, 1);
    }

    #[test]
    fn owned_and_lazy_names_record_like_static_ones() {
        let _guard = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_metrics(true);
        {
            let _s = Span::start_owned(format!("test.span.owned|shard={}", 2));
        }
        {
            let _s = Span::start_with(|| "test.span.lazy".to_string());
        }
        crate::set_metrics(false);
        let mut lazy_called = false;
        {
            let _s = Span::start_with(|| {
                lazy_called = true;
                "test.span.lazy_disabled".to_string()
            });
        }
        crate::set_metrics(true);
        let snap = crate::registry::global().snapshot();
        assert_eq!(snap.histograms["test.span.owned|shard=2"].count, 1);
        assert_eq!(snap.histograms["test.span.lazy"].count, 1);
        assert!(
            !lazy_called,
            "start_with closure must not run when disabled"
        );
        assert!(!snap.histograms.contains_key("test.span.lazy_disabled"));
    }

    #[test]
    fn span_duration_is_nonnegative_and_bounded() {
        let _guard = crate::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_metrics(true);
        {
            let _s = crate::span!("test.span.timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = crate::registry::global().snapshot();
        let h = &snap.histograms["test.span.timed"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.002, "elapsed {} too small", h.sum);
        assert!(h.sum < 60.0, "elapsed {} absurdly large", h.sum);
    }
}
