//! Thread-safe metric registry: counters, gauges and fixed-bucket
//! histograms keyed by name, with atomic snapshot/reset for test isolation.

use crate::hist::Histogram;
use crate::json::{array_f64, array_u64, JsonObject};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named metrics. One global instance backs the `eta2_obs`
/// free functions; independent instances can be created for tests.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// Point-in-time copy of one histogram's state, with derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample (NaN when empty).
    pub mean: f64,
    /// Smallest sample (NaN when empty).
    pub min: f64,
    /// Largest sample (NaN when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (last = overflow).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            bounds: h.bounds().to_vec(),
            counts: h.counts().to_vec(),
        }
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (k, &v) in &self.counters {
            counters.u64(k, v);
        }
        let mut gauges = JsonObject::new();
        for (k, &v) in &self.gauges {
            gauges.f64(k, v);
        }
        let mut hists = JsonObject::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new();
            o.u64("count", h.count)
                .f64("sum", h.sum)
                .f64("mean", h.mean)
                .f64("min", h.min)
                .f64("max", h.max)
                .f64("p50", h.p50)
                .f64("p95", h.p95)
                .f64("p99", h.p99)
                .raw("bounds", &array_f64(&h.bounds))
                .raw("counts", &array_u64(&h.counts));
            hists.raw(k, &o.finish());
        }
        let mut out = JsonObject::new();
        out.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish());
        out.finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked mid-update;
        // metrics are advisory, so keep going with whatever state is there.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c = c.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// default wall-time buckets if absent.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, Histogram::duration_default);
    }

    /// Records `value` into the histogram `name`, creating it with `make`
    /// if absent. The bucket layout of an existing histogram wins.
    pub fn observe_with(&self, name: &str, value: f64, make: impl FnOnce() -> Histogram) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = make();
                h.record(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(h)))
                .collect(),
        }
    }

    /// Clears every metric.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }

    /// Atomically snapshots and clears — one lock acquisition, so no sample
    /// recorded concurrently is either lost or double-counted.
    pub fn snapshot_and_reset(&self) -> Snapshot {
        let mut inner = self.lock();
        Snapshot {
            counters: std::mem::take(&mut inner.counters),
            gauges: std::mem::take(&mut inner.gauges),
            histograms: std::mem::take(&mut inner.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(h)))
                .collect(),
        }
    }
}

/// The process-wide registry behind the crate's free functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        let s = r.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.counters["b"], 1);
        assert_eq!(s.gauges["g"], 2.5);
    }

    #[test]
    fn histograms_via_observe() {
        let r = Registry::new();
        r.observe("h", 0.5);
        r.observe("h", 1.5);
        let s = r.snapshot();
        assert_eq!(s.histograms["h"].count, 2);
        assert!((s.histograms["h"].sum - 2.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_reset_isolation() {
        let r = Registry::new();
        r.counter_add("x", 1);
        r.observe("h", 1.0);
        let first = r.snapshot_and_reset();
        assert_eq!(first.counters["x"], 1);
        assert!(r.snapshot().is_empty());
        // Post-reset activity lands in a fresh state.
        r.counter_add("x", 7);
        assert_eq!(r.snapshot().counters["x"], 7);
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.observe("h", 2.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"p95\""] {
            assert!(json.contains(key), "{json}");
        }
    }

    /// Property: concurrent counter increments are never lost.
    #[test]
    fn concurrent_counter_adds() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", 1);
                        r.observe("h", 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counters["n"], 4000);
        assert_eq!(s.histograms["h"].count, 4000);
    }

    /// Property: across random interleavings of add/observe/reset, the
    /// state after the final reset only reflects post-reset operations.
    #[test]
    fn snapshot_reset_random_sequences() {
        use crate::hist::Histogram;
        for seed in 1..30u64 {
            let mut state = seed;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545F4914F6CDD1D)
            };
            let r = Registry::new();
            let mut since_reset_count = 0u64;
            let mut since_reset_obs = 0u64;
            for _ in 0..200 {
                match next() % 4 {
                    0 => {
                        r.counter_add("c", 1);
                        since_reset_count += 1;
                    }
                    1 => {
                        r.observe_with("h", 1.0, || Histogram::new(vec![10.0]));
                        since_reset_obs += 1;
                    }
                    2 => {
                        r.gauge_set("g", 3.0);
                    }
                    _ => {
                        r.reset();
                        since_reset_count = 0;
                        since_reset_obs = 0;
                    }
                }
            }
            let s = r.snapshot();
            assert_eq!(
                s.counters.get("c").copied().unwrap_or(0),
                since_reset_count,
                "seed {seed}"
            );
            assert_eq!(
                s.histograms.get("h").map_or(0, |h| h.count),
                since_reset_obs,
                "seed {seed}"
            );
        }
    }
}
