//! Thread-safe metric registry: counters, gauges and fixed-bucket
//! histograms keyed by name, with atomic snapshot/reset for test isolation.
//!
//! # Concurrency design
//!
//! The hot path — bumping a counter or recording a histogram sample whose
//! name already exists — takes a shared read lock and then mutates an
//! atomic cell in place, so concurrent recorders from the parallel MLE and
//! sweep workers never serialize against each other. The write lock is
//! only taken to insert a new name (once per metric per process, in
//! practice) and by [`Registry::reset`]/[`Registry::snapshot_and_reset`],
//! whose exclusivity is exactly what makes snapshots atomic: every
//! recording either completes before the snapshot (and is counted in it)
//! or starts after (and lands in the fresh state) — nothing is lost or
//! double-counted.

use crate::hist::{AtomicHistogram, Histogram};
use crate::json::{array_f64, array_u64, JsonObject};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// A registry of named metrics. One global instance backs the `eta2_obs`
/// free functions; independent instances can be created for tests.
///
/// Gauges are stored as `f64` bit patterns inside `AtomicU64`s.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, AtomicU64>>,
    gauges: RwLock<BTreeMap<String, AtomicU64>>,
    histograms: RwLock<BTreeMap<String, AtomicHistogram>>,
}

/// Point-in-time copy of one histogram's state, with derived statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Mean sample (NaN when empty).
    pub mean: f64,
    /// Smallest sample (NaN when empty).
    pub min: f64,
    /// Largest sample (NaN when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Estimated 99.9th percentile (for the exposition plane's tail
    /// series; deliberately absent from [`Snapshot::to_json`], whose
    /// shape is frozen for `span_timing` consumers).
    pub p999: f64,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (last = overflow).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            bounds: h.bounds().to_vec(),
            counts: h.counts().to_vec(),
        }
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (k, &v) in &self.counters {
            counters.u64(k, v);
        }
        let mut gauges = JsonObject::new();
        for (k, &v) in &self.gauges {
            gauges.f64(k, v);
        }
        let mut hists = JsonObject::new();
        for (k, h) in &self.histograms {
            let mut o = JsonObject::new();
            o.u64("count", h.count)
                .f64("sum", h.sum)
                .f64("mean", h.mean)
                .f64("min", h.min)
                .f64("max", h.max)
                .f64("p50", h.p50)
                .f64("p95", h.p95)
                .f64("p99", h.p99)
                .raw("bounds", &array_f64(&h.bounds))
                .raw("counts", &array_u64(&h.counts));
            hists.raw(k, &o.finish());
        }
        let mut out = JsonObject::new();
        out.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish());
        out.finish()
    }
}

/// Ignores lock poisoning: a poisoned lock only means another thread
/// panicked mid-update, and metrics are advisory, so keep going with
/// whatever state is there.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// See [`read`].
fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Saturating counter bump. The compare-and-swap loop (rather than a plain
/// `fetch_add`) preserves the saturating semantics of the old locked map.
fn counter_bump(c: &AtomicU64, delta: u64) {
    let _ = c.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(delta))
    });
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        {
            let map = read(&self.counters);
            if let Some(c) = map.get(name) {
                counter_bump(c, delta);
                return;
            }
        }
        let mut map = write(&self.counters);
        match map.get(name) {
            // Another thread may have inserted between our two lock scopes.
            Some(c) => counter_bump(c, delta),
            None => {
                map.insert(name.to_string(), AtomicU64::new(delta));
            }
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        {
            let map = read(&self.gauges);
            if let Some(g) = map.get(name) {
                g.store(value.to_bits(), Ordering::Relaxed);
                return;
            }
        }
        let mut map = write(&self.gauges);
        match map.get(name) {
            Some(g) => g.store(value.to_bits(), Ordering::Relaxed),
            None => {
                map.insert(name.to_string(), AtomicU64::new(value.to_bits()));
            }
        }
    }

    /// Records `value` into the histogram `name`, creating it with the
    /// default wall-time buckets if absent.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, Histogram::duration_default);
    }

    /// Records `value` into the histogram `name`, creating it with `make`
    /// if absent. The bucket layout of an existing histogram wins.
    pub fn observe_with(&self, name: &str, value: f64, make: impl FnOnce() -> Histogram) {
        {
            let map = read(&self.histograms);
            if let Some(h) = map.get(name) {
                h.record(value);
                return;
            }
        }
        let mut map = write(&self.histograms);
        map.entry(name.to_string())
            .or_insert_with(|| AtomicHistogram::from_histogram(make()))
            .record(value);
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: read(&self.counters)
                .iter()
                .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
                .collect(),
            gauges: read(&self.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
                .collect(),
            histograms: read(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(&h.to_histogram())))
                .collect(),
        }
    }

    /// Clears every metric.
    pub fn reset(&self) {
        // Hold all three write locks together so the clear is atomic with
        // respect to recorders (which mutate under a read lock).
        let mut counters = write(&self.counters);
        let mut gauges = write(&self.gauges);
        let mut histograms = write(&self.histograms);
        counters.clear();
        gauges.clear();
        histograms.clear();
    }

    /// Atomically snapshots and clears. All three write locks are held
    /// together and recorders mutate under read locks, so no sample
    /// recorded concurrently is either lost or double-counted.
    pub fn snapshot_and_reset(&self) -> Snapshot {
        let mut counters = write(&self.counters);
        let mut gauges = write(&self.gauges);
        let mut histograms = write(&self.histograms);
        Snapshot {
            counters: std::mem::take(&mut *counters)
                .into_iter()
                .map(|(k, c)| (k, c.into_inner()))
                .collect(),
            gauges: std::mem::take(&mut *gauges)
                .into_iter()
                .map(|(k, g)| (k, f64::from_bits(g.into_inner())))
                .collect(),
            histograms: std::mem::take(&mut *histograms)
                .into_iter()
                .map(|(k, h)| (k, HistogramSnapshot::of(&h.to_histogram())))
                .collect(),
        }
    }
}

/// The process-wide registry behind the crate's free functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        let s = r.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.counters["b"], 1);
        assert_eq!(s.gauges["g"], 2.5);
    }

    #[test]
    fn histograms_via_observe() {
        let r = Registry::new();
        r.observe("h", 0.5);
        r.observe("h", 1.5);
        let s = r.snapshot();
        assert_eq!(s.histograms["h"].count, 2);
        assert!((s.histograms["h"].sum - 2.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_reset_isolation() {
        let r = Registry::new();
        r.counter_add("x", 1);
        r.observe("h", 1.0);
        let first = r.snapshot_and_reset();
        assert_eq!(first.counters["x"], 1);
        assert!(r.snapshot().is_empty());
        // Post-reset activity lands in a fresh state.
        r.counter_add("x", 7);
        assert_eq!(r.snapshot().counters["x"], 7);
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.observe("h", 2.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"p95\""] {
            assert!(json.contains(key), "{json}");
        }
    }

    /// Property: concurrent counter increments are never lost.
    #[test]
    fn concurrent_counter_adds() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("n", 1);
                        r.observe("h", 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counters["n"], 4000);
        assert_eq!(s.histograms["h"].count, 4000);
    }

    /// Property: with adds racing against `snapshot_and_reset`, every add
    /// lands in exactly one snapshot (or the final state) — none lost,
    /// none double-counted.
    #[test]
    fn concurrent_adds_with_snapshot_reset_conserve_total() {
        let r = Arc::new(Registry::new());
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        r.counter_add("n", 1);
                        r.observe("h", 0.5);
                    }
                })
            })
            .collect();
        let reader = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let (mut c, mut o) = (0u64, 0u64);
                for _ in 0..50 {
                    let s = r.snapshot_and_reset();
                    c += s.counters.get("n").copied().unwrap_or(0);
                    o += s.histograms.get("h").map_or(0, |h| h.count);
                    std::thread::yield_now();
                }
                (c, o)
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let (mut c, mut o) = reader.join().unwrap();
        let fin = r.snapshot();
        c += fin.counters.get("n").copied().unwrap_or(0);
        o += fin.histograms.get("h").map_or(0, |h| h.count);
        assert_eq!(c, 8000, "counter adds lost or double-counted");
        assert_eq!(o, 8000, "histogram samples lost or double-counted");
    }

    /// Property: across random interleavings of add/observe/reset, the
    /// state after the final reset only reflects post-reset operations.
    #[test]
    fn snapshot_reset_random_sequences() {
        use crate::hist::Histogram;
        for seed in 1..30u64 {
            let mut state = seed;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545F4914F6CDD1D)
            };
            let r = Registry::new();
            let mut since_reset_count = 0u64;
            let mut since_reset_obs = 0u64;
            for _ in 0..200 {
                match next() % 4 {
                    0 => {
                        r.counter_add("c", 1);
                        since_reset_count += 1;
                    }
                    1 => {
                        r.observe_with("h", 1.0, || Histogram::new(vec![10.0]));
                        since_reset_obs += 1;
                    }
                    2 => {
                        r.gauge_set("g", 3.0);
                    }
                    _ => {
                        r.reset();
                        since_reset_count = 0;
                        since_reset_obs = 0;
                    }
                }
            }
            let s = r.snapshot();
            assert_eq!(
                s.counters.get("c").copied().unwrap_or(0),
                since_reset_count,
                "seed {seed}"
            );
            assert_eq!(
                s.histograms.get("h").map_or(0, |h| h.count),
                since_reset_obs,
                "seed {seed}"
            );
        }
    }
}
