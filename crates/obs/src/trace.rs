//! Deterministic causal trace contexts.
//!
//! A trace follows one submitted report batch through the serving engine:
//! the ingest allocates a root span, the shard flush that folds those
//! reports through the MLE emits a fan-in span naming every covered
//! ingest root in its `parents` array, and the epoch publication that
//! makes the results readable emits a further fan-in span over the flush
//! spans it exposes. Reports dropped at the boundary (non-finite values,
//! unknown tasks) get a terminal quarantine child span instead. Following
//! `parent` / `parents` span ids through the JSONL stream reconstructs
//! the full ingest → flush → publish path of any report.
//!
//! Fan-in stages (flush, publish) emit *one* multi-parent span per batch
//! rather than one child span per covered ingest: per-child events scale
//! with submit rate × shard count and dominated tracing overhead, while
//! the multi-parent form records the identical causal DAG at one event
//! per flush and one per epoch.
//!
//! Ids come from a seeded splitmix64 counter stream ([`seed_ids`] /
//! [`next_id`]), not from time or randomness: a single-threaded replay of
//! the same submission sequence assigns the same ids, so traces can be
//! diffed across runs. (With concurrent producers the *assignment order*
//! is scheduling-dependent, but ids remain unique: splitmix64 is a
//! bijection, so distinct counter values never collide.)

use std::sync::atomic::{AtomicU64, Ordering};

/// Reserved parent id of a root span. No real span ever gets id 0.
pub const NO_PARENT: u64 = 0;

/// Weyl-sequence increment of splitmix64 (odd, so multiplication by it is
/// a bijection on u64 and distinct counter values map to distinct ids).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

static SEED: AtomicU64 = AtomicU64::new(0);
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// splitmix64 finalizer: the same mix used by `eta2_serve::shard_of`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Re-seeds the id stream and restarts its counter, so a replay that
/// seeds with the same value sees the same id sequence.
pub fn seed_ids(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    COUNTER.store(0, Ordering::Relaxed);
}

/// Next id in the stream. Never returns [`NO_PARENT`].
pub fn next_id() -> u64 {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
    let id = mix(SEED.load(Ordering::Relaxed) ^ n.wrapping_mul(GOLDEN));
    if id == NO_PARENT {
        1
    } else {
        id
    }
}

/// Span identity carried along one report batch's causal path.
///
/// `Copy` on purpose: contexts ride inside shard pending queues and are
/// cloned freely when a flush fans one ingest out to its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span on this path shares.
    pub trace: u64,
    /// This span's own id.
    pub span: u64,
    /// The id of the span that caused this one ([`NO_PARENT`] for roots).
    pub parent: u64,
}

impl TraceContext {
    /// Starts a fresh trace with a root span (`parent == NO_PARENT`).
    pub fn root() -> TraceContext {
        TraceContext {
            trace: next_id(),
            span: next_id(),
            parent: NO_PARENT,
        }
    }

    /// A child span within the same trace, caused by `self`.
    #[must_use]
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            span: next_id(),
            parent: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_stream_is_reproducible() {
        seed_ids(42);
        let a: Vec<u64> = (0..8).map(|_| next_id()).collect();
        seed_ids(42);
        let b: Vec<u64> = (0..8).map(|_| next_id()).collect();
        assert_eq!(a, b);
        seed_ids(43);
        let c: Vec<u64> = (0..8).map(|_| next_id()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        seed_ids(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, NO_PARENT);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn child_keeps_trace_and_links_parent() {
        seed_ids(1);
        let root = TraceContext::root();
        assert_eq!(root.parent, NO_PARENT);
        let c = root.child();
        assert_eq!(c.trace, root.trace);
        assert_eq!(c.parent, root.span);
        assert_ne!(c.span, root.span);
        let g = c.child();
        assert_eq!(g.trace, root.trace);
        assert_eq!(g.parent, c.span);
    }
}
