//! Flight recorder: a fixed-capacity ring of the most recent event lines,
//! kept in memory at all times and written to disk only when something
//! goes wrong (an `eta2-check` invariant breach, or a panic once
//! [`install_panic_hook`] has run). A fuzzer failure or production crash
//! then leaves a replayable JSONL post-mortem behind instead of a bare
//! backtrace.
//!
//! The ring is lock-free across writers in the way that matters: each
//! [`record_line`] claims a slot with one atomic `fetch_add` and only then
//! takes that slot's own mutex, so concurrent emitters contend only when
//! they land on the same slot (i.e. when one laps the other). Slot
//! mutexes are held just long enough to swap a `String`.
//!
//! Configuration comes from [`configure`] (tests, embedders) or
//! [`init_from_env`] (CLI): `ETA2_FLIGHT_DIR` names the dump directory
//! and enables capture; `ETA2_FLIGHT_CAP` overrides the default capacity
//! of 1024 events. Dumps are capped at [`MAX_DUMPS`] per process so a
//! breach storm in `Count` mode cannot fill the disk.

use crate::json::JsonObject;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default ring capacity (events), override with `ETA2_FLIGHT_CAP`.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Maximum dump files one process will write.
pub const MAX_DUMPS: usize = 8;

/// A fixed-capacity ring of recent event lines.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<String>>,
    writes: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding the last `capacity` lines (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(String::new())).collect(),
            writes: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total lines ever recorded (including ones since overwritten).
    pub fn total(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Records one line, overwriting the oldest when full.
    pub fn record(&self, line: &str) {
        let n = self.writes.fetch_add(1, Ordering::Relaxed);
        let idx = (n % self.slots.len() as u64) as usize;
        let mut slot = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
        slot.clear();
        slot.push_str(line);
    }

    /// The retained lines, oldest first. Empty slots (never written, or
    /// caught mid-overwrite) are skipped.
    pub fn recent(&self) -> Vec<String> {
        let total = self.writes.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let (start, len) = if total <= cap {
            (0, total)
        } else {
            (total % cap, cap)
        };
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let idx = ((start + i) % cap) as usize;
            let slot = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
            if !slot.is_empty() {
                out.push(slot.clone());
            }
        }
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static DUMPS: AtomicUsize = AtomicUsize::new(0);
static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Whether the global flight recorder is capturing events.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables the global recorder, dumping into `dir` on breach/panic.
///
/// The ring's capacity is fixed by the *first* call in the process (the
/// buffer is allocated once and never resized); later calls only change
/// the dump directory. Passing `None` as `dir` disables capture.
pub fn configure(dir: Option<&Path>, capacity: usize) {
    let _ = RECORDER.get_or_init(|| FlightRecorder::new(capacity));
    let mut slot = DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner());
    match dir {
        Some(d) => {
            *slot = Some(d.to_path_buf());
            ENABLED.store(true, Ordering::Relaxed);
        }
        None => {
            *slot = None;
            ENABLED.store(false, Ordering::Relaxed);
        }
    }
}

/// Enables the recorder from `ETA2_FLIGHT_DIR` / `ETA2_FLIGHT_CAP`.
/// Returns whether capture is now on.
pub fn init_from_env() -> bool {
    match crate::env_path("ETA2_FLIGHT_DIR") {
        Some(dir) => {
            let cap = std::env::var("ETA2_FLIGHT_CAP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(DEFAULT_CAPACITY);
            configure(Some(&dir), cap);
            true
        }
        None => false,
    }
}

/// Records one already-serialized event line into the global ring.
/// Called by [`crate::emit`] for every event while capture is on.
#[inline]
pub fn record_line(line: &str) {
    if let Some(rec) = RECORDER.get() {
        rec.record(line);
    }
}

/// The retained lines of the global ring, oldest first.
pub fn recent() -> Vec<String> {
    RECORDER
        .get()
        .map(FlightRecorder::recent)
        .unwrap_or_default()
}

/// Dumps the ring to a fresh `flight-<pid>-<n>.jsonl` in the configured
/// directory. The first line is a header object (`type: "flight_dump"`,
/// the dump reason, and captured/dropped counts); the rest are the
/// retained event lines, oldest first.
///
/// Returns the written path, or `None` when capture is off, the
/// per-process [`MAX_DUMPS`] cap is reached, or I/O fails (dumping runs
/// on breach/panic paths, so errors are swallowed — a failing dump must
/// never mask the original failure).
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let dir = DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()?;
    let n = DUMPS.fetch_add(1, Ordering::Relaxed);
    if n >= MAX_DUMPS {
        return None;
    }
    let rec = RECORDER.get()?;
    let lines = rec.recent();
    let total = rec.total();
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("flight-{}-{}.jsonl", std::process::id(), n));
    let mut header = JsonObject::new();
    header
        .str("type", "flight_dump")
        .str("reason", reason)
        .u64("captured", lines.len() as u64)
        .u64("dropped", total.saturating_sub(lines.len() as u64))
        .u64("capacity", rec.capacity() as u64);
    let mut body = header.finish();
    body.push('\n');
    for line in &lines {
        body.push_str(line);
        body.push('\n');
    }
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Chains a panic hook that dumps the flight ring before the previous
/// hook (backtrace printing etc.) runs. Installs at most once per
/// process; a no-op on repeat calls.
pub fn install_panic_hook() {
    if HOOK_INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic".to_string());
        if let Some(path) = dump(&format!("panic: {msg}")) {
            eprintln!("eta2-obs: flight recorder dumped to {}", path.display());
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_last_capacity_lines_in_order() {
        let rec = FlightRecorder::new(4);
        assert_eq!(rec.recent(), Vec::<String>::new());
        for i in 0..3 {
            rec.record(&format!("l{i}"));
        }
        assert_eq!(rec.recent(), vec!["l0", "l1", "l2"]);
        for i in 3..10 {
            rec.record(&format!("l{i}"));
        }
        assert_eq!(rec.recent(), vec!["l6", "l7", "l8", "l9"]);
        assert_eq!(rec.total(), 10);
        assert_eq!(rec.capacity(), 4);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let rec = FlightRecorder::new(0);
        rec.record("x");
        assert_eq!(rec.capacity(), 1);
        assert_eq!(rec.recent(), vec!["x"]);
    }

    #[test]
    fn concurrent_recorders_never_lose_the_count() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..500 {
                        rec.record(&format!("t{t}-{i}"));
                    }
                });
            }
        });
        assert_eq!(rec.total(), 2000);
        let recent = rec.recent();
        assert_eq!(recent.len(), 64);
    }
}
