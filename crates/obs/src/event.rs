//! Typed trace events and their JSON Lines encoding.
//!
//! Every event serializes as one flat JSON object with three envelope
//! fields — `seq` (process-global monotonic counter), `ts_ms` (Unix epoch
//! milliseconds) and `type` (discriminator string) — followed by the
//! variant's payload fields. Keys are emitted in a fixed order so the
//! schema is stable across runs; consumers should nevertheless index by
//! key, not position.

use crate::json::JsonObject;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A structured trace event from one of the instrumented subsystems.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One MLE iteration (ETA² §4.1): largest relative truth change across
    /// tasks this round. `max_rel_delta` is `None` on the first iteration,
    /// where no previous estimate exists to compare against.
    MleIteration {
        /// `"mle"` for static batch solves, `"dynamic"` for streaming.
        source: &'static str,
        /// 1-based iteration number.
        iteration: u64,
        /// Number of tasks being estimated.
        tasks: u64,
        /// Max relative truth delta vs the previous iteration.
        max_rel_delta: Option<f64>,
    },
    /// Terminal state of one MLE solve.
    MleOutcome {
        /// `"mle"` or `"dynamic"`.
        source: &'static str,
        /// Iterations executed.
        iterations: u64,
        /// Whether the 5 % convergence criterion was met (vs hitting the
        /// iteration cap).
        converged: bool,
        /// Number of tasks estimated.
        tasks: u64,
    },
    /// Dynamic domain discovery created a new expertise domain (§3).
    DomainCreated {
        /// Numeric domain id.
        domain: u64,
    },
    /// Two expertise domains were merged; `absorbed`'s accumulators folded
    /// into `kept`.
    DomainMerged {
        /// Surviving domain id.
        kept: u64,
        /// Domain id removed by the merge.
        absorbed: u64,
    },
    /// Greedy allocator picked one (task, user) pair (Algorithm 1, §5.1).
    AllocationPick {
        /// `"per_hour"` or `"plain"` efficiency.
        strategy: &'static str,
        /// Task id.
        task: u64,
        /// User id.
        user: u64,
        /// Efficiency score of the winning pair at pick time.
        efficiency: f64,
    },
    /// One round of min-cost allocation completed (Algorithm 2, §5.2).
    AllocationRound {
        /// 1-based round number.
        round: u64,
        /// Assignments made this round.
        assigned: u64,
        /// Budget spent this round.
        round_cost: f64,
        /// Tasks still below the quality threshold after this round.
        pending_after: u64,
    },
    /// Terminal state of one allocation request.
    AllocationOutcome {
        /// `"max_quality"` or `"min_cost"`.
        strategy: &'static str,
        /// Total assignments in the final allocation.
        assignments: u64,
        /// Total cost of the final allocation.
        total_cost: f64,
        /// Rounds used (1 for single-shot max-quality).
        rounds: u64,
        /// Whether every task met its quality threshold.
        all_passed: bool,
    },
    /// One simulated day finished.
    SimDay {
        /// 0-based day index.
        day: u64,
        /// Tasks simulated that day.
        tasks: u64,
        /// Mean absolute truth error for the day (non-finite when no tasks
        /// ran; serialized as `null`).
        error: f64,
        /// Cost accumulated over the run so far.
        cumulative_cost: f64,
    },
    /// End-of-run summary built from `RunMetrics::summary()`.
    RunSummary {
        /// Allocation approach name.
        approach: String,
        /// Days simulated.
        days: u64,
        /// Mean per-day error over the run.
        overall_error: f64,
        /// Total cost over the run.
        total_cost: f64,
        /// Mean of the per-day error series.
        mean_daily_error: f64,
        /// Median of the per-day error series.
        p50_daily_error: f64,
        /// 95th percentile of the per-day error series.
        p95_daily_error: f64,
        /// MLE iterations summed over all days.
        total_mle_iterations: u64,
        /// Tasks left unassigned across the run.
        uncovered_tasks: u64,
        /// Expertise domains at end of run.
        final_domains: u64,
    },
    /// One server API call completed.
    ServerRequest {
        /// Operation name, e.g. `"allocate_max_quality"`.
        op: &'static str,
        /// Whether the call succeeded.
        ok: bool,
        /// Short human-readable outcome description.
        detail: String,
    },
    /// The fault harness injected one fault into the crowd's behaviour.
    FaultInjected {
        /// `"dropout"`, `"corrupt"`, `"straggler"` or `"collusion"`.
        kind: &'static str,
        /// 0-based simulated day.
        day: u64,
        /// Affected user id.
        user: u64,
        /// Affected task id.
        task: u64,
    },
    /// Truth analysis fell back from the full MLE for one task.
    MleFallback {
        /// `"mle"` or `"dynamic"`.
        source: &'static str,
        /// Task id.
        task: u64,
        /// Finite observations available for the task.
        observations: u64,
        /// Why the fallback fired, e.g. `"no_finite_observations"`.
        reason: &'static str,
    },
    /// An allocator re-queued a task whose assignment produced no usable
    /// report (dropout).
    AllocationRetry {
        /// `"min_cost"` or `"engine"` (day-level re-allocation).
        strategy: &'static str,
        /// Task id.
        task: u64,
        /// 1-based retry attempt for this task.
        attempt: u64,
    },
    /// Dynamic expertise quarantined a diverging user's update instead of
    /// committing it to the domain.
    UserQuarantined {
        /// User id.
        user: u64,
        /// Domain id.
        domain: u64,
        /// Mean squared normalized error that tripped the threshold
        /// (non-finite serializes as `null`).
        mean_sq_error: f64,
    },
    /// The serving engine flushed one shard's pending batch through the
    /// MLE.
    ServeBatchFlush {
        /// Shard index.
        shard: u64,
        /// Reports folded in by this flush.
        reports: u64,
        /// Distinct tasks in the flushed batch.
        tasks: u64,
        /// MLE iterations the slowest domain needed.
        iterations: u64,
        /// Whether every domain in the batch converged.
        converged: bool,
    },
    /// The serving engine published a new immutable epoch snapshot.
    ServeEpochPublished {
        /// Epoch counter (strictly increasing).
        epoch: u64,
        /// Flushed truth estimates visible at this epoch.
        truths: u64,
        /// Registered tasks visible at this epoch.
        tasks: u64,
        /// Reports still pending across all shards at publish time.
        queue_depth: u64,
    },
    /// A runtime invariant from the eta2-check registry was violated.
    InvariantBreach {
        /// Invariant name, e.g. `"serve.flushes_monotone"`.
        name: &'static str,
        /// Formatted detail from the breach site.
        detail: String,
    },
    /// Root span of a causal trace: one report batch crossed the serving
    /// engine's submit boundary with tracing on. `parent` is always 0.
    TraceIngest {
        /// Trace id shared by every span on this batch's path.
        trace: u64,
        /// This span's id.
        span: u64,
        /// Parent span id (always 0 for the root).
        parent: u64,
        /// Reports accepted into shard pending queues.
        accepted: u64,
        /// Non-finite reports quarantined at the boundary.
        quarantined: u64,
        /// Reports naming an unregistered task, dropped at the boundary.
        unknown: u64,
    },
    /// A shard flush folded its pending reports through the MLE. Fan-in
    /// span: `parents` lists every ingest root span whose reports were in
    /// the batch, so one event closes all of them. (A per-ingest child
    /// event here would scale with submit rate x shard count and was the
    /// dominant tracing cost; the multi-parent form keeps the causal DAG
    /// exact at one event per flush.)
    TraceFlush {
        /// This span's id.
        span: u64,
        /// The ingest root spans whose reports this flush folded in.
        parents: Vec<u64>,
        /// Shard index that flushed.
        shard: u64,
        /// Reports the flush folded in.
        reports: u64,
        /// MLE iterations the slowest domain needed.
        iterations: u64,
        /// Whether every domain in the batch converged.
        converged: bool,
    },
    /// An epoch publication made flushed results readable — the terminal
    /// span of every delivered trace. Fan-in span: `parents` lists the
    /// flush spans this epoch covers.
    TracePublish {
        /// This span's id.
        span: u64,
        /// The flush spans whose results this epoch exposes.
        parents: Vec<u64>,
        /// The published epoch counter.
        epoch: u64,
    },
    /// Reports from the `parent` ingest span were dropped at the submit
    /// boundary — the terminal span for quarantined/unknown-task reports.
    TraceQuarantine {
        /// Trace id.
        trace: u64,
        /// This span's id.
        span: u64,
        /// The ingest span whose reports were dropped.
        parent: u64,
        /// Non-finite reports quarantined.
        quarantined: u64,
        /// Unknown-task reports dropped.
        unknown: u64,
    },
    /// A durable engine rebuilt itself from checkpoint plus WAL tail. A
    /// root span: recovery causally precedes everything else the process
    /// does.
    TraceRecover {
        /// Trace id.
        trace: u64,
        /// This span's id.
        span: u64,
        /// Root marker ([`crate::trace::NO_PARENT`]).
        parent: u64,
        /// WAL position the loaded checkpoint anchored (0 without one).
        checkpoint_position: u64,
        /// Log records replayed on top of the checkpoint.
        records: u64,
        /// Bytes of torn tail dropped by the log open.
        torn_bytes: u64,
        /// The epoch the recovered engine published.
        epoch: u64,
    },
    /// One request crossed the network front door. A root span opened at
    /// socket read; a submit's `trace_ingest` span opens as its child, so
    /// a delivered batch traces socket → ingest → flush → publish.
    TraceNetRequest {
        /// Trace id.
        trace: u64,
        /// This span's id.
        span: u64,
        /// Root marker ([`crate::trace::NO_PARENT`]).
        parent: u64,
        /// Wire operation name (`"submit"`, `"truth"`, ...).
        op: &'static str,
        /// Request frame size in bytes (0 for the HTTP dialect).
        bytes: u64,
    },
}

impl Event {
    /// The `type` discriminator this event serializes with.
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::MleIteration { .. } => "mle_iteration",
            Event::MleOutcome { .. } => "mle_outcome",
            Event::DomainCreated { .. } => "domain_created",
            Event::DomainMerged { .. } => "domain_merged",
            Event::AllocationPick { .. } => "alloc_pick",
            Event::AllocationRound { .. } => "alloc_round",
            Event::AllocationOutcome { .. } => "alloc_outcome",
            Event::SimDay { .. } => "sim_day",
            Event::RunSummary { .. } => "run_summary",
            Event::ServerRequest { .. } => "server_request",
            Event::FaultInjected { .. } => "fault_injected",
            Event::MleFallback { .. } => "mle_fallback",
            Event::AllocationRetry { .. } => "alloc_retry",
            Event::UserQuarantined { .. } => "user_quarantined",
            Event::ServeBatchFlush { .. } => "serve_batch_flush",
            Event::ServeEpochPublished { .. } => "serve_epoch_published",
            Event::InvariantBreach { .. } => "invariant_breach",
            Event::TraceIngest { .. } => "trace_ingest",
            Event::TraceFlush { .. } => "trace_flush",
            Event::TracePublish { .. } => "trace_publish",
            Event::TraceQuarantine { .. } => "trace_quarantine",
            Event::TraceRecover { .. } => "trace_recover",
            Event::TraceNetRequest { .. } => "trace_net_request",
        }
    }

    /// Serializes the event as one JSON line (no trailing newline),
    /// stamping the global sequence number and wall-clock time.
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("seq", SEQ.fetch_add(1, Ordering::Relaxed))
            .u64("ts_ms", now_ms())
            .str("type", self.type_name());
        match self {
            Event::MleIteration {
                source,
                iteration,
                tasks,
                max_rel_delta,
            } => {
                o.str("source", source)
                    .u64("iteration", *iteration)
                    .u64("tasks", *tasks)
                    .f64("max_rel_delta", max_rel_delta.unwrap_or(f64::NAN));
            }
            Event::MleOutcome {
                source,
                iterations,
                converged,
                tasks,
            } => {
                o.str("source", source)
                    .u64("iterations", *iterations)
                    .bool("converged", *converged)
                    .u64("tasks", *tasks);
            }
            Event::DomainCreated { domain } => {
                o.u64("domain", *domain);
            }
            Event::DomainMerged { kept, absorbed } => {
                o.u64("kept", *kept).u64("absorbed", *absorbed);
            }
            Event::AllocationPick {
                strategy,
                task,
                user,
                efficiency,
            } => {
                o.str("strategy", strategy)
                    .u64("task", *task)
                    .u64("user", *user)
                    .f64("efficiency", *efficiency);
            }
            Event::AllocationRound {
                round,
                assigned,
                round_cost,
                pending_after,
            } => {
                o.u64("round", *round)
                    .u64("assigned", *assigned)
                    .f64("round_cost", *round_cost)
                    .u64("pending_after", *pending_after);
            }
            Event::AllocationOutcome {
                strategy,
                assignments,
                total_cost,
                rounds,
                all_passed,
            } => {
                o.str("strategy", strategy)
                    .u64("assignments", *assignments)
                    .f64("total_cost", *total_cost)
                    .u64("rounds", *rounds)
                    .bool("all_passed", *all_passed);
            }
            Event::SimDay {
                day,
                tasks,
                error,
                cumulative_cost,
            } => {
                o.u64("day", *day)
                    .u64("tasks", *tasks)
                    .f64("error", *error)
                    .f64("cumulative_cost", *cumulative_cost);
            }
            Event::RunSummary {
                approach,
                days,
                overall_error,
                total_cost,
                mean_daily_error,
                p50_daily_error,
                p95_daily_error,
                total_mle_iterations,
                uncovered_tasks,
                final_domains,
            } => {
                o.str("approach", approach)
                    .u64("days", *days)
                    .f64("overall_error", *overall_error)
                    .f64("total_cost", *total_cost)
                    .f64("mean_daily_error", *mean_daily_error)
                    .f64("p50_daily_error", *p50_daily_error)
                    .f64("p95_daily_error", *p95_daily_error)
                    .u64("total_mle_iterations", *total_mle_iterations)
                    .u64("uncovered_tasks", *uncovered_tasks)
                    .u64("final_domains", *final_domains);
            }
            Event::ServerRequest { op, ok, detail } => {
                o.str("op", op).bool("ok", *ok).str("detail", detail);
            }
            Event::FaultInjected {
                kind,
                day,
                user,
                task,
            } => {
                o.str("kind", kind)
                    .u64("day", *day)
                    .u64("user", *user)
                    .u64("task", *task);
            }
            Event::MleFallback {
                source,
                task,
                observations,
                reason,
            } => {
                o.str("source", source)
                    .u64("task", *task)
                    .u64("observations", *observations)
                    .str("reason", reason);
            }
            Event::AllocationRetry {
                strategy,
                task,
                attempt,
            } => {
                o.str("strategy", strategy)
                    .u64("task", *task)
                    .u64("attempt", *attempt);
            }
            Event::UserQuarantined {
                user,
                domain,
                mean_sq_error,
            } => {
                o.u64("user", *user)
                    .u64("domain", *domain)
                    .f64("mean_sq_error", *mean_sq_error);
            }
            Event::ServeBatchFlush {
                shard,
                reports,
                tasks,
                iterations,
                converged,
            } => {
                o.u64("shard", *shard)
                    .u64("reports", *reports)
                    .u64("tasks", *tasks)
                    .u64("iterations", *iterations)
                    .bool("converged", *converged);
            }
            Event::ServeEpochPublished {
                epoch,
                truths,
                tasks,
                queue_depth,
            } => {
                o.u64("epoch", *epoch)
                    .u64("truths", *truths)
                    .u64("tasks", *tasks)
                    .u64("queue_depth", *queue_depth);
            }
            Event::InvariantBreach { name, detail } => {
                o.str("name", name).str("detail", detail);
            }
            Event::TraceIngest {
                trace,
                span,
                parent,
                accepted,
                quarantined,
                unknown,
            } => {
                o.u64("trace", *trace)
                    .u64("span", *span)
                    .u64("parent", *parent)
                    .u64("accepted", *accepted)
                    .u64("quarantined", *quarantined)
                    .u64("unknown", *unknown);
            }
            Event::TraceFlush {
                span,
                parents,
                shard,
                reports,
                iterations,
                converged,
            } => {
                o.u64("span", *span)
                    .raw("parents", &crate::json::array_u64(parents))
                    .u64("shard", *shard)
                    .u64("reports", *reports)
                    .u64("iterations", *iterations)
                    .bool("converged", *converged);
            }
            Event::TracePublish {
                span,
                parents,
                epoch,
            } => {
                o.u64("span", *span)
                    .raw("parents", &crate::json::array_u64(parents))
                    .u64("epoch", *epoch);
            }
            Event::TraceQuarantine {
                trace,
                span,
                parent,
                quarantined,
                unknown,
            } => {
                o.u64("trace", *trace)
                    .u64("span", *span)
                    .u64("parent", *parent)
                    .u64("quarantined", *quarantined)
                    .u64("unknown", *unknown);
            }
            Event::TraceRecover {
                trace,
                span,
                parent,
                checkpoint_position,
                records,
                torn_bytes,
                epoch,
            } => {
                o.u64("trace", *trace)
                    .u64("span", *span)
                    .u64("parent", *parent)
                    .u64("checkpoint_position", *checkpoint_position)
                    .u64("records", *records)
                    .u64("torn_bytes", *torn_bytes)
                    .u64("epoch", *epoch);
            }
            Event::TraceNetRequest {
                trace,
                span,
                parent,
                op,
                bytes,
            } => {
                o.u64("trace", *trace)
                    .u64("span", *span)
                    .u64("parent", *parent)
                    .str("op", op)
                    .u64("bytes", *bytes);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(line: &str) -> Vec<String> {
        // Good-enough key scraper for flat objects with no nested braces:
        // every `"key":` at top level. Values are strings without `":` or
        // scalars, so scanning for `":"` boundaries is safe for these tests.
        let mut keys = Vec::new();
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_str = false;
        let mut start = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'"' if !in_str => {
                    in_str = true;
                    start = i + 1;
                }
                b'\\' if in_str => i += 1,
                b'"' if in_str => {
                    in_str = false;
                    if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                        keys.push(line[start..i].to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
        keys
    }

    #[test]
    fn schema_stable_keys_per_variant() {
        let cases: Vec<(Event, Vec<&str>)> = vec![
            (
                Event::MleIteration {
                    source: "mle",
                    iteration: 1,
                    tasks: 10,
                    max_rel_delta: None,
                },
                vec!["source", "iteration", "tasks", "max_rel_delta"],
            ),
            (
                Event::MleOutcome {
                    source: "dynamic",
                    iterations: 4,
                    converged: true,
                    tasks: 10,
                },
                vec!["source", "iterations", "converged", "tasks"],
            ),
            (Event::DomainCreated { domain: 3 }, vec!["domain"]),
            (
                Event::DomainMerged {
                    kept: 1,
                    absorbed: 2,
                },
                vec!["kept", "absorbed"],
            ),
            (
                Event::AllocationPick {
                    strategy: "per_hour",
                    task: 5,
                    user: 9,
                    efficiency: 0.75,
                },
                vec!["strategy", "task", "user", "efficiency"],
            ),
            (
                Event::AllocationRound {
                    round: 2,
                    assigned: 3,
                    round_cost: 1.5,
                    pending_after: 0,
                },
                vec!["round", "assigned", "round_cost", "pending_after"],
            ),
            (
                Event::AllocationOutcome {
                    strategy: "min_cost",
                    assignments: 12,
                    total_cost: 8.0,
                    rounds: 3,
                    all_passed: true,
                },
                vec![
                    "strategy",
                    "assignments",
                    "total_cost",
                    "rounds",
                    "all_passed",
                ],
            ),
            (
                Event::SimDay {
                    day: 0,
                    tasks: 20,
                    error: 0.1,
                    cumulative_cost: 4.0,
                },
                vec!["day", "tasks", "error", "cumulative_cost"],
            ),
            (
                Event::RunSummary {
                    approach: "eta2".into(),
                    days: 7,
                    overall_error: 0.2,
                    total_cost: 30.0,
                    mean_daily_error: 0.2,
                    p50_daily_error: 0.19,
                    p95_daily_error: 0.3,
                    total_mle_iterations: 40,
                    uncovered_tasks: 0,
                    final_domains: 5,
                },
                vec![
                    "approach",
                    "days",
                    "overall_error",
                    "total_cost",
                    "mean_daily_error",
                    "p50_daily_error",
                    "p95_daily_error",
                    "total_mle_iterations",
                    "uncovered_tasks",
                    "final_domains",
                ],
            ),
            (
                Event::ServerRequest {
                    op: "ingest",
                    ok: true,
                    detail: "3 observations".into(),
                },
                vec!["op", "ok", "detail"],
            ),
            (
                Event::FaultInjected {
                    kind: "dropout",
                    day: 2,
                    user: 7,
                    task: 11,
                },
                vec!["kind", "day", "user", "task"],
            ),
            (
                Event::MleFallback {
                    source: "mle",
                    task: 4,
                    observations: 0,
                    reason: "no_finite_observations",
                },
                vec!["source", "task", "observations", "reason"],
            ),
            (
                Event::AllocationRetry {
                    strategy: "min_cost",
                    task: 6,
                    attempt: 1,
                },
                vec!["strategy", "task", "attempt"],
            ),
            (
                Event::UserQuarantined {
                    user: 3,
                    domain: 1,
                    mean_sq_error: f64::INFINITY,
                },
                vec!["user", "domain", "mean_sq_error"],
            ),
            (
                Event::ServeBatchFlush {
                    shard: 2,
                    reports: 64,
                    tasks: 16,
                    iterations: 5,
                    converged: true,
                },
                vec!["shard", "reports", "tasks", "iterations", "converged"],
            ),
            (
                Event::ServeEpochPublished {
                    epoch: 9,
                    truths: 120,
                    tasks: 40,
                    queue_depth: 3,
                },
                vec!["epoch", "truths", "tasks", "queue_depth"],
            ),
            (
                Event::InvariantBreach {
                    name: "serve.flushes_monotone",
                    detail: "shard 1 went 5 -> 4".into(),
                },
                vec!["name", "detail"],
            ),
            (
                Event::TraceIngest {
                    trace: 100,
                    span: 101,
                    parent: 0,
                    accepted: 30,
                    quarantined: 1,
                    unknown: 0,
                },
                vec![
                    "trace",
                    "span",
                    "parent",
                    "accepted",
                    "quarantined",
                    "unknown",
                ],
            ),
            (
                Event::TraceFlush {
                    span: 102,
                    parents: vec![101, 99],
                    shard: 3,
                    reports: 30,
                    iterations: 4,
                    converged: true,
                },
                vec![
                    "span",
                    "parents",
                    "shard",
                    "reports",
                    "iterations",
                    "converged",
                ],
            ),
            (
                Event::TracePublish {
                    span: 103,
                    parents: vec![102],
                    epoch: 7,
                },
                vec!["span", "parents", "epoch"],
            ),
            (
                Event::TraceQuarantine {
                    trace: 100,
                    span: 104,
                    parent: 101,
                    quarantined: 1,
                    unknown: 0,
                },
                vec!["trace", "span", "parent", "quarantined", "unknown"],
            ),
            (
                Event::TraceRecover {
                    trace: 100,
                    span: 105,
                    parent: 0,
                    checkpoint_position: 12,
                    records: 3,
                    torn_bytes: 17,
                    epoch: 4,
                },
                vec![
                    "trace",
                    "span",
                    "parent",
                    "checkpoint_position",
                    "records",
                    "torn_bytes",
                    "epoch",
                ],
            ),
            (
                Event::TraceNetRequest {
                    trace: 9,
                    span: 10,
                    parent: 0,
                    op: "submit",
                    bytes: 96,
                },
                vec!["trace", "span", "parent", "op", "bytes"],
            ),
        ];
        for (ev, payload_keys) in cases {
            let line = ev.to_json_line();
            let mut expected = vec!["seq".to_string(), "ts_ms".to_string(), "type".to_string()];
            expected.extend(payload_keys.iter().map(|s| s.to_string()));
            assert_eq!(keys_of(&line), expected, "line: {line}");
            assert!(
                line.contains(&format!("\"type\":\"{}\"", ev.type_name())),
                "line: {line}"
            );
        }
    }

    #[test]
    fn seq_is_monotonic() {
        let a = Event::DomainCreated { domain: 0 }.to_json_line();
        let b = Event::DomainCreated { domain: 0 }.to_json_line();
        let seq_of = |line: &str| -> u64 {
            let rest = &line["{\"seq\":".len()..];
            rest[..rest.find(',').unwrap()].parse().unwrap()
        };
        assert!(seq_of(&b) > seq_of(&a), "{a} vs {b}");
    }

    #[test]
    fn first_iteration_delta_is_null() {
        let line = Event::MleIteration {
            source: "mle",
            iteration: 1,
            tasks: 2,
            max_rel_delta: None,
        }
        .to_json_line();
        assert!(line.contains("\"max_rel_delta\":null"), "{line}");
    }
}
