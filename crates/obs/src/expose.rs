//! Metrics exposition: renders the global registry as Prometheus text
//! format (exposition format 0.0.4) or a versioned JSON snapshot, with no
//! dependencies — ROADMAP item 1's network server can answer `/metrics`
//! with one [`expose_prometheus`] call.
//!
//! # Label embedding
//!
//! The registry keys metrics by a single string, so dimensioned series
//! embed their labels in the name: `base|key=value|key2=value2`, e.g.
//! `serve.flush_seconds|shard=3`. [`split_name`] parses that convention
//! back out; the renderer groups all series of one base name under a
//! single `# TYPE` family with proper `{key="value"}` label sets.
//!
//! # Mapping
//!
//! * Metric names are prefixed `eta2_` and non-`[a-zA-Z0-9_]` characters
//!   become `_` (`serve.flush_seconds` → `eta2_serve_flush_seconds`).
//! * Counters render as `<name>_total` with `# TYPE ... counter`.
//! * Gauges render verbatim with `# TYPE ... gauge`.
//! * Histograms render as Prometheus *summaries*: one series per quantile
//!   in {0.5, 0.95, 0.99, 0.999} plus `_sum` and `_count`. (Native
//!   Prometheus histograms need cumulative `le` buckets; the registry's
//!   quantile estimates are what operators actually alert on, and the
//!   full bucket layout remains available from [`expose_json`].)

use crate::json::JsonObject;
use crate::registry::{self, HistogramSnapshot, Snapshot};

/// Quantiles rendered for each histogram family, as (label, accessor).
const QUANTILES: [&str; 4] = ["0.5", "0.95", "0.99", "0.999"];

/// Splits a registry metric name into its base name and embedded labels.
///
/// `serve.flush_seconds|shard=3` → `("serve.flush_seconds",
/// [("shard", "3")])`. Malformed segments (no `=`) are kept as a label
/// with an empty value rather than dropped, so nothing silently vanishes
/// from the exposition.
pub fn split_name(name: &str) -> (&str, Vec<(&str, &str)>) {
    let mut parts = name.split('|');
    let base = parts.next().unwrap_or(name);
    let labels = parts
        .map(|seg| match seg.split_once('=') {
            Some((k, v)) => (k, v),
            None => (seg, ""),
        })
        .collect();
    (base, labels)
}

/// `eta2_`-prefixed Prometheus-safe metric name.
fn sanitize(base: &str) -> String {
    let mut s = String::with_capacity(base.len() + 5);
    s.push_str("eta2_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

/// Prometheus sample value: `NaN` / `+Inf` / `-Inf` literals, else the
/// shortest round-trip decimal.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a `{key="value",...}` label set ("" when empty). Label values
/// escape `\`, `"` and newline per the text-format spec.
fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_label_key(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn sanitize_label_key(k: &str) -> String {
    let mut s = String::with_capacity(k.len());
    for (i, c) in k.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                s.push('_');
            }
            s.push(c);
        } else {
            s.push('_');
        }
    }
    if s.is_empty() {
        s.push('_');
    }
    s
}

/// Escapes a HELP line payload (`\` and newline, per spec).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One family: every labeled series sharing a base name, in registry
/// (BTreeMap) order so output is deterministic.
struct Family<'a, T> {
    base: &'a str,
    series: Vec<(Vec<(&'a str, &'a str)>, T)>,
}

fn group<'a, T: Copy>(map: impl Iterator<Item = (&'a String, T)>) -> Vec<Family<'a, T>> {
    let mut families: Vec<Family<'a, T>> = Vec::new();
    for (name, value) in map {
        let (base, labels) = split_name(name);
        match families.iter_mut().find(|f| f.base == base) {
            Some(f) => f.series.push((labels, value)),
            None => families.push(Family {
                base,
                series: vec![(labels, value)],
            }),
        }
    }
    families
}

/// Renders `snap` in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in group(snap.counters.iter().map(|(k, &v)| (k, v))) {
        let name = sanitize(fam.base);
        out.push_str(&format!(
            "# HELP {name}_total eta2-obs counter \"{}\"\n",
            escape_help(fam.base)
        ));
        out.push_str(&format!("# TYPE {name}_total counter\n"));
        for (labels, v) in &fam.series {
            out.push_str(&format!("{name}_total{} {v}\n", fmt_labels(labels)));
        }
    }
    for fam in group(snap.gauges.iter().map(|(k, &v)| (k, v))) {
        let name = sanitize(fam.base);
        out.push_str(&format!(
            "# HELP {name} eta2-obs gauge \"{}\"\n",
            escape_help(fam.base)
        ));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for (labels, v) in &fam.series {
            out.push_str(&format!("{name}{} {}\n", fmt_labels(labels), fmt_value(*v)));
        }
    }
    for fam in group(snap.histograms.iter().map(|(k, v)| (k, v))) {
        let name = sanitize(fam.base);
        out.push_str(&format!(
            "# HELP {name} eta2-obs histogram \"{}\"\n",
            escape_help(fam.base)
        ));
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (labels, h) in &fam.series {
            let h: &HistogramSnapshot = h;
            for (q, v) in QUANTILES.iter().zip([h.p50, h.p95, h.p99, h.p999]) {
                let mut with_q: Vec<(&str, &str)> = labels.clone();
                with_q.push(("quantile", q));
                out.push_str(&format!("{name}{} {}\n", fmt_labels(&with_q), fmt_value(v)));
            }
            out.push_str(&format!(
                "{name}_sum{} {}\n",
                fmt_labels(labels),
                fmt_value(h.sum)
            ));
            out.push_str(&format!("{name}_count{} {}\n", fmt_labels(labels), h.count));
        }
    }
    out
}

/// Renders `snap` as a versioned JSON document:
/// `{"schema":"eta2.metrics/1","version":1,"metrics":{...}}` where
/// `metrics` is the frozen [`Snapshot::to_json`] shape.
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = JsonObject::new();
    out.str("schema", "eta2.metrics/1")
        .u64("version", 1)
        .raw("metrics", &snap.to_json());
    out.finish()
}

/// [`render_prometheus`] over the global registry's current state.
pub fn expose_prometheus() -> String {
    render_prometheus(&registry::global().snapshot())
}

/// [`render_json`] over the global registry's current state.
pub fn expose_json() -> String {
    render_json(&registry::global().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn split_name_parses_labels() {
        assert_eq!(split_name("plain"), ("plain", vec![]));
        assert_eq!(
            split_name("serve.flush_seconds|shard=3"),
            ("serve.flush_seconds", vec![("shard", "3")])
        );
        assert_eq!(
            split_name("x|a=1|b=two"),
            ("x", vec![("a", "1"), ("b", "two")])
        );
        // Malformed segment: kept, empty value.
        assert_eq!(split_name("x|oops"), ("x", vec![("oops", "")]));
    }

    #[test]
    fn counters_gauges_and_labels_render() {
        let r = Registry::new();
        r.counter_add("serve.epoch_published", 3);
        r.gauge_set("serve.queue_depth", 17.0);
        r.gauge_set("sim.cost|domain=4", 2.5);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE eta2_serve_epoch_published_total counter\n"));
        assert!(text.contains("eta2_serve_epoch_published_total 3\n"));
        assert!(text.contains("# TYPE eta2_serve_queue_depth gauge\n"));
        assert!(text.contains("eta2_serve_queue_depth 17\n"));
        assert!(text.contains("eta2_sim_cost{domain=\"4\"} 2.5\n"));
    }

    #[test]
    fn histogram_renders_as_summary_with_all_quantiles() {
        let r = Registry::new();
        for i in 0..100 {
            r.observe("serve.flush_seconds|shard=0", 0.001 * (i + 1) as f64);
        }
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE eta2_serve_flush_seconds summary\n"));
        for q in QUANTILES {
            assert!(
                text.contains(&format!(
                    "eta2_serve_flush_seconds{{shard=\"0\",quantile=\"{q}\"}}"
                )),
                "missing quantile {q}:\n{text}"
            );
        }
        assert!(text.contains("eta2_serve_flush_seconds_sum{shard=\"0\"}"));
        assert!(text.contains("eta2_serve_flush_seconds_count{shard=\"0\"} 100\n"));
    }

    #[test]
    fn one_type_line_per_family_across_shards() {
        let r = Registry::new();
        r.observe("f|shard=0", 1.0);
        r.observe("f|shard=1", 2.0);
        let text = render_prometheus(&r.snapshot());
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE eta2_f "))
            .count();
        assert_eq!(type_lines, 1, "{text}");
        assert!(text.contains("eta2_f_count{shard=\"0\"} 1\n"));
        assert!(text.contains("eta2_f_count{shard=\"1\"} 1\n"));
    }

    #[test]
    fn empty_histogram_quantiles_render_as_nan_literal() {
        let r = Registry::new();
        // A histogram that exists but has no samples: min/max/quantiles
        // are NaN, which the text format spells "NaN" (never "null").
        r.observe_with("empty.h", f64::NAN, crate::Histogram::duration_default);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("NaN"), "{text}");
        assert!(!text.contains("null"), "{text}");
    }

    #[test]
    fn json_exposition_is_versioned() {
        let r = Registry::new();
        r.counter_add("c", 1);
        let json = render_json(&r.snapshot());
        assert!(json.starts_with("{\"schema\":\"eta2.metrics/1\",\"version\":1,"));
        assert!(json.contains("\"metrics\":{"));
        assert!(json.contains("\"counters\":{\"c\":1}"));
    }
}
