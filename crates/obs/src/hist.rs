//! Fixed-bucket histograms.
//!
//! A histogram owns an ascending list of bucket *upper bounds* plus an
//! implicit overflow bucket; recording is O(log B), and quantiles are
//! estimated by linear interpolation inside the containing bucket, clamped
//! to the exact observed `[min, max]` range so single-value histograms
//! report exact quantiles.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram over `f64` samples.
///
/// Non-finite samples are ignored (JSON cannot represent them and they
/// would poison `sum`/`mean`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending, finite upper bounds.
    /// Samples above the last bound land in the implicit overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bounds `start, start·factor, …` (`n` bounds) — the usual
    /// shape for wall-time measurements.
    ///
    /// # Panics
    ///
    /// Panics unless `start > 0`, `factor > 1` and `n ≥ 1`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && start.is_finite(), "start must be > 0");
        assert!(factor > 1.0 && factor.is_finite(), "factor must be > 1");
        assert!(n >= 1, "need at least one bound");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Default wall-time buckets: 1 µs … ~67 s, doubling (27 bounds).
    pub fn duration_default() -> Self {
        Histogram::exponential(1e-6, 2.0, 27)
    }

    /// Records one sample (ignored when non-finite).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Index of the bucket `v` falls in (last = overflow).
    fn bucket_index(&self, v: f64) -> usize {
        // First bound ≥ v, i.e. bucket i covers (bounds[i-1], bounds[i]].
        self.bounds.partition_point(|&b| b < v)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest recorded sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`), linearly interpolated inside
    /// the containing bucket and clamped to the observed `[min, max]`.
    /// NaN when empty; `q ≤ 0` → min, `q ≥ 1` → max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Nearest-rank target in 1..=count.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                // Interpolate inside bucket i: (lo, hi].
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let frac = (target - cum) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max // unreachable while counts are consistent
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics when bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples, keeping the bucket layout.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

/// Lock-free twin of [`Histogram`] for concurrent recording.
///
/// Bucket counts and the sample count are plain relaxed `fetch_add`s;
/// `sum`/`min`/`max` are `f64` bit patterns updated through compare-and-swap
/// loops, so every recorded sample is applied exactly once (floating-point
/// addition order — and therefore the last few ulps of `sum` — depends on
/// thread interleaving). A reader racing with writers may observe the
/// fields mid-update (e.g. `count` ahead of `sum`); the registry avoids
/// this by snapshotting under a write lock that excludes recorders, and
/// standalone users should treat racy reads as advisory.
#[derive(Debug)]
pub struct AtomicHistogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit pattern.
    sum: AtomicU64,
    /// `f64` bit pattern.
    min: AtomicU64,
    /// `f64` bit pattern.
    max: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an empty atomic histogram with the given upper bounds.
    ///
    /// # Panics
    ///
    /// As [`Histogram::new`].
    pub fn new(bounds: Vec<f64>) -> Self {
        AtomicHistogram::from_histogram(Histogram::new(bounds))
    }

    /// Wraps an existing histogram (layout and samples) in atomic storage.
    pub fn from_histogram(h: Histogram) -> Self {
        AtomicHistogram {
            counts: h.counts.iter().map(|&c| AtomicU64::new(c)).collect(),
            count: AtomicU64::new(h.count),
            sum: AtomicU64::new(h.sum.to_bits()),
            min: AtomicU64::new(h.min.to_bits()),
            max: AtomicU64::new(h.max.to_bits()),
            bounds: h.bounds,
        }
    }

    /// Records one sample through `&self` (ignored when non-finite).
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then_some(v.to_bits())
            });
        let _ = self
            .max
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then_some(v.to_bits())
            });
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Materializes the current state as a plain [`Histogram`] (from which
    /// quantiles and JSON snapshots are derived).
    pub fn to_histogram(&self) -> Histogram {
        Histogram {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic PRNG so the property tests below stay
    /// dependency-free (xorshift64*).
    pub(crate) struct XorShift(u64);

    impl XorShift {
        pub fn new(seed: u64) -> Self {
            XorShift(seed.max(1))
        }
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn bucket_assignment_boundaries() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        // (−∞,1]: 0.5, 1.0 | (1,2]: 1.5, 2.0 | (2,4]: 3.0, 4.0 | (4,∞): 100
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn nonfinite_samples_ignored() {
        let mut h = Histogram::new(vec![1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_nan());
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn single_value_quantiles_exact() {
        let mut h = Histogram::duration_default();
        h.record(0.125);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0.125, "q = {q}");
        }
        assert_eq!(h.min(), 0.125);
        assert_eq!(h.max(), 0.125);
    }

    #[test]
    fn exponential_layout() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(h.counts().len(), 5);
    }

    #[test]
    fn merge_and_clear() {
        let mut a = Histogram::new(vec![1.0, 2.0]);
        let mut b = Histogram::new(vec![1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.min(), 0.5);
        assert_eq!(a.max(), 9.0);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.counts(), &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn merge_mismatched_bounds_rejected() {
        let mut a = Histogram::new(vec![1.0]);
        a.merge(&Histogram::new(vec![2.0]));
    }

    /// Property: on random data, quantiles are monotone in `q`, stay within
    /// `[min, max]`, and the bucket estimate brackets the true empirical
    /// quantile within one bucket's width.
    #[test]
    fn quantile_properties_random() {
        for seed in 1..40u64 {
            let mut rng = XorShift::new(seed);
            let n = 1 + (rng.next_u64() % 200) as usize;
            let mut h = Histogram::exponential(1e-3, 2.0, 20);
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                // Log-uniform across the bucket range, plus occasional
                // under/overflow samples.
                let v = 1e-4 * (10f64).powf(rng.next_f64() * 8.0);
                h.record(v);
                values.push(v);
            }
            values.sort_by(f64::total_cmp);
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let mut prev = f64::NEG_INFINITY;
            for &q in &qs {
                let est = h.quantile(q);
                assert!(est.is_finite(), "seed {seed} q {q}");
                assert!(est >= prev - 1e-12, "non-monotone at seed {seed} q {q}");
                assert!(
                    est >= values[0] && est <= values[n - 1],
                    "out of range at seed {seed} q {q}: {est}"
                );
                prev = est;
                // Bracketing: the true nearest-rank quantile must lie in the
                // same bucket as the estimate (or an adjacent one at bucket
                // edges), i.e. within factor-2 (one bucket) of the estimate
                // once both are inside the bucketed range.
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
                let truth = values[rank];
                let last = *h.bounds().last().unwrap();
                if q > 0.0
                    && q < 1.0
                    && truth >= 1e-3
                    && est >= 1e-3
                    && truth <= last
                    && est <= last
                {
                    let ratio = (est / truth).max(truth / est);
                    assert!(
                        ratio <= 2.0 + 1e-9,
                        "seed {seed} q {q}: est {est} vs true {truth}"
                    );
                }
            }
        }
    }

    /// Property: count/sum/min/max match the recorded data exactly.
    #[test]
    fn moments_match_data_random() {
        for seed in 1..20u64 {
            let mut rng = XorShift::new(seed * 77);
            let n = (rng.next_u64() % 100) as usize;
            let mut h = Histogram::new(vec![0.25, 0.5, 0.75]);
            let mut sum = 0.0;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for _ in 0..n {
                let v = rng.next_f64();
                h.record(v);
                sum += v;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            assert_eq!(h.count(), n as u64);
            if n > 0 {
                assert!((h.sum() - sum).abs() < 1e-9);
                assert_eq!(h.min(), lo);
                assert_eq!(h.max(), hi);
                assert_eq!(
                    h.counts().iter().sum::<u64>(),
                    n as u64,
                    "bucket counts must total the sample count"
                );
            }
        }
    }

    #[test]
    fn atomic_histogram_matches_sequential_twin() {
        let mut rng = XorShift::new(42);
        let mut h = Histogram::exponential(1e-3, 2.0, 12);
        let a = AtomicHistogram::from_histogram(Histogram::exponential(1e-3, 2.0, 12));
        for _ in 0..500 {
            let v = rng.next_f64() * 10.0;
            h.record(v);
            a.record(v);
        }
        // Also exercise the non-finite guard.
        a.record(f64::NAN);
        let m = a.to_histogram();
        assert_eq!(m.counts(), h.counts());
        assert_eq!(m.count(), h.count());
        assert!((m.sum() - h.sum()).abs() < 1e-9);
        assert_eq!(m.min(), h.min());
        assert_eq!(m.max(), h.max());
        assert_eq!(m.quantile(0.95), h.quantile(0.95));
    }

    /// Property: concurrent records are never lost and `sum` reflects every
    /// sample (addition order varies; totals do not).
    #[test]
    fn atomic_histogram_concurrent_records() {
        let a = std::sync::Arc::new(AtomicHistogram::new(vec![0.5, 1.0, 2.0]));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let a = std::sync::Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        a.record(0.25 + (t as f64 + i as f64 % 7.0) * 0.1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let h = a.to_histogram();
        assert_eq!(h.count(), 4000);
        assert_eq!(h.counts().iter().sum::<u64>(), 4000);
        assert!(h.sum() > 0.0 && h.sum().is_finite());
        assert!(h.min() >= 0.25 && h.max() <= 0.25 + 3.6 + 1e-9);
    }
}
