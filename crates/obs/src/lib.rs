//! # eta2-obs — observability substrate for the ETA² reproduction
//!
//! Three independent facilities, each with a no-op fast path when off:
//!
//! * **Metrics** ([`registry`]): counters, gauges and fixed-bucket
//!   histograms behind a thread-safe registry with atomic snapshot/reset.
//!   Gated by [`set_metrics`]; off by default.
//! * **Spans** ([`Span`], [`span!`]): RAII wall-time timers that record
//!   into the global registry's histogram of the same name. Follow the
//!   metrics gate.
//! * **Events** ([`Event`], [`emit`]): typed trace records serialized as
//!   JSON Lines to a pluggable [`EventWriter`] (file, stderr, or in-memory
//!   for tests). Enabled exactly while a writer is installed.
//!
//! The gates are relaxed atomic loads, so instrumentation left in hot
//! loops costs roughly one predictable branch when everything is off —
//! and a disabled run is observably identical to an uninstrumented one.
//!
//! ```no_run
//! let _guard = eta2_obs::span!("mle.solve");
//! eta2_obs::emit_with(|| eta2_obs::Event::DomainCreated { domain: 7 });
//! ```

pub mod event;
pub mod expose;
pub mod flight;
pub mod hist;
pub mod json;
pub mod registry;
pub mod sink;
pub mod trace;

mod log;
mod span;

pub use event::Event;
pub use expose::{expose_json, expose_prometheus};
pub use hist::Histogram;
pub use log::{log_enabled, set_verbosity, verbosity, Verbosity};
pub use registry::{HistogramSnapshot, Registry, Snapshot};
pub use sink::{EventWriter, FileSink, MemoryHandle, MemorySink, StderrSink};
pub use span::Span;
pub use trace::TraceContext;

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// True while an event writer is installed. Read with a relaxed load on
/// every emission site; written only by install/disable.
static TRACING: AtomicBool = AtomicBool::new(false);

/// True while span timers and registry recording are wanted.
static METRICS: AtomicBool = AtomicBool::new(false);

static WRITER: Mutex<Option<Box<dyn EventWriter>>> = Mutex::new(None);

/// Serializes tests (which run in parallel within one binary) that flip
/// the process-global TRACING/METRICS flags.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: Mutex<()> = Mutex::new(());

/// Whether event tracing is currently enabled (a sink is installed).
#[inline]
pub fn enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Whether events are being consumed by *anything* — an installed sink or
/// the flight recorder. Instrumentation sites that build events eagerly
/// (e.g. the serving engine's trace spans) should gate on this, so a run
/// with only `ETA2_FLIGHT_DIR` set still fills the post-mortem ring.
#[inline]
pub fn tracing_active() -> bool {
    enabled() || flight::enabled()
}

/// Whether span timers and metric recording are currently enabled.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Turns span/metric recording on or off.
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

fn writer_lock() -> std::sync::MutexGuard<'static, Option<Box<dyn EventWriter>>> {
    WRITER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `writer` as the event sink and enables tracing (and metrics,
/// since a trace without timings is rarely what anyone wants). Replaces
/// any previously installed sink, flushing it first.
pub fn install_writer(writer: Box<dyn EventWriter>) {
    let mut slot = writer_lock();
    if let Some(old) = slot.as_mut() {
        old.flush();
    }
    *slot = Some(writer);
    TRACING.store(true, Ordering::Relaxed);
    METRICS.store(true, Ordering::Relaxed);
}

/// Starts tracing to a fresh JSONL file at `path`.
pub fn init_file(path: &Path) -> std::io::Result<()> {
    let sink = FileSink::create(path)?;
    install_writer(Box::new(sink));
    Ok(())
}

/// Starts tracing to standard error.
pub fn init_stderr() {
    install_writer(Box::new(StderrSink));
}

/// Starts tracing into memory and returns the read handle. For tests.
pub fn install_memory() -> MemoryHandle {
    let (sink, handle) = MemorySink::new();
    install_writer(Box::new(sink));
    handle
}

/// Stops tracing, flushing and dropping the installed sink. Metric
/// recording is left as-is ([`set_metrics`] controls it independently).
pub fn disable() {
    TRACING.store(false, Ordering::Relaxed);
    let mut slot = writer_lock();
    if let Some(old) = slot.as_mut() {
        old.flush();
    }
    *slot = None;
}

/// Flushes the installed sink, if any.
pub fn flush() {
    if let Some(w) = writer_lock().as_mut() {
        w.flush();
    }
}

/// Emits `event` to the installed sink and, when capture is on, into the
/// flight recorder's ring. No-op when neither consumer is active; prefer
/// [`emit_with`] in hot loops so the event is not even built.
pub fn emit(event: &Event) {
    let sink = enabled();
    let flight = flight::enabled();
    if !sink && !flight {
        return;
    }
    let line = event.to_json_line();
    if flight {
        flight::record_line(&line);
    }
    if sink {
        if let Some(w) = writer_lock().as_mut() {
            w.write_line(&line);
        }
    }
}

/// Builds and emits an event only when something will consume it. The
/// closure is never called on the disabled path, so argument computation
/// (string formatting, summary math) is free when tracing is off.
#[inline]
pub fn emit_with(make: impl FnOnce() -> Event) {
    if tracing_active() {
        emit(&make());
    }
}

/// Adds `delta` to the named counter in the global registry. No-op while
/// metric recording is off, so call sites in hot loops cost one branch.
/// When recording is on, the bump is a shared-lock atomic increment —
/// concurrent workers (parallel MLE shards, sweep threads) never serialize
/// against each other.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if metrics_enabled() {
        registry::global().counter_add(name, delta);
    }
}

/// Sets the named gauge in the global registry. No-op while metric
/// recording is off.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if metrics_enabled() {
        registry::global().gauge_set(name, value);
    }
}

/// Records `value` into the named global histogram (default wall-time
/// buckets). No-op while metric recording is off.
#[inline]
pub fn observe(name: &str, value: f64) {
    if metrics_enabled() {
        registry::global().observe(name, value);
    }
}

/// Reads an environment boolean: `false` for unset, empty, `0`, `false`,
/// `off` or `no` (case-insensitive); `true` for anything else.
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Err(_) => false,
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off" || v == "no")
        }
    }
}

/// Reads an environment variable as a non-empty path, if set.
pub fn env_path(name: &str) -> Option<std::path::PathBuf> {
    match std::env::var(name) {
        Ok(v) if !v.trim().is_empty() => Some(std::path::PathBuf::from(v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the global sink/flags with the rest of this test
    // binary; each restores the disabled state before returning.

    #[test]
    fn emit_routes_through_installed_memory_sink() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let handle = install_memory();
        assert!(enabled());
        assert!(metrics_enabled());
        emit(&Event::DomainCreated { domain: 42 });
        emit_with(|| Event::DomainMerged {
            kept: 1,
            absorbed: 2,
        });
        let lines = handle.lines();
        assert!(
            lines.iter().any(|l| l.contains("\"domain\":42")),
            "{lines:?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains("\"type\":\"domain_merged\"")),
            "{lines:?}"
        );

        disable();
        set_metrics(false);
        assert!(!enabled());
        let before = handle.len();
        emit(&Event::DomainCreated { domain: 7 });
        let mut with_called = false;
        emit_with(|| {
            with_called = true;
            Event::DomainCreated { domain: 8 }
        });
        assert_eq!(handle.len(), before, "disabled emit must not write");
        assert!(!with_called, "emit_with closure must not run when disabled");
    }

    #[test]
    fn env_flag_semantics() {
        // Unique variable names: the process environment is shared.
        std::env::remove_var("ETA2_OBS_TEST_UNSET");
        assert!(!env_flag("ETA2_OBS_TEST_UNSET"));
        for off in ["", "0", "false", "FALSE", "off", "No", "  0  "] {
            std::env::set_var("ETA2_OBS_TEST_FLAG", off);
            assert!(!env_flag("ETA2_OBS_TEST_FLAG"), "value {off:?}");
        }
        for on in ["1", "true", "yes", "anything"] {
            std::env::set_var("ETA2_OBS_TEST_FLAG", on);
            assert!(env_flag("ETA2_OBS_TEST_FLAG"), "value {on:?}");
        }
        std::env::remove_var("ETA2_OBS_TEST_FLAG");
    }

    #[test]
    fn env_path_semantics() {
        std::env::remove_var("ETA2_OBS_TEST_PATH");
        assert_eq!(env_path("ETA2_OBS_TEST_PATH"), None);
        std::env::set_var("ETA2_OBS_TEST_PATH", "  ");
        assert_eq!(env_path("ETA2_OBS_TEST_PATH"), None);
        std::env::set_var("ETA2_OBS_TEST_PATH", "/tmp/trace.jsonl");
        assert_eq!(
            env_path("ETA2_OBS_TEST_PATH"),
            Some(std::path::PathBuf::from("/tmp/trace.jsonl"))
        );
        std::env::remove_var("ETA2_OBS_TEST_PATH");
    }
}
