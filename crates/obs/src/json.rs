//! A minimal JSON writer — just enough to serialize flat event objects and
//! metric snapshots as single JSON Lines without pulling `serde_json` into
//! every crate of the workspace.
//!
//! Only *emission* is implemented (consumers parse with `serde_json`, which
//! the harness crates already depend on). Numbers use Rust's shortest
//! round-trip `Display`, which is valid JSON; non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// Appends `v` to `buf` in decimal. Hand-rolled digit loop: trace ids are
/// full-range u64 (20 digits) and every event line carries several, so
/// skipping the `fmt` machinery is worth it on the emit hot path.
pub fn write_u64(buf: &mut String, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // The slice is pure ASCII digits by construction.
    buf.push_str(std::str::from_utf8(&tmp[i..]).unwrap());
}

/// Appends `s` to `buf` as a JSON string literal (with surrounding quotes).
pub fn write_str(buf: &mut String, s: &str) {
    // Event serialization sits on the ingest hot path; almost every key
    // and value needs no escaping, so check once and memcpy when clean.
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        buf.push('"');
        buf.push_str(s);
        buf.push('"');
        return;
    }
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Appends `v` to `buf` as a JSON number, or `null` when non-finite.
pub fn write_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // Writing through `fmt::Write` skips the per-field String that
        // `format!` would allocate — measurable at trace-event rates.
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object (`{`).
    pub fn new() -> Self {
        // One JSONL event line is ~100-200 bytes; reserving up front keeps
        // the hot emit path to a single allocation.
        let mut buf = String::with_capacity(192);
        buf.push('{');
        JsonObject { buf, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        write_u64(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value verbatim.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Serializes a slice of floats as a JSON array (non-finite → `null`).
pub fn array_f64(values: &[f64]) -> String {
    let mut buf = String::from("[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        write_f64(&mut buf, v);
    }
    buf.push(']');
    buf
}

/// Serializes a slice of unsigned integers as a JSON array.
pub fn array_u64(values: &[u64]) -> String {
    let mut buf = String::from("[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        write_u64(&mut buf, v);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_every_field_kind() {
        let mut o = JsonObject::new();
        o.str("s", "a\"b\\c\nd")
            .f64("x", 1.5)
            .f64("nan", f64::NAN)
            .u64("n", 7)
            .bool("b", true)
            .raw("arr", "[1,2]");
        assert_eq!(
            o.finish(),
            r#"{"s":"a\"b\\c\nd","x":1.5,"nan":null,"n":7,"b":true,"arr":[1,2]}"#
        );
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn control_chars_escaped() {
        let mut buf = String::new();
        write_str(&mut buf, "\u{1}x");
        assert_eq!(buf, "\"\\u0001x\"");
    }

    #[test]
    fn u64_digit_writer_edges() {
        for v in [0u64, 1, 9, 10, 12_345, u64::MAX] {
            let mut buf = String::new();
            write_u64(&mut buf, v);
            assert_eq!(buf, v.to_string());
        }
    }

    #[test]
    fn arrays_and_nonfinite() {
        assert_eq!(array_f64(&[1.0, f64::INFINITY, 0.25]), "[1,null,0.25]");
        assert_eq!(array_u64(&[3, 0]), "[3,0]");
        assert_eq!(array_f64(&[]), "[]");
    }
}
