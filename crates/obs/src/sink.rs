//! Pluggable event writers: file, stderr, and an in-memory sink for tests.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for serialized JSON event lines.
///
/// Implementations receive one complete JSON object per call, without a
/// trailing newline, and must be callable from any thread.
pub trait EventWriter: Send {
    /// Persists one event line.
    fn write_line(&mut self, line: &str);
    /// Flushes any buffered output (default: nothing to do).
    fn flush(&mut self) {}
}

/// Appends events to a file through a bounded write-behind buffer.
///
/// Lines land on disk when the buffer fills ([`FileSink::FLUSH_EVERY`]
/// lines at most), on [`EventWriter::flush`] (the CLI flushes at exit,
/// `install_writer` flushes the sink it replaces), and on drop. This used
/// to flush per line so a crash could not eat the trace tail; now that
/// the flight recorder ring owns the post-mortem path (dumped by the
/// panic hook and on invariant breaches), per-line write syscalls were
/// pure ingest-throughput overhead — the [`crate::flight`] dump is both
/// more complete and cheaper.
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
    since_flush: u32,
}

impl FileSink {
    /// Lines buffered between forced flushes: bounds trace-tail loss on
    /// an abrupt exit (e.g. SIGKILL, where no Drop or panic hook runs).
    const FLUSH_EVERY: u32 = 256;

    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<FileSink> {
        Ok(FileSink {
            out: BufWriter::new(File::create(path)?),
            since_flush: 0,
        })
    }
}

impl EventWriter for FileSink {
    fn write_line(&mut self, line: &str) {
        // Tracing is best-effort: losing a line (e.g. disk full) must not
        // take the run down with it.
        let _ = writeln!(self.out, "{line}");
        self.since_flush += 1;
        if self.since_flush >= Self::FLUSH_EVERY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
        self.since_flush = 0;
    }
}

/// Writes events to standard error, one per line.
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventWriter for StderrSink {
    fn write_line(&mut self, line: &str) {
        eprintln!("{line}");
    }
}

/// Collects events in memory. `MemorySink` is the writer half; cloning the
/// [`MemoryHandle`] returned alongside it lets a test read what was written
/// while the sink itself is owned by the global dispatcher.
#[derive(Debug)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

/// Read handle onto a [`MemorySink`]'s captured lines.
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// Creates an empty sink plus a handle for reading it back.
    pub fn new() -> (MemorySink, MemoryHandle) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                lines: Arc::clone(&lines),
            },
            MemoryHandle { lines },
        )
    }
}

impl EventWriter for MemorySink {
    fn write_line(&mut self, line: &str) {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line.to_string());
    }
}

impl MemoryHandle {
    /// Copies out every line captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of lines captured so far.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards everything captured so far.
    pub fn clear(&self) {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_round_trip() {
        let (mut sink, handle) = MemorySink::new();
        assert!(handle.is_empty());
        sink.write_line("{\"a\":1}");
        sink.write_line("{\"b\":2}");
        assert_eq!(handle.lines(), vec!["{\"a\":1}", "{\"b\":2}"]);
        handle.clear();
        assert!(handle.is_empty());
        sink.write_line("{\"c\":3}");
        assert_eq!(handle.len(), 1);
    }

    #[test]
    fn file_sink_persists_lines() {
        let path = std::env::temp_dir().join("eta2_obs_sink_test.jsonl");
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.write_line("{\"x\":1}");
            sink.write_line("{\"y\":2}");
            // Writes are buffered; dropping the sink flushes the tail.
        }
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"x\":1}\n{\"y\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
