//! Special functions: `erf`, `erfc`, `ln_gamma` and the regularized
//! incomplete gamma function.
//!
//! These are the numerical primitives behind the [`crate::normal`] and
//! [`crate::chi_square`] distributions. `ln_gamma` uses the Lanczos
//! approximation; the incomplete gamma uses the classical series /
//! continued-fraction split; and `erf`/`erfc` are obtained through the exact
//! identities `erf(x) = P(½, x²)` and `erfc(x) = Q(½, x²)` (for `x ≥ 0`),
//! which keeps every distribution in this crate on one well-tested numerical
//! core. Absolute error is ≲ 1e-13 everywhere the ETA² experiments look.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// `erf(-x) = -erf(x)` holds exactly by construction.
///
/// # Examples
///
/// ```
/// use eta2_stats::special::erf;
///
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = reg_lower_gamma(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For `x ≥ 0` this is computed directly as the regularized *upper*
/// incomplete gamma `Q(½, x²)`, so the far tail keeps full relative accuracy
/// (no `1 − erf` cancellation); it underflows gracefully to `0` for large
/// arguments.
///
/// # Examples
///
/// ```
/// use eta2_stats::special::erfc;
///
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// // The far tail stays accurate in relative terms.
/// let tail = erfc(5.0);
/// assert!((tail - 1.5374597944280349e-12).abs() < 1e-24);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_upper_gamma(0.5, x * x)
    } else {
        1.0 + reg_lower_gamma(0.5, x * x)
    }
}

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, giving
/// ~15 significant digits.
///
/// # Panics
///
/// Panics if `x <= 0` (the ETA² code base only ever needs positive
/// arguments — χ² degrees of freedom and half-integers).
///
/// # Examples
///
/// ```
/// use eta2_stats::special::ln_gamma;
///
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x >= 0`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise —
/// the standard split, accurate to ~1e-13.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use eta2_stats::special::reg_lower_gamma;
///
/// // P(1, x) = 1 - e^{-x}
/// let x = 2.0_f64;
/// assert!((reg_lower_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
/// ```
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_gamma_series(a, x)
    } else {
        1.0 - upper_gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly (continued fraction) in the regime where `P ≈ 1`, so it
/// does not lose precision to cancellation — this is what χ² p-values and
/// `erfc` tails use.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_gamma_series(a, x)
    } else {
        upper_gamma_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, converges fast for `x < a + 1`.
fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)`, converges for `x >= a + 1`.
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (1.5, 0.9661051464753107),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-12, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-12, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -40..=40 {
            let x = i as f64 * 0.17;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn erfc_large_argument_tail() {
        // erfc(5) ≈ 1.5374597944280349e-12 (mpmath)
        assert!((erfc(5.0) - 1.5374597944280349e-12).abs() < 1e-24);
        // erfc(10) ≈ 2.088487583762545e-45
        let r = erfc(10.0);
        assert!((r - 2.088487583762545e-45).abs() < 1e-57, "erfc(10) = {r}");
        assert!((erfc(-10.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = -1.0;
        for i in -60..=60 {
            let v = erf(i as f64 * 0.1);
            assert!(v >= prev, "erf not monotone at {i}");
            prev = v;
        }
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.0, 0.1, 1.0, 2.5, 10.0] {
            let want = 1.0 - (-x as f64).exp();
            assert!((reg_lower_gamma(1.0, x) - want).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.5, 1.0, 2.5, 7.0, 30.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 50.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((p + q - 1.0).abs() < 1e-12, "a = {a}, x = {x}");
                assert!((0.0..=1.0).contains(&p), "a = {a}, x = {x}, p = {p}");
            }
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let a = 2.5;
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = reg_lower_gamma(a, x);
            assert!(p >= prev - 1e-15, "x = {x}");
            prev = p;
        }
    }

    #[test]
    fn incomplete_gamma_known_value() {
        // P(3, 3) from mpmath: 0.5768099188731565
        assert!((reg_lower_gamma(3.0, 3.0) - 0.5768099188731565).abs() < 1e-12);
    }
}
