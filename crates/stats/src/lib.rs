//! Statistics substrate for the ETA² reproduction.
//!
//! The ETA² system (Zhang et al., ICDCS 2017) leans on a handful of numerical
//! building blocks that this crate provides from scratch:
//!
//! * [`special`] — error function, log-gamma and the regularized incomplete
//!   gamma function, the primitives behind every distribution here.
//! * [`normal`] — the normal distribution: pdf, CDF `Φ`, quantile
//!   (`Z_{α/2}` in the paper's Eq. 24) and sampling.
//! * [`chi_square`] — the χ² distribution and the goodness-of-fit test used
//!   by the paper's Table 1 to validate the normality assumption.
//! * [`ks`] — a one-sample Kolmogorov–Smirnov normality test, the
//!   binning-free second opinion on Table 1.
//! * [`descriptive`] — means, variances, quantiles and histograms used
//!   throughout the evaluation harness (Figs. 2, 7, 12).
//! * [`ci`] — normal-theory confidence intervals (paper §5.2.2).
//!
//! # Examples
//!
//! ```
//! use eta2_stats::normal::Normal;
//!
//! let n = Normal::standard();
//! // Φ(0) = 1/2 — the probability mass below the mean.
//! assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi_square;
pub mod ci;
pub mod descriptive;
pub mod error;
pub mod ks;
pub mod normal;
pub mod special;

pub use chi_square::{ChiSquared, GofOutcome, NormalityGofTest};
pub use ci::ConfidenceInterval;
pub use descriptive::{Histogram, Summary};
pub use error::StatsError;
pub use ks::{ks_normality_test, KsOutcome};
pub use normal::Normal;
