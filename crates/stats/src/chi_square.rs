//! The χ² distribution and the goodness-of-fit normality test of the paper's
//! §2.3 / Table 1.
//!
//! The paper validates its observation model by running a χ² goodness-of-fit
//! test per task: the null hypothesis is that the task's observations come
//! from a normal distribution, and Table 1 reports the fraction of tasks for
//! which the null is *not* rejected at several significance levels.
//! [`NormalityGofTest`] reproduces that procedure: equiprobable binning under
//! the fitted normal, Cochran-style bin-count rules, and `k − 3` degrees of
//! freedom (two parameters estimated from the data).

use crate::error::StatsError;
use crate::normal::Normal;
use crate::special::{reg_lower_gamma, reg_upper_gamma};

/// A χ² distribution with `k > 0` degrees of freedom.
///
/// # Examples
///
/// ```
/// use eta2_stats::ChiSquared;
///
/// let chi = ChiSquared::new(2.0)?;
/// // With 2 dof, CDF(x) = 1 - exp(-x/2).
/// assert!((chi.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// # Ok::<(), eta2_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    dof: f64,
}

impl ChiSquared {
    /// Creates a χ² distribution with `dof` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `dof` is finite and
    /// strictly positive.
    pub fn new(dof: f64) -> Result<Self, StatsError> {
        if !dof.is_finite() || dof <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "dof",
                value: dof,
                requirement: "must be finite and > 0",
            });
        }
        Ok(ChiSquared { dof })
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.dof
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.dof / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)` — the p-value of a χ² statistic.
    ///
    /// Computed with the upper incomplete gamma directly so tiny p-values
    /// keep relative accuracy.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        reg_upper_gamma(self.dof / 2.0, x / 2.0)
    }
}

/// Outcome of one goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofOutcome {
    /// The χ² statistic `Σ (O_i − E_i)² / E_i`.
    pub statistic: f64,
    /// Degrees of freedom used (`bins − 1 − fitted parameters`).
    pub dof: usize,
    /// The p-value `P(χ²_dof > statistic)`.
    pub p_value: f64,
    /// Number of equiprobable bins used.
    pub bins: usize,
}

impl GofOutcome {
    /// Whether the null hypothesis (data is normal) is *not* rejected at
    /// significance level `alpha` — the quantity Table 1 aggregates.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// χ² goodness-of-fit test against a normal distribution with parameters
/// estimated from the sample, as used for the paper's Table 1.
///
/// Bins are equiprobable under the fitted normal, so every expected count is
/// `n / k`; the number of bins follows the common `k = max(4, ⌈2·n^{2/5}⌉)`
/// rule, clamped so each expected count stays ≥ 3. Two parameters are
/// estimated (mean, std), so the statistic is referred to `k − 3` degrees of
/// freedom.
///
/// # Examples
///
/// ```
/// use eta2_stats::{Normal, NormalityGofTest};
/// use rand::SeedableRng;
///
/// let normal = Normal::new(3.0, 2.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let sample: Vec<f64> = (0..500).map(|_| normal.sample(&mut rng)).collect();
/// let outcome = NormalityGofTest::default().test(&sample)?;
/// assert!(outcome.passes(0.05));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalityGofTest {
    /// Fixed bin count; `None` selects automatically from the sample size.
    pub bins: Option<usize>,
    /// How many distribution parameters were estimated from the sample:
    /// subtracted from the degrees of freedom (`dof = bins − 1 − fitted`).
    ///
    /// The statistically correct value when mean and std are fitted is `2`
    /// (the default). `0` gives the *naive* test that ignores estimation —
    /// the variant whose inflated p-values match the paper's Table 1
    /// (≈88 % non-rejection even at α = 0.5, impossible under a correctly
    /// calibrated test).
    pub fitted_params: usize,
}

impl Default for NormalityGofTest {
    fn default() -> Self {
        NormalityGofTest {
            bins: None,
            fitted_params: 2,
        }
    }
}

impl NormalityGofTest {
    /// Creates a test with an explicit number of equiprobable bins.
    ///
    /// # Errors
    ///
    /// [`NormalityGofTest::test`] will fail with
    /// [`StatsError::InvalidParameter`] if `bins < 4` (fewer leaves no
    /// degrees of freedom after estimating two parameters).
    pub fn with_bins(bins: usize) -> Self {
        NormalityGofTest {
            bins: Some(bins),
            ..NormalityGofTest::default()
        }
    }

    /// The naive variant with unadjusted degrees of freedom
    /// (`dof = bins − 1`); see [`NormalityGofTest::fitted_params`].
    pub fn naive() -> Self {
        NormalityGofTest {
            bins: None,
            fitted_params: 0,
        }
    }

    /// Runs the test on `sample`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::InsufficientData`] if fewer than 8 observations.
    /// * [`StatsError::NonFiniteInput`] if the sample contains NaN/∞.
    /// * [`StatsError::InvalidParameter`] if the sample is constant (zero
    ///   variance) or an explicit bin count is below 4.
    pub fn test(&self, sample: &[f64]) -> Result<GofOutcome, StatsError> {
        let n = sample.len();
        if n < 8 {
            return Err(StatsError::InsufficientData {
                got: n,
                required: 8,
            });
        }
        if sample.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = sample.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        if var <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sample variance",
                value: var,
                requirement: "must be > 0 (sample must not be constant)",
            });
        }
        let fitted = Normal::new(mean, var.sqrt())?;

        let k = match self.bins {
            Some(k) if k < 4 => {
                return Err(StatsError::InvalidParameter {
                    name: "bins",
                    value: k as f64,
                    requirement: "must be >= 4",
                })
            }
            Some(k) => k,
            None => {
                // 2·n^{2/5} rule, clamped so expected count n/k >= 3.
                let suggested = (2.0 * (n as f64).powf(0.4)).ceil() as usize;
                suggested.clamp(4, (n / 3).max(4))
            }
        };

        // Equiprobable bin edges under the fitted normal.
        let mut edges = Vec::with_capacity(k - 1);
        for i in 1..k {
            let p = i as f64 / k as f64;
            edges.push(fitted.quantile(p)?);
        }

        let mut observed = vec![0usize; k];
        for &x in sample {
            // partition_point returns the first edge >= x's bin boundary.
            let bin = edges.partition_point(|&e| e < x);
            observed[bin] += 1;
        }

        let expected = n as f64 / k as f64;
        let statistic: f64 = observed
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();

        let dof = k.saturating_sub(1 + self.fitted_params).max(1);
        let p_value = ChiSquared::new(dof as f64)?.sf(statistic);
        Ok(GofOutcome {
            statistic,
            dof,
            p_value,
            bins: k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn chi_squared_rejects_bad_dof() {
        assert!(ChiSquared::new(0.0).is_err());
        assert!(ChiSquared::new(-1.0).is_err());
        assert!(ChiSquared::new(f64::NAN).is_err());
    }

    #[test]
    fn chi_squared_cdf_two_dof_is_exponential() {
        let chi = ChiSquared::new(2.0).unwrap();
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            let want = 1.0 - (-x / 2.0_f64).exp();
            assert!((chi.cdf(x) - want).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn chi_squared_critical_values() {
        // Classical table: P(χ²_1 > 3.841) ≈ 0.05, P(χ²_5 > 11.070) ≈ 0.05.
        assert!((ChiSquared::new(1.0).unwrap().sf(3.841458820694124) - 0.05).abs() < 1e-9);
        assert!((ChiSquared::new(5.0).unwrap().sf(11.070497693516351) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn chi_squared_sf_complements_cdf() {
        let chi = ChiSquared::new(7.0).unwrap();
        for &x in &[0.0, 0.5, 3.0, 12.0, 40.0] {
            assert!((chi.cdf(x) + chi.sf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gof_accepts_normal_data() {
        let normal = Normal::new(-2.0, 0.7).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut accepted = 0;
        let trials = 50;
        for _ in 0..trials {
            let sample: Vec<f64> = (0..300).map(|_| normal.sample(&mut rng)).collect();
            if NormalityGofTest::default()
                .test(&sample)
                .unwrap()
                .passes(0.05)
            {
                accepted += 1;
            }
        }
        // Expected acceptance ~95%; allow wide slack for a 50-trial run.
        assert!(accepted >= 42, "accepted only {accepted}/{trials}");
    }

    #[test]
    fn gof_rejects_uniform_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut rejected = 0;
        let trials = 30;
        for _ in 0..trials {
            let sample: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
            if !NormalityGofTest::default()
                .test(&sample)
                .unwrap()
                .passes(0.05)
            {
                rejected += 1;
            }
        }
        // A uniform sample of 1000 should essentially always be rejected.
        assert!(rejected >= 27, "rejected only {rejected}/{trials}");
    }

    #[test]
    fn gof_rejects_bimodal_data() {
        let a = Normal::new(-4.0, 0.5).unwrap();
        let b = Normal::new(4.0, 0.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let sample: Vec<f64> = (0..600)
            .map(|i| {
                if i % 2 == 0 {
                    a.sample(&mut rng)
                } else {
                    b.sample(&mut rng)
                }
            })
            .collect();
        let outcome = NormalityGofTest::default().test(&sample).unwrap();
        assert!(!outcome.passes(0.05), "p = {}", outcome.p_value);
    }

    #[test]
    fn gof_input_validation() {
        let t = NormalityGofTest::default();
        assert!(matches!(
            t.test(&[1.0; 4]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            t.test(&[1.0; 20]),
            Err(StatsError::InvalidParameter { .. })
        ));
        let mut with_nan = vec![0.5; 20];
        with_nan[3] = f64::NAN;
        assert!(matches!(t.test(&with_nan), Err(StatsError::NonFiniteInput)));
        assert!(matches!(
            NormalityGofTest::with_bins(2)
                .test(&[0.0, 1.0, 2.0, 0.5, 1.5, 0.2, 1.8, 0.9, 2.2, 1.1]),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn gof_explicit_bins_respected() {
        let normal = Normal::standard();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sample: Vec<f64> = (0..200).map(|_| normal.sample(&mut rng)).collect();
        let outcome = NormalityGofTest::with_bins(8).test(&sample).unwrap();
        assert_eq!(outcome.bins, 8);
        assert_eq!(outcome.dof, 5);
    }

    proptest! {
        #[test]
        fn p_value_always_a_probability(seed in 0u64..5000, n in 8usize..200) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sample: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            if let Ok(outcome) = NormalityGofTest::default().test(&sample) {
                prop_assert!((0.0..=1.0).contains(&outcome.p_value));
                prop_assert!(outcome.statistic >= 0.0);
            }
        }
    }
}
