//! Error type for statistical computations.

use std::fmt;

/// Error returned by fallible statistical computations.
///
/// The `Display` representation is lowercase without trailing punctuation,
/// per the Rust API guidelines (C-GOOD-ERR).
///
/// # Examples
///
/// ```
/// use eta2_stats::normal::Normal;
/// use eta2_stats::StatsError;
///
/// let err = Normal::new(0.0, -1.0).unwrap_err();
/// assert!(matches!(err, StatsError::InvalidParameter { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution or test parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable requirement, e.g. `"must be finite and > 0"`.
        requirement: &'static str,
    },
    /// The input sample was too small for the requested computation.
    InsufficientData {
        /// How many data points were provided.
        got: usize,
        /// How many are required.
        required: usize,
    },
    /// A probability argument was outside `(0, 1)` where an open interval is
    /// required (e.g. quantile functions).
    ProbabilityOutOfRange(f64),
    /// The input contained a non-finite value (NaN or ±∞).
    NonFiniteInput,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter `{name}` = {value}: {requirement}"),
            StatsError::InsufficientData { got, required } => {
                write!(
                    f,
                    "insufficient data: got {got} observations, need {required}"
                )
            }
            StatsError::ProbabilityOutOfRange(p) => {
                write!(f, "probability {p} outside the open interval (0, 1)")
            }
            StatsError::NonFiniteInput => write!(f, "input contains a non-finite value"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        let cases = [
            StatsError::InvalidParameter {
                name: "sigma",
                value: -1.0,
                requirement: "must be finite and > 0",
            },
            StatsError::InsufficientData {
                got: 1,
                required: 2,
            },
            StatsError::ProbabilityOutOfRange(1.5),
            StatsError::NonFiniteInput,
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
