//! Normal-theory confidence intervals (paper §5.2.2, Eq. 24).
//!
//! The min-cost allocator's quality gate asks: is the `1−α` confidence
//! interval of the MLE truth estimate `μ̂_j` shorter than `2·ε̄·σ_j`?
//! By the asymptotic normality of the MLE (Theorem 1 in the paper), the
//! interval half-width is `Z_{α/2} / sqrt(I(μ_j))` with Fisher information
//! `I(μ_j) = Σ_i s_ij (u_i^{d_j})² / σ_j²`.

use crate::error::StatsError;
use crate::normal::Normal;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval `[lo, hi]` at confidence `1 − α`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Significance level `α` (e.g. 0.05 for a 95 % interval).
    pub alpha: f64,
}

impl ConfidenceInterval {
    /// Interval for a normal estimator with point estimate `estimate` and
    /// standard error `std_err`, at significance level `alpha`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::ProbabilityOutOfRange`] unless `0 < alpha < 1`.
    /// * [`StatsError::InvalidParameter`] unless `std_err` is finite and
    ///   non-negative.
    ///
    /// # Examples
    ///
    /// ```
    /// use eta2_stats::ConfidenceInterval;
    ///
    /// let ci = ConfidenceInterval::normal(10.0, 1.0, 0.05)?;
    /// assert!((ci.half_width() - 1.96).abs() < 1e-2);
    /// assert!(ci.contains(10.5));
    /// # Ok::<(), eta2_stats::StatsError>(())
    /// ```
    pub fn normal(estimate: f64, std_err: f64, alpha: f64) -> Result<Self, StatsError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(StatsError::ProbabilityOutOfRange(alpha));
        }
        if !std_err.is_finite() || std_err < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "std_err",
                value: std_err,
                requirement: "must be finite and >= 0",
            });
        }
        let z = Normal::standard().quantile(1.0 - alpha / 2.0)?;
        Ok(ConfidenceInterval {
            lo: estimate - z * std_err,
            hi: estimate + z * std_err,
            alpha,
        })
    }

    /// Interval for an MLE truth estimate per the paper's Eq. 24:
    /// standard error `σ_j / sqrt(Σ_i s_ij (u_i^{d_j})²)`.
    ///
    /// `expertise_sq_sum` is `Σ_i s_ij (u_i^{d_j})²` over the users selected
    /// for the task.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConfidenceInterval::normal`], plus
    /// [`StatsError::InvalidParameter`] if `expertise_sq_sum <= 0` or
    /// `sigma <= 0`.
    pub fn mle_truth(
        estimate: f64,
        sigma: f64,
        expertise_sq_sum: f64,
        alpha: f64,
    ) -> Result<Self, StatsError> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                requirement: "must be finite and > 0",
            });
        }
        if !expertise_sq_sum.is_finite() || expertise_sq_sum <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "expertise_sq_sum",
                value: expertise_sq_sum,
                requirement: "must be finite and > 0",
            });
        }
        Self::normal(estimate, sigma / expertise_sq_sum.sqrt(), alpha)
    }

    /// Half the interval length — `Z_{α/2} · std_err`.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Full interval length.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// The paper's quality gate: the interval is narrower than
    /// `2·ε̄·σ` (Algorithm 2, line 13 checks the negation).
    pub fn meets_quality(&self, max_error: f64, sigma: f64) -> bool {
        self.width() <= 2.0 * max_error * sigma
    }
}

/// The minimum `Σ_i s_ij (u_i^{d_j})²` that satisfies the quality gate in
/// closed form: `(Z_{α/2} / ε̄)²`.
///
/// Useful to predict how much aggregate expertise² a task still needs — the
/// min-cost allocator exposes it in its diagnostics.
///
/// # Errors
///
/// [`StatsError::ProbabilityOutOfRange`] unless `0 < alpha < 1`;
/// [`StatsError::InvalidParameter`] unless `max_error > 0`.
pub fn required_expertise_sq(alpha: f64, max_error: f64) -> Result<f64, StatsError> {
    // NaN falls through `<=` but is caught by the finiteness check.
    if max_error <= 0.0 || !max_error.is_finite() {
        return Err(StatsError::InvalidParameter {
            name: "max_error",
            value: max_error,
            requirement: "must be finite and > 0",
        });
    }
    let z = Normal::standard().quantile(1.0 - alpha / 2.0)?;
    Ok((z / max_error).powi(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normal_interval_95_percent() {
        let ci = ConfidenceInterval::normal(0.0, 1.0, 0.05).unwrap();
        assert!((ci.half_width() - 1.959963984540054).abs() < 1e-9);
        assert!(ci.contains(0.0));
        assert!(!ci.contains(2.5));
    }

    #[test]
    fn interval_validation() {
        assert!(ConfidenceInterval::normal(0.0, 1.0, 0.0).is_err());
        assert!(ConfidenceInterval::normal(0.0, 1.0, 1.0).is_err());
        assert!(ConfidenceInterval::normal(0.0, -1.0, 0.05).is_err());
        assert!(ConfidenceInterval::mle_truth(0.0, 0.0, 1.0, 0.05).is_err());
        assert!(ConfidenceInterval::mle_truth(0.0, 1.0, 0.0, 0.05).is_err());
    }

    #[test]
    fn mle_truth_matches_eq24() {
        // σ = 2, Σ u² = 16 → std_err = 0.5; at α = 0.05 half-width ≈ 0.98.
        let ci = ConfidenceInterval::mle_truth(5.0, 2.0, 16.0, 0.05).unwrap();
        assert!((ci.half_width() - 1.959963984540054 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn quality_gate_threshold() {
        // Gate: width ≤ 2·ε̄·σ ⟺ Σu² ≥ (Z/ε̄)².
        let alpha = 0.05;
        let eps = 0.5;
        let sigma = 3.0;
        let need = required_expertise_sq(alpha, eps).unwrap();
        let just_enough = ConfidenceInterval::mle_truth(0.0, sigma, need * 1.0001, alpha).unwrap();
        assert!(just_enough.meets_quality(eps, sigma));
        let not_enough = ConfidenceInterval::mle_truth(0.0, sigma, need * 0.9999, alpha).unwrap();
        assert!(!not_enough.meets_quality(eps, sigma));
    }

    #[test]
    fn required_expertise_known_value() {
        // (1.959963.../0.5)² ≈ 15.3658
        let v = required_expertise_sq(0.05, 0.5).unwrap();
        assert!((v - 15.365835240817353).abs() < 1e-5, "v = {v}");
    }

    proptest! {
        #[test]
        fn interval_always_brackets_estimate(
            est in -1e6..1e6f64,
            se in 0.0..1e3f64,
            alpha in 0.001..0.999f64,
        ) {
            let ci = ConfidenceInterval::normal(est, se, alpha).unwrap();
            prop_assert!(ci.lo <= est && est <= ci.hi);
            prop_assert!(ci.width() >= 0.0);
        }

        #[test]
        fn narrower_alpha_means_wider_interval(se in 0.01..100.0f64) {
            let tight = ConfidenceInterval::normal(0.0, se, 0.10).unwrap();
            let wide = ConfidenceInterval::normal(0.0, se, 0.01).unwrap();
            prop_assert!(wide.width() > tight.width());
        }

        #[test]
        fn required_expertise_monotone_in_error(e1 in 0.05..1.0f64, e2 in 0.05..1.0f64) {
            let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
            let need_lo = required_expertise_sq(0.05, lo).unwrap();
            let need_hi = required_expertise_sq(0.05, hi).unwrap();
            // Tighter error demand requires more aggregate expertise.
            prop_assert!(need_lo >= need_hi);
        }
    }
}
