//! One-sample Kolmogorov–Smirnov test against a fitted normal.
//!
//! A second, binning-free opinion on the paper's Table 1 normality
//! question: the χ² goodness-of-fit result depends on bin choices and dof
//! conventions (see [`crate::chi_square`]), while the KS statistic
//! `D = sup_x |F_n(x) − Φ((x−μ̂)/σ̂)|` does not. The p-value uses the
//! asymptotic Kolmogorov distribution; with parameters estimated from the
//! sample it is conservative (the Lilliefors correction would reject more
//! often), which we note where it matters.

use crate::error::StatsError;
use crate::normal::Normal;

/// Outcome of a KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// The KS statistic `D`.
    pub statistic: f64,
    /// Asymptotic p-value `P(D_n > D)`.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsOutcome {
    /// Whether normality is *not* rejected at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// One-sample KS test of `sample` against a normal with mean/std fitted
/// from the sample.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] for fewer than 8 observations.
/// * [`StatsError::NonFiniteInput`] on NaN/∞.
/// * [`StatsError::InvalidParameter`] for a constant sample.
///
/// # Examples
///
/// ```
/// use eta2_stats::ks::ks_normality_test;
/// use eta2_stats::Normal;
/// use rand::SeedableRng;
///
/// let normal = Normal::new(5.0, 2.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sample: Vec<f64> = (0..300).map(|_| normal.sample(&mut rng)).collect();
/// assert!(ks_normality_test(&sample)?.passes(0.05));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ks_normality_test(sample: &[f64]) -> Result<KsOutcome, StatsError> {
    let n = sample.len();
    if n < 8 {
        return Err(StatsError::InsufficientData {
            got: n,
            required: 8,
        });
    }
    if sample.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    let mean = sample.iter().sum::<f64>() / n as f64;
    let var = sample.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    if var <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "sample variance",
            value: var,
            requirement: "must be > 0 (sample must not be constant)",
        });
    }
    let fitted = Normal::new(mean, var.sqrt())?;

    let mut sorted = sample.to_vec();
    // Inputs are validated finite above; total_cmp keeps the sort
    // panic-free even if that ever changes.
    sorted.sort_by(f64::total_cmp);
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = fitted.cdf(x);
        let upper = (i + 1) as f64 / n as f64 - cdf;
        let lower = cdf - i as f64 / n as f64;
        d = d.max(upper).max(lower);
    }

    Ok(KsOutcome {
        statistic: d,
        p_value: kolmogorov_sf((n as f64).sqrt() * d),
        n,
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(t) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²t²}`, clamped to `[0, 1]`.
pub fn kolmogorov_sf(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    if t > 8.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * t * t).exp();
        if term < 1e-18 {
            break;
        }
        sum += if k % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn kolmogorov_sf_known_values() {
        // Q(0.8276) ≈ 0.5 (the Kolmogorov distribution median).
        assert!((kolmogorov_sf(0.82757) - 0.5).abs() < 1e-3);
        // Classical critical value: Q(1.358) ≈ 0.05.
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 2e-3);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert_eq!(kolmogorov_sf(9.0), 0.0);
    }

    #[test]
    fn kolmogorov_sf_monotone() {
        let mut prev = 1.0;
        for i in 1..100 {
            let v = kolmogorov_sf(i as f64 * 0.05);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn accepts_normal_rejects_uniform() {
        let normal = Normal::new(-1.0, 3.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut accepted = 0;
        for _ in 0..30 {
            let s: Vec<f64> = (0..400).map(|_| normal.sample(&mut rng)).collect();
            if ks_normality_test(&s).unwrap().passes(0.05) {
                accepted += 1;
            }
        }
        assert!(accepted >= 26, "accepted {accepted}/30 normal samples");

        let mut rejected = 0;
        for _ in 0..30 {
            let s: Vec<f64> = (0..1500).map(|_| rng.gen_range(0.0..1.0)).collect();
            if !ks_normality_test(&s).unwrap().passes(0.05) {
                rejected += 1;
            }
        }
        assert!(
            rejected >= 24,
            "rejected only {rejected}/30 uniform samples"
        );
    }

    #[test]
    fn input_validation() {
        assert!(matches!(
            ks_normality_test(&[1.0; 3]),
            Err(StatsError::InsufficientData { .. })
        ));
        assert!(matches!(
            ks_normality_test(&[2.0; 20]),
            Err(StatsError::InvalidParameter { .. })
        ));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut v = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
            v[2] = bad;
            assert!(matches!(
                ks_normality_test(&v),
                Err(StatsError::NonFiniteInput)
            ));
        }
    }

    proptest! {
        #[test]
        fn statistic_and_p_are_valid(seed in 0u64..500, n in 8usize..200) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let s: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
            if let Ok(o) = ks_normality_test(&s) {
                prop_assert!((0.0..=1.0).contains(&o.statistic));
                prop_assert!((0.0..=1.0).contains(&o.p_value));
                prop_assert_eq!(o.n, n);
            }
        }
    }
}
