//! Descriptive statistics: summaries, quantiles and histograms.
//!
//! The evaluation harness uses these for the paper's Fig. 2 (error
//! histograms vs the standard-normal pdf), Fig. 7 (boxplot quartiles of the
//! observation error per expertise bin) and Fig. 12 (CDF of MLE iteration
//! counts).

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(eta2_stats::descriptive::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(eta2_stats::descriptive::mean(&[]), None);
/// ```
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Unbiased sample variance (`n − 1` denominator); `None` for fewer than two
/// points.
pub fn sample_variance(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data)?;
    Some(data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0))
}

/// Population variance (`n` denominator); `None` for an empty slice.
pub fn population_variance(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    Some(data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / data.len() as f64)
}

/// Population standard deviation — the paper's `std_j` in the error
/// normalization `err_ij = (x_ij − μ_j)/std_j` (§2.3).
pub fn population_std(data: &[f64]) -> Option<f64> {
    population_variance(data).map(f64::sqrt)
}

/// Linear-interpolation quantile of `data` at probability `q ∈ [0, 1]`.
///
/// Matches the common "type 7" definition (the default of R and NumPy).
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] for an empty slice.
/// * [`StatsError::ProbabilityOutOfRange`] unless `0 ≤ q ≤ 1`.
/// * [`StatsError::NonFiniteInput`] if any value is NaN/∞ (the
///   interpolation between order statistics is meaningless there).
///
/// # Examples
///
/// ```
/// use eta2_stats::descriptive::quantile;
///
/// let q = quantile(&[4.0, 1.0, 3.0, 2.0], 0.5)?;
/// assert_eq!(q, 2.5);
/// # Ok::<(), eta2_stats::StatsError>(())
/// ```
pub fn quantile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData {
            got: 0,
            required: 1,
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::ProbabilityOutOfRange(q));
    }
    if data.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A five-number summary plus mean and count — what a boxplot needs
/// (paper Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// # Errors
    ///
    /// [`StatsError::InsufficientData`] for an empty slice,
    /// [`StatsError::NonFiniteInput`] if any value is NaN/∞.
    pub fn from_slice(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::InsufficientData {
                got: 0,
                required: 1,
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFiniteInput);
        }
        Ok(Summary {
            count: data.len(),
            mean: mean(data).expect("non-empty"),
            min: quantile(data, 0.0)?,
            q1: quantile(data, 0.25)?,
            median: quantile(data, 0.5)?,
            q3: quantile(data, 0.75)?,
            max: quantile(data, 1.0)?,
        })
    }

    /// Interquartile range `q3 − q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// A fixed-range histogram with equal-width bins.
///
/// # Examples
///
/// ```
/// use eta2_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [1.0, 1.5, 9.0, -3.0, 12.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts()[0], 2); // 1.0 and 1.5
/// assert_eq!(h.underflow(), 1); // -3.0
/// assert_eq!(h.overflow(), 1);  // 12.0
/// # Ok::<(), eta2_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if `bins == 0`, the bounds are not
    /// finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                requirement: "must be > 0",
            });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StatsError::InvalidParameter {
                name: "range",
                value: hi - lo,
                requirement: "bounds must be finite with lo < hi",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x.is_nan() {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the lower bound (NaN counts here too).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// The empirical density of bin `i` (count / (total · width)), comparable
    /// to a pdf — the form Fig. 2 plots against the N(0,1) density.
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts[i] as f64 / (total as f64 * w)
    }
}

/// Empirical CDF evaluated at the sorted sample points — the series the
/// paper's Fig. 12 plots for MLE iteration counts.
///
/// Returns `(value, fraction ≤ value)` pairs sorted by value. Values are
/// ordered by IEEE 754 total order, so NaNs (if any) sort after every
/// number instead of panicking the sort.
pub fn empirical_cdf(data: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_basics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), Some(5.0));
        assert!((population_variance(&data).unwrap() - 4.0).abs() < 1e-12);
        assert!((population_std(&data).unwrap() - 2.0).abs() < 1e-12);
        assert!((sample_variance(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_single_point() {
        assert_eq!(sample_variance(&[3.0]), None);
        assert_eq!(population_variance(&[3.0]), Some(0.0));
    }

    #[test]
    fn quantile_type7_matches_reference() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&data, 0.5).unwrap(), 2.5);
        // numpy.quantile([1,2,3,4], 0.25) = 1.75
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_errors() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn quantile_rejects_non_finite_instead_of_panicking() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                quantile(&[1.0, bad, 3.0], 0.5),
                Err(StatsError::NonFiniteInput)
            ));
        }
    }

    #[test]
    fn empirical_cdf_tolerates_nan() {
        // NaN must not panic the sort; by total order it lands last with
        // the final cumulative fraction.
        let cdf = empirical_cdf(&[2.0, f64::NAN, 1.0]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 1.0);
        assert_eq!(cdf[1].0, 2.0);
        assert!(cdf[2].0.is_nan());
        assert_eq!(cdf[2].1, 1.0);
    }

    #[test]
    fn summary_five_numbers() {
        let data = [7.0, 15.0, 36.0, 39.0, 40.0, 41.0];
        let s = Summary::from_slice(&data).unwrap();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 41.0);
        assert_eq!(s.median, 37.5);
        assert!(s.iqr() > 0.0);
        assert!(s.q1 <= s.median && s.median <= s.q3);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_slice(&[]).is_err());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn histogram_binning_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        h.extend([0.0, 0.05, 0.95, 0.999, 1.0, -0.001]);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn histogram_density_sums_to_one() {
        let mut h = Histogram::new(-3.0, 3.0, 24).unwrap();
        h.extend((0..1000).map(|i| -2.9 + 5.8 * (i as f64 / 999.0)));
        let w = 6.0 / 24.0;
        let total: f64 = (0..24).map(|i| h.density(i) * w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_parameters() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn empirical_cdf_is_a_cdf() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap(), &(3.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    proptest! {
        #[test]
        fn quantile_is_monotone_in_q(
            data in proptest::collection::vec(-1e6..1e6f64, 1..50),
            a in 0.0..1.0f64,
            b in 0.0..1.0f64,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let qa = quantile(&data, lo).unwrap();
            let qb = quantile(&data, hi).unwrap();
            prop_assert!(qa <= qb + 1e-9);
        }

        #[test]
        fn histogram_conserves_count(xs in proptest::collection::vec(-10.0..10.0f64, 0..200)) {
            let mut h = Histogram::new(-5.0, 5.0, 7).unwrap();
            h.extend(xs.iter().copied());
            prop_assert_eq!(h.total() + h.underflow() + h.overflow(), xs.len() as u64);
        }

        #[test]
        fn summary_orders_quartiles(data in proptest::collection::vec(-1e3..1e3f64, 1..100)) {
            let s = Summary::from_slice(&data).unwrap();
            prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
            prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
        }
    }
}
