//! The normal (Gaussian) distribution.
//!
//! ETA²'s observation model (paper §2.4) assumes a user's reading for a task
//! is `N(μ_j, (σ_j/u_ij)²)`; the max-quality objective needs `Φ` (Eq. 11) and
//! the min-cost quality gate needs the quantile `Z_{α/2}` (Eq. 24). Sampling
//! uses the Marsaglia polar method so the dataset generators do not need an
//! external distributions crate.

use crate::error::StatsError;
use crate::special::{erf, erfc};
use rand::Rng;

/// A normal distribution with mean `μ` and standard deviation `σ > 0`.
///
/// # Examples
///
/// ```
/// use eta2_stats::Normal;
///
/// let n = Normal::new(10.0, 2.0)?;
/// assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
/// // ~95% of mass within ±1.96 σ
/// let within = n.cdf(10.0 + 1.96 * 2.0) - n.cdf(10.0 - 1.96 * 2.0);
/// assert!((within - 0.95).abs() < 1e-3);
/// # Ok::<(), eta2_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `mean` is not finite or
    /// `std_dev` is not finite and strictly positive.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                requirement: "must be finite",
            });
        }
        if !std_dev.is_finite() || std_dev <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "std_dev",
                value: std_dev,
                requirement: "must be finite and > 0",
            });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// The mean `μ`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation `σ`.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    ///
    /// For the standard normal this is the paper's `Φ`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `P(X > x) = 1 − CDF(x)`, accurate in the far tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF): the `x` with `P(X ≤ x) = p`.
    ///
    /// Uses the Acklam rational approximation refined by one Halley step
    /// against the exact CDF, giving ~1e-14 accuracy — plenty for the
    /// paper's `Z_{α/2}` in Eq. 24.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ProbabilityOutOfRange`] unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::ProbabilityOutOfRange(p));
        }
        let z = standard_quantile(p);
        Ok(self.mean + self.std_dev * z)
    }

    /// Draws one sample using the Marsaglia polar method.
    ///
    /// # Examples
    ///
    /// ```
    /// use eta2_stats::Normal;
    /// use rand::SeedableRng;
    ///
    /// let n = Normal::new(5.0, 0.5)?;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let x = n.sample(&mut rng);
    /// assert!(x.is_finite());
    /// # Ok::<(), eta2_stats::StatsError>(())
    /// ```
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_sample(rng)
    }

    /// Fills `out` with independent samples.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

/// Standard-normal CDF `Φ(x)` as a free function (paper Eq. 11 uses it
/// heavily on the allocation hot path).
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// The accuracy probability of the paper's Eq. 11:
/// `p = Φ(ε·u) − Φ(−ε·u) = erf(ε·u / √2)`.
///
/// Computed with a single `erf`, exact and free of cancellation.
pub fn accuracy_probability(epsilon: f64, expertise: f64) -> f64 {
    erf(epsilon * expertise / std::f64::consts::SQRT_2)
}

/// Draws one standard-normal sample with the Marsaglia polar method.
pub fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Standard-normal quantile via Acklam's approximation + one Halley
/// refinement step.
fn standard_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x <- x - 2 e / (2 phi(x) + e x), e = Φ(x) - p.
    let e = phi(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let u = e / pdf;
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -2.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(3.0, 0.5).is_ok());
    }

    #[test]
    fn standard_cdf_known_values() {
        let n = Normal::standard();
        // Φ(1.96) ≈ 0.9750021048517795
        assert!((n.cdf(1.96) - 0.9750021048517795).abs() < 1e-12);
        assert!((n.cdf(-1.96) - 0.024997895148220435).abs() < 1e-12);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = Normal::new(2.0, 3.0).unwrap();
        let (lo, hi, steps) = (-28.0_f64, 32.0_f64, 60_000usize);
        let h = (hi - lo) / steps as f64;
        let mut area = 0.0;
        for i in 0..steps {
            let x = lo + (i as f64 + 0.5) * h;
            area += n.pdf(x) * h;
        }
        assert!((area - 1.0).abs() < 1e-8, "area = {area}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-1.0, 2.5).unwrap();
        for &p in &[0.001, 0.025, 0.05, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = n.quantile(p).unwrap();
            assert!((n.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn quantile_z_values() {
        let n = Normal::standard();
        // Z_{0.025} = 1.959963984540054
        assert!((n.quantile(0.975).unwrap() - 1.959963984540054).abs() < 1e-9);
        // Z_{0.05} = 1.6448536269514722
        assert!((n.quantile(0.95).unwrap() - 1.6448536269514722).abs() < 1e-9);
    }

    #[test]
    fn quantile_rejects_degenerate_probability() {
        let n = Normal::standard();
        assert!(n.quantile(0.0).is_err());
        assert!(n.quantile(1.0).is_err());
        assert!(n.quantile(-0.3).is_err());
        assert!(n.quantile(f64::NAN).is_err());
    }

    #[test]
    fn sf_complements_cdf_and_keeps_tail_accuracy() {
        let n = Normal::standard();
        for &x in &[-8.0, -3.0, 0.0, 3.0, 8.0] {
            assert!((n.cdf(x) + n.sf(x) - 1.0).abs() < 1e-12);
        }
        // P(X > 8) ≈ 6.22e-16; a naive 1 - cdf would return exactly 0.
        assert!(n.sf(8.0) > 0.0);
    }

    #[test]
    fn accuracy_probability_matches_two_phi_form() {
        for &(eps, u) in &[(0.1, 0.5), (0.1, 1.0), (0.1, 3.0), (0.5, 2.0)] {
            let direct = accuracy_probability(eps, u);
            let two_phi = phi(eps * u) - phi(-eps * u);
            assert!((direct - two_phi).abs() < 1e-12, "eps={eps}, u={u}");
        }
    }

    #[test]
    fn sample_mean_and_std_converge() {
        let n = Normal::new(4.0, 1.5).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let count = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..count {
            let x = n.sample(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        assert!((mean - 4.0).abs() < 0.02, "mean = {mean}");
        assert!((var.sqrt() - 1.5).abs() < 0.02, "std = {}", var.sqrt());
    }

    #[test]
    fn sample_into_fills_buffer() {
        let n = Normal::standard();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut buf = [0.0; 32];
        n.sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        // Astronomically unlikely that two polar-method draws are equal.
        assert_ne!(buf[0], buf[1]);
    }

    proptest! {
        #[test]
        fn cdf_monotone_and_bounded(a in -50.0..50.0f64, b in -50.0..50.0f64) {
            let n = Normal::standard();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let (ca, cb) = (n.cdf(lo), n.cdf(hi));
            prop_assert!(ca <= cb + 1e-15);
            prop_assert!((0.0..=1.0).contains(&ca));
            prop_assert!((0.0..=1.0).contains(&cb));
        }

        #[test]
        fn quantile_cdf_roundtrip(p in 1e-6..0.999999f64) {
            let n = Normal::standard();
            let x = n.quantile(p).unwrap();
            prop_assert!((n.cdf(x) - p).abs() < 1e-8);
        }

        #[test]
        fn accuracy_probability_in_unit_interval(eps in 0.0..2.0f64, u in 0.0..10.0f64) {
            let p = accuracy_probability(eps, u);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
