//! A small, dependency-free argument parser: `--key value` flags and
//! positional arguments.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals in order plus `--key value`
/// options (`--flag` with no value stores an empty string).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                args.options.insert(key.to_string(), value);
            } else {
                args.positionals.push(a);
            }
        }
        args
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The string value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether `--key` was passed (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Parses `--key` as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_options() {
        // Note: a non-`--` token right after a flag is consumed as that
        // flag's value, so positionals must precede flags or follow a
        // valueless flag at the end.
        let a = parse(&["simulate", "extra", "--seed", "7", "--fast"]);
        assert_eq!(a.positional(0), Some("simulate"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.has("fast"));
        assert_eq!(a.get("fast"), Some(""));
        assert!(!a.has("missing"));
    }

    #[test]
    fn get_parsed_with_default() {
        let a = parse(&["--seeds", "12"]);
        assert_eq!(a.get_parsed("seeds", 5u64), Ok(12));
        assert_eq!(a.get_parsed("other", 5u64), Ok(5));
        let bad = parse(&["--seeds", "twelve"]);
        assert!(bad.get_parsed("seeds", 5u64).is_err());
    }

    #[test]
    fn flag_followed_by_flag_gets_empty_value() {
        let a = parse(&["--fast", "--seed", "3"]);
        assert_eq!(a.get("fast"), Some(""));
        assert_eq!(a.get("seed"), Some("3"));
    }

    #[test]
    fn empty_input() {
        let a = parse(&[]);
        assert_eq!(a.positional(0), None);
    }
}
