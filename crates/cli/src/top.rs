//! `top` — a live plain-text dashboard over the serving engine's
//! observability plane.
//!
//! Two attachment modes:
//!
//! * **Replay** (`--replay FILE.jsonl`): aggregates a structured trace
//!   written by any command's `--trace` flag (or `ETA2_TRACE`). With
//!   `--follow` the file is tailed and the table refreshes as new events
//!   land; without it one final frame is printed. Flush-latency
//!   percentiles live in the metrics registry rather than the event
//!   stream, so pass the companion snapshot written by
//!   `serve-bench --metrics-json FILE` via `--metrics FILE` to fill that
//!   row in.
//! * **Demo** (`--demo`): starts an in-process serving engine under a
//!   synthetic ingest load and samples the global metrics registry live —
//!   the attach-to-in-process path, exercised without needing a second
//!   process.
//!
//! Rendering is plain text. When stdout is a terminal each refresh
//! redraws in place (ANSI home + clear); when piped, frames are printed
//! sequentially so the output stays greppable in CI logs.

use crate::args::Args;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, IsTerminal, Seek};

/// Per-shard flush aggregates reconstructed from `serve_batch_flush`.
#[derive(Debug, Default, Clone, Copy)]
struct ShardAgg {
    flushes: u64,
    reports: u64,
    iter_sum: u64,
    iter_max: u64,
    unconverged: u64,
}

/// Everything one dashboard frame needs, folded incrementally from a
/// JSONL event stream (replay mode) or a registry snapshot (demo mode).
#[derive(Debug, Default)]
struct TopState {
    events: u64,
    accepted: u64,
    quarantined: u64,
    unknown: u64,
    traces: u64,
    epoch: u64,
    truths: u64,
    tasks: u64,
    queue_depth: u64,
    breaches: u64,
    first_ts_ms: Option<u64>,
    last_ts_ms: u64,
    publish_ts_ms: Option<u64>,
    shards: BTreeMap<u64, ShardAgg>,
    /// `(quantile-label, value)` rows for the flush-latency line, sourced
    /// from a metrics snapshot (`--metrics` file or the live registry).
    flush_quantiles: Vec<(String, f64)>,
    /// Per-domain MLE iteration aggregates `(count, mean, max)` from the
    /// `mle.domain_iterations|domain=D` histogram series.
    domain_iters: BTreeMap<u64, (u64, f64, f64)>,
}

impl TopState {
    /// Folds one JSONL event line into the aggregates. Unknown event
    /// types and malformed lines are skipped — a dashboard must not die
    /// because the stream it watches has events it predates.
    fn apply_line(&mut self, line: &str) {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            return;
        };
        let u = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        self.events += 1;
        let ts = u("ts_ms");
        if ts > 0 {
            self.first_ts_ms.get_or_insert(ts);
            self.last_ts_ms = self.last_ts_ms.max(ts);
        }
        match v.get("type").and_then(Value::as_str) {
            Some("trace_ingest") => {
                self.traces += 1;
                self.accepted += u("accepted");
                self.quarantined += u("quarantined");
                self.unknown += u("unknown");
            }
            Some("serve_batch_flush") => {
                let s = self.shards.entry(u("shard")).or_default();
                s.flushes += 1;
                s.reports += u("reports");
                let it = u("iterations");
                s.iter_sum += it;
                s.iter_max = s.iter_max.max(it);
                if v.get("converged").and_then(Value::as_bool) == Some(false) {
                    s.unconverged += 1;
                }
            }
            Some("serve_epoch_published") => {
                self.epoch = self.epoch.max(u("epoch"));
                self.truths = u("truths");
                self.tasks = u("tasks");
                self.queue_depth = u("queue_depth");
                if ts > 0 {
                    self.publish_ts_ms = Some(ts);
                }
            }
            Some("invariant_breach") => self.breaches += 1,
            _ => {}
        }
    }

    /// Merges histogram-derived rows (flush latency quantiles, per-domain
    /// iterations) from a metrics snapshot in [`Snapshot::to_json`] form,
    /// accepting both the bare object and the versioned
    /// `eta2_obs::expose_json` envelope.
    ///
    /// [`Snapshot::to_json`]: eta2_obs::Snapshot::to_json
    fn apply_metrics(&mut self, snapshot: &Value) {
        let root = snapshot.get("metrics").unwrap_or(snapshot);
        let Some(hists) = root.get("histograms").and_then(Value::as_object) else {
            return;
        };
        let mut flush = Vec::new();
        for (name, h) in hists {
            let f = |key: &str| h.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
            let (base, labels) = eta2_obs::expose::split_name(name);
            if base == "serve.flush" && flush.is_empty() {
                // Engine-wide series; per-shard rows below override it.
                flush = vec![
                    ("p50".to_string(), f("p50")),
                    ("p95".to_string(), f("p95")),
                    ("p99".to_string(), f("p99")),
                ];
            }
            if base == "mle.domain_iterations" {
                if let Some(d) = labels
                    .iter()
                    .find(|(k, _)| *k == "domain")
                    .and_then(|(_, val)| val.parse::<u64>().ok())
                {
                    let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
                    self.domain_iters.insert(d, (count, f("mean"), f("max")));
                }
            }
        }
        self.flush_quantiles = flush;
        if let Some(gauges) = root.get("gauges").and_then(Value::as_object) {
            let g = |key: &str| gauges.get(key).and_then(Value::as_f64);
            if let Some(q) = g("serve.queue_depth") {
                self.queue_depth = q.max(0.0) as u64;
            }
            if let Some(e) = g("serve.epoch") {
                self.epoch = self.epoch.max(e.max(0.0) as u64);
            }
        }
    }

    /// Renders one dashboard frame.
    fn render(&self, source: &str) -> String {
        let mut out = String::new();
        let span_s = match (self.first_ts_ms, self.last_ts_ms) {
            (Some(a), b) if b > a => (b - a) as f64 / 1_000.0,
            _ => 0.0,
        };
        let rate = if span_s > 0.0 {
            self.accepted as f64 / span_s
        } else {
            0.0
        };
        let epoch_age = self
            .publish_ts_ms
            .map(|p| (self.last_ts_ms.saturating_sub(p)) as f64 / 1_000.0);
        let _ = writeln!(out, "eta2 top — {source} ({} events)", self.events);
        let _ = writeln!(
            out,
            "  ingest  accepted {:>8}  rate {:>9.1}/s  quarantined {:>5}  unknown {:>5}  traces {:>6}",
            self.accepted, rate, self.quarantined, self.unknown, self.traces
        );
        let _ = writeln!(
            out,
            "  engine  epoch {:>6}  age {:>6}  queue {:>6}  truths {:>6}  tasks {:>6}  breaches {:>3}",
            self.epoch,
            epoch_age.map_or_else(|| "n/a".to_string(), |a| format!("{a:.1}s")),
            self.queue_depth,
            self.truths,
            self.tasks,
            self.breaches
        );
        if self.flush_quantiles.is_empty() {
            let _ = writeln!(
                out,
                "  flush   latency: n/a (attach a metrics snapshot via --metrics or run --demo)"
            );
        } else {
            let mut row = String::from("  flush   latency");
            for (q, val) in &self.flush_quantiles {
                let _ = write!(row, "  {q} {}", fmt_seconds(*val));
            }
            let _ = writeln!(out, "{row}");
        }
        if !self.shards.is_empty() {
            let _ = writeln!(
                out,
                "  shard   flushes   reports   iter avg/max   unconverged"
            );
            for (k, s) in &self.shards {
                let avg = if s.flushes > 0 {
                    s.iter_sum as f64 / s.flushes as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {k:>5}   {:>7}   {:>7}   {avg:>6.1} / {:<3}   {:>11}",
                    s.flushes, s.reports, s.iter_max, s.unconverged
                );
            }
        }
        if !self.domain_iters.is_empty() {
            let _ = writeln!(out, "  domain  solves    iter mean/max");
            for (d, (count, mean, max)) in &self.domain_iters {
                let _ = writeln!(out, "  {d:>5}   {count:>7}   {mean:>6.1} / {max:<6.1}");
            }
        }
        out
    }
}

/// Sub-second latencies dominate here; print with enough precision that a
/// microsecond-scale p50 is not rendered as a wall of zeros.
fn fmt_seconds(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_string()
    } else if v < 0.001 {
        format!("{:.1}us", v * 1e6)
    } else if v < 1.0 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{v:.2}s")
    }
}

/// Prints one frame, redrawing in place when stdout is a terminal.
fn draw(frame: &str) {
    if std::io::stdout().is_terminal() {
        // Home + clear-to-end keeps the frame flicker-free without
        // pulling in a terminal library.
        print!("\x1b[H\x1b[2J{frame}");
    } else {
        print!("{frame}");
    }
}

/// Loads an optional `--metrics` snapshot file into the state.
fn load_metrics(state: &mut TopState, path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read metrics {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("metrics {path} is not JSON: {e}"))?;
    state.apply_metrics(&v);
    Ok(())
}

/// Replay mode: fold a JSONL trace into the dashboard, optionally
/// following the file as it grows.
fn run_replay(args: &Args, path: &str) -> Result<(), String> {
    let follow = args.has("follow");
    let interval = args.get_parsed("interval", 500u64)?;
    let refreshes = args.get_parsed("refreshes", u64::MAX)?;
    let mut state = TopState::default();
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    let mut frames = 0u64;
    loop {
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => state.apply_line(line.trim_end()),
                Err(e) => return Err(format!("read error on {path}: {e}")),
            }
        }
        if let Some(m) = args.get("metrics") {
            load_metrics(&mut state, m)?;
        }
        draw(&state.render(&format!("replay {path}")));
        frames += 1;
        if !follow || frames >= refreshes {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(50)));
        // A truncated-and-rewritten file would leave the cursor past EOF;
        // rewind-to-start is the simple, correct answer for a dashboard.
        let pos = reader
            .stream_position()
            .map_err(|e| format!("seek error on {path}: {e}"))?;
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(pos);
        if len < pos {
            reader
                .seek(std::io::SeekFrom::Start(0))
                .map_err(|e| format!("seek error on {path}: {e}"))?;
            state = TopState::default();
        }
    }
}

/// Demo mode: drive an in-process engine and sample the live registry.
fn run_demo(args: &Args) -> Result<(), String> {
    use eta2_core::model::{DomainId, ObservationSet, UserId};
    use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
    use std::sync::atomic::{AtomicBool, Ordering};

    let refreshes = args.get_parsed("refreshes", 10u64)?;
    let interval = args.get_parsed("interval", 500u64)?;
    let seed = args.get_parsed("seed", 0u64)?;
    eta2_obs::set_metrics(true);
    eta2_obs::trace::seed_ids(seed);

    let mut cfg = ServeConfig::default();
    cfg.n_users = 32;
    cfg.n_shards = 4;
    cfg.batch_capacity = 64;
    cfg.threads = 1;
    let engine = ServeEngine::new(cfg);
    let ids = engine
        .register_tasks(
            &(0..64u32)
                .map(|j| TaskSpec::new(DomainId(j % 8), 1.0, 1.0))
                .collect::<Vec<_>>(),
        )
        .map_err(|e| e.to_string())?;

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| -> Result<(), String> {
        let producer = s.spawn(|| {
            let mut r = 0u64;
            while !stop.load(Ordering::Acquire) {
                let mut obs = ObservationSet::new();
                for k in 0..8u64 {
                    let h = r
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(k)
                        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    let task = ids[(h % ids.len() as u64) as usize];
                    let user = UserId((h >> 32) as u32 % 32);
                    obs.insert(user, task, 10.0 + (h % 97) as f64 * 0.1);
                }
                engine.submit(&obs);
                r += 1;
                if r % 16 == 0 {
                    std::thread::yield_now();
                }
            }
            engine.tick();
        });
        for _ in 0..refreshes {
            std::thread::sleep(std::time::Duration::from_millis(interval.max(50)));
            let mut state = TopState::default();
            let snap: Value = serde_json::from_str(&eta2_obs::expose_json())
                .map_err(|e| format!("registry snapshot is not JSON: {e}"))?;
            state.apply_metrics(&snap);
            // Counters carry the ingest totals in live mode.
            if let Some(counters) = snap
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(Value::as_object)
            {
                let c = |key: &str| counters.get(key).and_then(Value::as_u64).unwrap_or(0);
                state.accepted = c("serve.accepted_reports");
                state.quarantined = c("serve.quarantined_reports");
                state.breaches = c("check.breach");
            }
            state.truths = engine.snapshot().truth_count() as u64;
            state.tasks = engine.snapshot().tasks().len() as u64;
            state.queue_depth = engine.queue_depth() as u64;
            state.epoch = engine.snapshot().epoch();
            draw(&state.render("demo (in-process engine)"));
        }
        stop.store(true, Ordering::Release);
        producer.join().expect("demo producer panicked");
        Ok(())
    })
}

/// `top` entry point: dispatches on `--replay` / `--demo`.
pub fn run(args: &Args) -> Result<(), String> {
    match (args.get("replay"), args.has("demo")) {
        (Some(""), _) => Err("--replay requires a JSONL file path".into()),
        (Some(path), _) => run_replay(args, path),
        (None, true) => run_demo(args),
        (None, false) => Err("top needs --replay FILE.jsonl or --demo".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_aggregation_folds_the_event_stream() {
        let mut st = TopState::default();
        st.apply_line(
            r#"{"seq":1,"ts_ms":1000,"type":"trace_ingest","trace":9,"span":9,"parent":0,"accepted":8,"quarantined":1,"unknown":0}"#,
        );
        st.apply_line(
            r#"{"seq":2,"ts_ms":1100,"type":"serve_batch_flush","shard":2,"reports":8,"tasks":4,"iterations":5,"converged":false}"#,
        );
        st.apply_line(
            r#"{"seq":3,"ts_ms":1500,"type":"serve_epoch_published","epoch":3,"truths":4,"tasks":4,"queue_depth":2}"#,
        );
        st.apply_line("not json at all");
        st.apply_line(r#"{"seq":4,"ts_ms":2000,"type":"some_future_event","x":1}"#);
        assert_eq!(st.accepted, 8);
        assert_eq!(st.quarantined, 1);
        assert_eq!(st.epoch, 3);
        assert_eq!(st.queue_depth, 2);
        assert_eq!(st.shards[&2].flushes, 1);
        assert_eq!(st.shards[&2].iter_max, 5);
        assert_eq!(st.shards[&2].unconverged, 1);
        let frame = st.render("test");
        assert!(frame.contains("epoch      3"), "{frame}");
        // Events span 1.0s (ts 1000..2000) with 8 accepted.
        assert!(frame.contains("8.0/s"), "{frame}");
        // Epoch age = last ts (2000) - publish ts (1500).
        assert!(frame.contains("0.5s"), "{frame}");
    }

    #[test]
    fn metrics_snapshot_fills_latency_and_domain_rows() {
        let mut st = TopState::default();
        let snap: Value = serde_json::from_str(
            r#"{"schema":"eta2.metrics/1","version":1,"metrics":{
                "counters":{},
                "gauges":{"serve.queue_depth":7.0,"serve.epoch":12.0},
                "histograms":{
                    "serve.flush":{"count":4,"sum":0.4,"mean":0.1,"min":0.05,"max":0.2,"p50":0.0001,"p95":0.15,"p99":0.2,"bounds":[],"counts":[]},
                    "mle.domain_iterations|domain=3":{"count":6,"sum":18.0,"mean":3.0,"min":1.0,"max":7.0,"p50":3.0,"p95":7.0,"p99":7.0,"bounds":[],"counts":[]}
                }}}"#,
        )
        .unwrap();
        st.apply_metrics(&snap);
        assert_eq!(st.queue_depth, 7);
        assert_eq!(st.epoch, 12);
        assert_eq!(st.domain_iters[&3], (6, 3.0, 7.0));
        let frame = st.render("test");
        assert!(frame.contains("p50 100.0us"), "{frame}");
        assert!(frame.contains("3.0 / 7.0"), "{frame}");
    }

    #[test]
    fn seconds_formatting_picks_a_readable_unit() {
        assert_eq!(fmt_seconds(0.000_05), "50.0us");
        assert_eq!(fmt_seconds(0.012), "12.00ms");
        assert_eq!(fmt_seconds(2.5), "2.50s");
        assert_eq!(fmt_seconds(f64::NAN), "n/a");
    }
}
