//! `eta2-cli` — command-line interface for the ETA² reproduction.
//!
//! ```sh
//! eta2-cli generate --dataset survey --out survey.json
//! eta2-cli simulate --dataset synthetic --approach eta2 --seeds 10
//! eta2-cli domains  --dataset survey
//! eta2-cli bench fig5
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = Args::parse(raw);
    let result = match parsed.positional(0) {
        Some("generate") => commands::generate(&parsed),
        Some("simulate") => commands::simulate(&parsed),
        Some("domains") => commands::domains(&parsed),
        Some("bench") => commands::bench(&parsed),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        eprintln!();
        eprint!("{}", commands::USAGE);
        std::process::exit(2);
    }
}
