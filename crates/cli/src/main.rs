//! `eta2-cli` — command-line interface for the ETA² reproduction.
//!
//! ```sh
//! eta2-cli generate --dataset survey --out survey.json
//! eta2-cli simulate --dataset synthetic --approach eta2 --seeds 10
//! eta2-cli simulate --dataset synthetic --trace run.jsonl --verbose
//! eta2-cli domains  --dataset survey
//! eta2-cli bench fig5
//! eta2-cli serve-bench --producers 4 --shards 8
//! eta2-cli serve --listen 127.0.0.1:4980
//! eta2-cli load-gen --clients 100000 --requests 200000 --out BENCH_serve.json
//! eta2-cli top --replay run.jsonl
//! eta2-cli check --seeds 256
//! eta2-cli check --net-fuzz 100000
//! ```

mod args;
mod commands;
mod top;

use args::Args;
use std::path::PathBuf;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = Args::parse(raw);

    // Flight recorder: armed by ETA2_FLIGHT_DIR before any subcommand
    // work, so the last moments before an invariant breach or panic are
    // captured even on runs with no --trace sink.
    eta2_obs::flight::init_from_env();
    if eta2_obs::flight::enabled() {
        eta2_obs::flight::install_panic_hook();
    }

    // Observability flags apply to every subcommand and must be in place
    // before any work starts.
    if parsed.has("quiet") {
        eta2_obs::set_verbosity(eta2_obs::Verbosity::Quiet);
    } else if parsed.has("verbose") {
        eta2_obs::set_verbosity(eta2_obs::Verbosity::Verbose);
    }
    let trace: Option<PathBuf> = match parsed.get("trace") {
        Some("") => {
            eprintln!("error: --trace requires a file path");
            std::process::exit(2);
        }
        Some(p) => Some(PathBuf::from(p)),
        None => eta2_obs::env_path("ETA2_TRACE"),
    };
    if let Some(path) = &trace {
        if let Err(e) = eta2_obs::init_file(path) {
            eprintln!("error: cannot open trace file {}: {e}", path.display());
            std::process::exit(2);
        }
    }

    let result = match parsed.positional(0) {
        Some("generate") => commands::generate(&parsed),
        Some("simulate") => commands::simulate(&parsed),
        Some("domains") => commands::domains(&parsed),
        Some("bench") => commands::bench(&parsed),
        Some("serve-bench") => commands::serve_bench(&parsed),
        Some("serve") => commands::serve(&parsed),
        Some("load-gen") => commands::load_gen(&parsed),
        Some("top") => top::run(&parsed),
        Some("check") => commands::check(&parsed),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    eta2_obs::flush();
    if let Err(e) = result {
        eprintln!("error: {e}");
        eprintln!();
        eprint!("{}", commands::USAGE);
        std::process::exit(2);
    }
}
