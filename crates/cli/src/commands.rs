//! CLI subcommands: dataset generation, simulation, domain inspection and
//! the experiment battery.

use crate::args::Args;
use eta2_datasets::sfv::SfvConfig;
use eta2_datasets::survey::SurveyConfig;
use eta2_datasets::synthetic::SyntheticConfig;
use eta2_datasets::Dataset;
use eta2_sim::{train_embedding_for, ApproachKind, SimConfig, Simulation};

/// Usage text printed by `help` and on errors.
pub const USAGE: &str = "\
eta2-cli — ETA2 reproduction toolkit

USAGE:
  eta2-cli generate --dataset <synthetic|survey|sfv> [--seed N] [--out FILE]
  eta2-cli simulate --dataset <name|FILE.json> [--approach NAME] [--seeds N]
                    [--alpha F] [--gamma F] [--tau F] [--days N]
                    [--threads N]
                    [--fault-dropout F] [--fault-corrupt F]
                    [--fault-straggler F]
  eta2-cli domains  --dataset <survey|sfv|FILE.json> [--gamma F]
  eta2-cli bench    [<experiment-id>] [--threads N]
                    (default: all; ids: fig2 table1 fig4 fig5 fig6 fig7
                    fig8 fig9_10 fig11 fig12 table2 ablations fault_sweep)
  eta2-cli help

Approaches: eta2, eta2-mc, hubs, avglog, truthfinder, baseline, crh
            (default eta2)

Parallelism: --threads 0 (default) keeps the historical behavior — seed
  sweeps use one worker per core, the MLE runs sequentially; --threads 1
  is fully sequential; --threads N uses N workers for both the sweep and
  the MLE's per-domain shards. Results are bit-identical at any setting.
  (bench also honors ETA2_THREADS; ETA2_SEEDS / ETA2_FAST as before.)

Fault injection (simulate): --fault-dropout / --fault-corrupt /
  --fault-straggler take per-report rates in [0, 1]; faults are injected
  deterministically from the run seed and the run degrades instead of
  crashing.

Observability (any command):
  --trace FILE   write structured JSONL trace events to FILE
                 (or set ETA2_TRACE=FILE)
  --verbose      per-step progress detail
  --quiet        suppress all stdout chatter
";

/// Builds or loads the dataset named by `--dataset`.
fn resolve_dataset(args: &Args) -> Result<Dataset, String> {
    let name = args
        .get("dataset")
        .ok_or_else(|| "missing --dataset".to_string())?;
    let seed = args.get_parsed("seed", 0u64)?;
    match name {
        "synthetic" => Ok(SyntheticConfig::default().generate(seed)),
        "survey" => Ok(SurveyConfig::default().generate(seed)),
        "sfv" => Ok(SfvConfig::default().generate(seed)),
        path if path.ends_with(".json") => {
            eta2_datasets::io::load_dataset(path).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown dataset {other:?}")),
    }
}

fn resolve_approach(args: &Args) -> Result<ApproachKind, String> {
    match args.get("approach").unwrap_or("eta2") {
        "eta2" => Ok(ApproachKind::Eta2),
        "eta2-mc" | "mc" => Ok(ApproachKind::Eta2MinCost),
        "hubs" => Ok(ApproachKind::HubsAuthorities),
        "avglog" => Ok(ApproachKind::AverageLog),
        "truthfinder" => Ok(ApproachKind::TruthFinder),
        "baseline" => Ok(ApproachKind::Baseline),
        "crh" => Ok(ApproachKind::Crh),
        other => Err(format!("unknown approach {other:?}")),
    }
}

/// `generate` — write a dataset to JSON.
pub fn generate(args: &Args) -> Result<(), String> {
    let ds = resolve_dataset(args)?;
    let out = args
        .get("out")
        .map(String::from)
        .unwrap_or_else(|| format!("{}.json", ds.name));
    eta2_datasets::io::save_dataset(&ds, &out).map_err(|e| e.to_string())?;
    eta2_obs::progress!(
        "wrote {}: {} users, {} tasks, {} domains",
        out,
        ds.users.len(),
        ds.tasks.len(),
        ds.n_domains
    );
    Ok(())
}

/// `simulate` — run one approach and print per-day metrics.
pub fn simulate(args: &Args) -> Result<(), String> {
    let mut ds = resolve_dataset(args)?;
    let approach = resolve_approach(args)?;
    let seeds: u64 = args.get_parsed("seeds", 5u64)?;
    let faults = eta2_sim::FaultConfig {
        dropout_rate: args.get_parsed("fault-dropout", 0.0f64)?,
        corrupt_rate: args.get_parsed("fault-corrupt", 0.0f64)?,
        straggler_rate: args.get_parsed("fault-straggler", 0.0f64)?,
        ..eta2_sim::FaultConfig::default()
    };
    for (flag, rate) in [
        ("--fault-dropout", faults.dropout_rate),
        ("--fault-corrupt", faults.corrupt_rate),
        ("--fault-straggler", faults.straggler_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{flag} must be in [0, 1], got {rate}"));
        }
    }
    let config = SimConfig {
        alpha: args.get_parsed("alpha", SimConfig::default().alpha)?,
        gamma: args.get_parsed("gamma", SimConfig::default().gamma)?,
        days: args.get_parsed("days", SimConfig::default().days)?,
        threads: args.get_parsed("threads", 0usize)?,
        faults,
        ..SimConfig::default()
    };
    if let Some(tau) = args.get("tau") {
        use rand::SeedableRng;
        let tau: f64 = tau
            .parse()
            .map_err(|_| format!("invalid value for --tau: {tau:?}"))?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(args.get_parsed("seed", 0u64)?);
        ds.regenerate_capacities(tau, 4.0, &mut rng);
    }
    config.validate();

    let sim = Simulation::new(config);
    let embedding = train_embedding_for(&ds, sim.config()).map_err(|e| e.to_string())?;
    eta2_obs::detail!(
        "simulating {} on {} ({} users, {} tasks), {} seeds",
        approach.name(),
        ds.name,
        ds.users.len(),
        ds.tasks.len(),
        seeds
    );
    let avg = eta2_sim::sweep::average_over_seeds(
        &sim,
        approach,
        seeds,
        0,
        |_| ds.clone(),
        embedding.as_ref(),
    )
    .map_err(|e| e.to_string())?;
    for (d, e) in avg.daily_error.iter().enumerate() {
        eta2_obs::detail!("  day {}: error {e:.4}", d + 1);
    }
    eta2_obs::progress!("  overall error: {:.4}", avg.overall_error);
    eta2_obs::progress!("  total cost:    {:.1}", avg.total_cost);
    if let Some(ee) = avg.expertise_error {
        eta2_obs::progress!("  expertise MAE: {ee:.4}");
    }
    if faults.is_active() {
        eta2_obs::progress!(
            "  faults injected: {} ({} re-allocations, {} uncovered)",
            avg.faults_injected,
            avg.alloc_retries,
            avg.uncovered_tasks
        );
    }
    Ok(())
}

/// `domains` — run the §3 pipeline and print the discovered domains with a
/// few sample descriptions each.
pub fn domains(args: &Args) -> Result<(), String> {
    let ds = resolve_dataset(args)?;
    if ds.domains_known {
        return Err("dataset has pre-known domains; nothing to discover".into());
    }
    let config = SimConfig {
        gamma: args.get_parsed("gamma", SimConfig::default().gamma)?,
        ..SimConfig::default()
    };
    let embedding = train_embedding_for(&ds, &config)
        .map_err(|e| e.to_string())?
        .ok_or("dataset needs descriptions".to_string())?;
    let mut tracker = eta2_sim::pipeline::DomainTracker::new(&ds, Some(&embedding), &config)
        .map_err(|e| e.to_string())?;
    let all: Vec<usize> = (0..ds.tasks.len()).collect();
    let batch = tracker.identify(&ds, &all);

    let mut by_domain: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, d) in batch.domains.iter().enumerate() {
        by_domain.entry(d.0).or_default().push(i);
    }
    eta2_obs::progress!(
        "discovered {} domains over {} tasks (oracle: {}):",
        by_domain.len(),
        ds.tasks.len(),
        ds.n_domains
    );
    for (d, members) in &by_domain {
        eta2_obs::progress!("domain #{d} — {} tasks", members.len());
        for &i in members.iter().take(3) {
            eta2_obs::detail!("    {}", ds.tasks[i].description.as_deref().unwrap_or("?"));
        }
    }
    Ok(())
}

/// `bench` — run one experiment (or all of them).
pub fn bench(args: &Args) -> Result<(), String> {
    use eta2_bench::experiments as ex;
    let mut settings = eta2_bench::Settings::from_env();
    if args.get("threads").is_some() {
        settings.threads = args.get_parsed("threads", 0usize)?;
    }
    let runs: Vec<(&str, fn(&eta2_bench::Settings) -> serde_json::Value)> = vec![
        ("fig2", ex::fig2),
        ("table1", ex::table1),
        ("fig4", ex::fig4),
        ("fig5", ex::fig5),
        ("fig6", ex::fig6),
        ("fig7", ex::fig7),
        ("fig8", ex::fig8),
        ("fig9_10", ex::fig9_10),
        ("fig11", ex::fig11),
        ("fig12", ex::fig12),
        ("table2", ex::table2),
        ("ablations", ex::ablations),
        ("fault_sweep", ex::fault_sweep),
    ];
    match args.positional(1) {
        None => {
            for (id, f) in runs {
                let v = f(&settings);
                settings.write_json(id, &v);
            }
            Ok(())
        }
        Some(want) => {
            let (id, f) = runs
                .into_iter()
                .find(|(id, _)| *id == want)
                .ok_or_else(|| format!("unknown experiment {want:?}"))?;
            let v = f(&settings);
            settings.write_json(id, &v);
            Ok(())
        }
    }
}
