//! CLI subcommands: dataset generation, simulation, domain inspection and
//! the experiment battery.

use crate::args::Args;
use eta2_datasets::sfv::SfvConfig;
use eta2_datasets::survey::SurveyConfig;
use eta2_datasets::synthetic::SyntheticConfig;
use eta2_datasets::Dataset;
use eta2_sim::{train_embedding_for, ApproachKind, SimConfig, Simulation};

/// Usage text printed by `help` and on errors.
pub const USAGE: &str = "\
eta2-cli — ETA2 reproduction toolkit

USAGE:
  eta2-cli generate --dataset <synthetic|survey|sfv> [--seed N] [--out FILE]
  eta2-cli simulate --dataset <name|FILE.json> [--approach NAME] [--seeds N]
                    [--alpha F] [--gamma F] [--tau F] [--days N]
                    [--threads N]
                    [--fault-dropout F] [--fault-corrupt F]
                    [--fault-straggler F]
  eta2-cli domains  --dataset <survey|sfv|FILE.json> [--gamma F]
  eta2-cli bench    [<experiment-id>] [--threads N]
                    (default: all; ids: fig2 table1 fig4 fig5 fig6 fig7
                    fig8 fig9_10 fig11 fig12 table2 ablations fault_sweep)
  eta2-cli serve-bench [--producers N] [--shards N] [--batch N]
                    [--reports N] [--tasks N] [--domains N] [--users N]
                    [--threads N] [--seed N]
                    [--dirty-frac F] [--zipf S]
                    [--fault-dropout F] [--fault-corrupt F]
                    [--metrics-out FILE] [--metrics-json FILE]
                    [--wal-dir DIR] [--fsync per-record|per-batch|off]
  eta2-cli serve    --listen ADDR:PORT [--users N] [--tasks N]
                    [--domains N] [--shards N] [--batch N] [--threads N]
                    [--queue-cap N] [--tick-ms MS] [--max-conns N]
                    [--for-secs N]
  eta2-cli load-gen [--addr HOST:PORT] [--clients N] [--requests N]
                    [--connections N] [--batch N] [--tasks N]
                    [--domains N] [--read-every N] [--zipf S] [--rate R]
                    [--queue-cap N] [--tick-ms MS] [--seed N]
                    [--shed-retries N] [--max-backoff-ms MS] [--out FILE]
  eta2-cli top      (--replay FILE.jsonl [--follow] [--metrics FILE]
                     | --demo) [--interval MS] [--refreshes N]
  eta2-cli check    [--seeds N | --seed S | --corpus FILE] [--strict]
                    [--crash] [--scratch DIR] [--net-fuzz N]
  eta2-cli help

Approaches: eta2, eta2-mc, hubs, avglog, truthfinder, baseline, crh
            (default eta2)

Parallelism: --threads 0 (default) keeps the historical behavior — seed
  sweeps use one worker per core, the MLE runs sequentially; --threads 1
  is fully sequential; --threads N uses N workers for both the sweep and
  the MLE's per-domain shards. Results are bit-identical at any setting.
  (bench also honors ETA2_THREADS; ETA2_SEEDS / ETA2_FAST as before.)

Fault injection (simulate): --fault-dropout / --fault-corrupt /
  --fault-straggler take per-report rates in [0, 1]; faults are injected
  deterministically from the run seed and the run degrades instead of
  crashing.

serve-bench: stresses the concurrent serving engine — N producer threads
  (--producers, default 4) each submit --reports report batches into a
  --shards-sharded engine that flushes every --batch pending reports,
  while a reader thread samples epoch-snapshot reads concurrently. Prints
  throughput plus three separately-labeled latency distributions
  (p50/p99/max each): epoch-snapshot reads (us), enqueue-only submits
  (us, no flush crossed) and flush-crossing submits (ms, the MLE ran
  inline) — reads go through immutable epoch snapshots and never block
  on an in-flight flush, so conflating them with flush cost would hide
  exactly the property the engine exists to provide.
  --fault-dropout / --fault-corrupt inject faults at the same rates as
  simulate (corrupted values may go non-finite and exercise the engine's
  quarantine path). --metrics-out FILE writes the final metrics registry
  in Prometheus text exposition format; --metrics-json FILE writes the
  versioned JSON snapshot (feed it to `top --replay ... --metrics FILE`).
  Trace span ids derive from --seed, so two runs with the same seed and
  workload produce comparable causal traces. --dirty-frac F (default 1)
  confines producer traffic to the first ceil(F * domains) domains, so
  the engine's incremental flush path re-solves only that dirty subset;
  --zipf S (default 0 = uniform) skews task touches by rank weight
  1/r^S, concentrating updates on head tasks the way real collection
  rounds do. --wal-dir DIR runs the
  engine in durable mode: every accepted write is appended to a
  segmented, checksummed write-ahead log under DIR/wal before it is
  acked (--fsync picks the gating posture, default per-batch group
  commit), the run starts by recovering whatever checkpoint + log tail
  DIR already holds, and ends with a durable checkpoint that truncates
  the log.

serve: the wire-level front door — binds ADDR:PORT (port 0 picks an
  ephemeral port, printed on startup) and serves the versioned binary
  ETA2 protocol plus an HTTP/1.1 fallback (curl http://ADDR/healthz,
  /metrics, /truth/<id>) over a --shards-sharded engine with --users
  registered users and --tasks pre-domained tasks spread over --domains.
  Admission is bounded: ingest past --queue-cap pending reports is shed
  with a typed Overloaded{retry_after} response instead of queueing
  unboundedly, and a background ticker flushes every --tick-ms ms (0
  disables it; flushes then only happen at --batch boundaries).
  --for-secs N exits after N seconds (default 0 = run until killed).

load-gen: the wire-protocol load harness — issues --requests requests
  on behalf of --clients simulated clients (distinct user ids, default
  100000) multiplexed over --connections binary-protocol connections
  against --addr, or a self-hosted loopback server when --addr is
  omitted. Task popularity is Zipf(--zipf)-skewed and every
  --read-every-th request is a truth read instead of a submit. --rate R
  paces an open loop at R requests/s total and measures latency from
  each request's intended start time, so server-side queueing is
  charged as latency instead of hidden by coordinated omission. Shed
  (Overloaded) submits are counted separately and excluded from the
  ingest distribution. --out FILE writes the full p50/p99/p999 report
  as JSON (this is how BENCH_serve.json is produced).

top: a plain-text dashboard over the observability plane — ingest rate,
  queue depth, flush-latency percentiles, epoch age, quarantine counts
  and per-domain MLE convergence. --replay FILE.jsonl aggregates a
  --trace capture (add --follow to tail a growing file, --metrics FILE
  to merge a serve-bench --metrics-json snapshot); --demo drives an
  in-process engine and samples the live registry. Refreshes redraw in
  place on a terminal and print sequential frames when piped.

check: replays seeded differential-correctness scenarios — every op runs
  through the sharded-engine/sequential-twin, incremental/full-
  reconvergence (bit-compared), warm-started/cold (bounded divergence),
  MLE/reference and heap/scan oracle pairs with runtime invariants
  counted. The default
  replays the committed corpus (corpus/seeds.txt, override with
  --corpus FILE); --seeds N scans generated seeds 0..N; --seed S
  (decimal or 0x-hex) replays one scenario and, on failure, prints the
  shortest failing op prefix plus a ready-to-commit corpus line.
  --strict panics at the first invariant breach instead of counting.
  --crash switches to the durable-ingest kill-replay sweep: each seed's
  workload runs on a WAL-backed engine, the log is killed after every
  record boundary (plus a torn mid-record tail and a corrupted-checksum
  variant at each), and every kill point is recovered and bit-compared
  against an uninterrupted twin. --scratch DIR overrides the sweep's
  working directory (default: a per-process dir under the system tmp).
  --net-fuzz N instead drives N seeded adversarial frames through the
  wire codec (scribbled bytes, torn frames, oversized length prefixes,
  wrong protocol versions, trailing garbage, pure noise): every mutant
  must decode or be rejected with a typed error — a panic fails the run.

Observability (any command):
  --trace FILE   write structured JSONL trace events to FILE
                 (or set ETA2_TRACE=FILE)
  --verbose      per-step progress detail
  --quiet        suppress all stdout chatter
  ETA2_FLIGHT_DIR=DIR  arm the flight recorder: a ring of recent events
                 (ETA2_FLIGHT_CAP, default 1024) is dumped to DIR as
                 flight-<pid>-<n>.jsonl on invariant breach or panic

Correctness (any command): set ETA2_CHECK=1 (count) or ETA2_CHECK=panic
  to enable the eta2-check runtime invariant registry alongside any run,
  exactly like ETA2_TRACE enables tracing.
";

/// Builds or loads the dataset named by `--dataset`.
fn resolve_dataset(args: &Args) -> Result<Dataset, String> {
    let name = args
        .get("dataset")
        .ok_or_else(|| "missing --dataset".to_string())?;
    let seed = args.get_parsed("seed", 0u64)?;
    match name {
        "synthetic" => Ok(SyntheticConfig::default().generate(seed)),
        "survey" => Ok(SurveyConfig::default().generate(seed)),
        "sfv" => Ok(SfvConfig::default().generate(seed)),
        path if path.ends_with(".json") => {
            eta2_datasets::io::load_dataset(path).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown dataset {other:?}")),
    }
}

fn resolve_approach(args: &Args) -> Result<ApproachKind, String> {
    match args.get("approach").unwrap_or("eta2") {
        "eta2" => Ok(ApproachKind::Eta2),
        "eta2-mc" | "mc" => Ok(ApproachKind::Eta2MinCost),
        "hubs" => Ok(ApproachKind::HubsAuthorities),
        "avglog" => Ok(ApproachKind::AverageLog),
        "truthfinder" => Ok(ApproachKind::TruthFinder),
        "baseline" => Ok(ApproachKind::Baseline),
        "crh" => Ok(ApproachKind::Crh),
        other => Err(format!("unknown approach {other:?}")),
    }
}

/// `generate` — write a dataset to JSON.
pub fn generate(args: &Args) -> Result<(), String> {
    let ds = resolve_dataset(args)?;
    let out = args
        .get("out")
        .map(String::from)
        .unwrap_or_else(|| format!("{}.json", ds.name));
    eta2_datasets::io::save_dataset(&ds, &out).map_err(|e| e.to_string())?;
    eta2_obs::progress!(
        "wrote {}: {} users, {} tasks, {} domains",
        out,
        ds.users.len(),
        ds.tasks.len(),
        ds.n_domains
    );
    Ok(())
}

/// `simulate` — run one approach and print per-day metrics.
pub fn simulate(args: &Args) -> Result<(), String> {
    let mut ds = resolve_dataset(args)?;
    let approach = resolve_approach(args)?;
    let seeds: u64 = args.get_parsed("seeds", 5u64)?;
    let faults = eta2_sim::FaultConfig {
        dropout_rate: args.get_parsed("fault-dropout", 0.0f64)?,
        corrupt_rate: args.get_parsed("fault-corrupt", 0.0f64)?,
        straggler_rate: args.get_parsed("fault-straggler", 0.0f64)?,
        ..eta2_sim::FaultConfig::default()
    };
    for (flag, rate) in [
        ("--fault-dropout", faults.dropout_rate),
        ("--fault-corrupt", faults.corrupt_rate),
        ("--fault-straggler", faults.straggler_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{flag} must be in [0, 1], got {rate}"));
        }
    }
    let config = SimConfig {
        alpha: args.get_parsed("alpha", SimConfig::default().alpha)?,
        gamma: args.get_parsed("gamma", SimConfig::default().gamma)?,
        days: args.get_parsed("days", SimConfig::default().days)?,
        threads: args.get_parsed("threads", 0usize)?,
        faults,
        ..SimConfig::default()
    };
    if let Some(tau) = args.get("tau") {
        use rand::SeedableRng;
        let tau: f64 = tau
            .parse()
            .map_err(|_| format!("invalid value for --tau: {tau:?}"))?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(args.get_parsed("seed", 0u64)?);
        ds.regenerate_capacities(tau, 4.0, &mut rng);
    }
    config.validate();

    let sim = Simulation::new(config);
    let embedding = train_embedding_for(&ds, sim.config()).map_err(|e| e.to_string())?;
    eta2_obs::detail!(
        "simulating {} on {} ({} users, {} tasks), {} seeds",
        approach.name(),
        ds.name,
        ds.users.len(),
        ds.tasks.len(),
        seeds
    );
    let avg = eta2_sim::sweep::average_over_seeds(
        &sim,
        approach,
        seeds,
        0,
        |_| ds.clone(),
        embedding.as_ref(),
    )
    .map_err(|e| e.to_string())?;
    for (d, e) in avg.daily_error.iter().enumerate() {
        eta2_obs::detail!("  day {}: error {e:.4}", d + 1);
    }
    eta2_obs::progress!("  overall error: {:.4}", avg.overall_error);
    eta2_obs::progress!("  total cost:    {:.1}", avg.total_cost);
    if let Some(ee) = avg.expertise_error {
        eta2_obs::progress!("  expertise MAE: {ee:.4}");
    }
    if faults.is_active() {
        eta2_obs::progress!(
            "  faults injected: {} ({} re-allocations, {} uncovered)",
            avg.faults_injected,
            avg.alloc_retries,
            avg.uncovered_tasks
        );
    }
    Ok(())
}

/// `domains` — run the §3 pipeline and print the discovered domains with a
/// few sample descriptions each.
pub fn domains(args: &Args) -> Result<(), String> {
    let ds = resolve_dataset(args)?;
    if ds.domains_known {
        return Err("dataset has pre-known domains; nothing to discover".into());
    }
    let config = SimConfig {
        gamma: args.get_parsed("gamma", SimConfig::default().gamma)?,
        ..SimConfig::default()
    };
    let embedding = train_embedding_for(&ds, &config)
        .map_err(|e| e.to_string())?
        .ok_or("dataset needs descriptions".to_string())?;
    let mut tracker = eta2_sim::pipeline::DomainTracker::new(&ds, Some(&embedding), &config)
        .map_err(|e| e.to_string())?;
    let all: Vec<usize> = (0..ds.tasks.len()).collect();
    let batch = tracker.identify(&ds, &all);

    let mut by_domain: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, d) in batch.domains.iter().enumerate() {
        by_domain.entry(d.0).or_default().push(i);
    }
    eta2_obs::progress!(
        "discovered {} domains over {} tasks (oracle: {}):",
        by_domain.len(),
        ds.tasks.len(),
        ds.n_domains
    );
    for (d, members) in &by_domain {
        eta2_obs::progress!("domain #{d} — {} tasks", members.len());
        for &i in members.iter().take(3) {
            eta2_obs::detail!("    {}", ds.tasks[i].description.as_deref().unwrap_or("?"));
        }
    }
    Ok(())
}

/// `bench` — run one experiment (or all of them).
pub fn bench(args: &Args) -> Result<(), String> {
    use eta2_bench::experiments as ex;
    let mut settings = eta2_bench::Settings::from_env();
    if args.get("threads").is_some() {
        settings.threads = args.get_parsed("threads", 0usize)?;
    }
    let runs: Vec<(&str, fn(&eta2_bench::Settings) -> serde_json::Value)> = vec![
        ("fig2", ex::fig2),
        ("table1", ex::table1),
        ("fig4", ex::fig4),
        ("fig5", ex::fig5),
        ("fig6", ex::fig6),
        ("fig7", ex::fig7),
        ("fig8", ex::fig8),
        ("fig9_10", ex::fig9_10),
        ("fig11", ex::fig11),
        ("fig12", ex::fig12),
        ("table2", ex::table2),
        ("ablations", ex::ablations),
        ("fault_sweep", ex::fault_sweep),
    ];
    match args.positional(1) {
        None => {
            for (id, f) in runs {
                let v = f(&settings);
                settings.write_json(id, &v);
            }
            Ok(())
        }
        Some(want) => {
            let (id, f) = runs
                .into_iter()
                .find(|(id, _)| *id == want)
                .ok_or_else(|| format!("unknown experiment {want:?}"))?;
            let v = f(&settings);
            settings.write_json(id, &v);
            Ok(())
        }
    }
}

/// `serve-bench` — stress the concurrent serving engine: N producer
/// threads submit fault-injected report batches while a reader thread
/// samples epoch-snapshot reads; prints throughput, flush-duration and
/// read-latency statistics.
pub fn serve_bench(args: &Args) -> Result<(), String> {
    use eta2_core::model::{DomainId, ObservationSet, UserId};
    use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
    use eta2_sim::{FaultAction, FaultConfig, FaultPlan};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Instant;

    let producers: usize = args.get_parsed("producers", 4usize)?;
    let reports: u64 = args.get_parsed("reports", 200u64)?;
    let n_tasks: u32 = args.get_parsed("tasks", 64u32)?;
    let n_domains: u32 = args.get_parsed("domains", 16u32)?;
    let seed: u64 = args.get_parsed("seed", 0u64)?;
    if producers == 0 {
        return Err("--producers must be at least 1".into());
    }
    if n_tasks == 0 || n_domains == 0 {
        return Err("--tasks and --domains must be at least 1".into());
    }
    let dirty_frac: f64 = args.get_parsed("dirty-frac", 1.0f64)?;
    if !(dirty_frac > 0.0 && dirty_frac <= 1.0) {
        return Err(format!("--dirty-frac must be in (0, 1], got {dirty_frac}"));
    }
    let zipf_s: f64 = args.get_parsed("zipf", 0.0f64)?;
    if !zipf_s.is_finite() || zipf_s < 0.0 {
        return Err(format!("--zipf must be a finite skew >= 0, got {zipf_s}"));
    }
    let faults = FaultConfig {
        dropout_rate: args.get_parsed("fault-dropout", 0.0f64)?,
        corrupt_rate: args.get_parsed("fault-corrupt", 0.0f64)?,
        ..FaultConfig::default()
    };
    for (flag, rate) in [
        ("--fault-dropout", faults.dropout_rate),
        ("--fault-corrupt", faults.corrupt_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{flag} must be in [0, 1], got {rate}"));
        }
    }

    let mut cfg = ServeConfig::default();
    cfg.n_users = args.get_parsed("users", 32usize)?;
    cfg.n_shards = args.get_parsed("shards", 8usize)?;
    cfg.batch_capacity = args.get_parsed("batch", 64usize)?;
    cfg.threads = args.get_parsed("threads", 0usize)?;
    cfg.validate();
    if cfg.n_users == 0 {
        return Err("--users must be at least 1".into());
    }

    // Metrics exposition needs the registry recording even when no
    // --trace sink enabled it; trace span ids derive from the workload
    // seed so replayed runs produce comparable causal traces.
    let metrics_out = args.get("metrics-out").map(String::from);
    let metrics_json = args.get("metrics-json").map(String::from);
    if metrics_out.is_some() || metrics_json.is_some() {
        eta2_obs::set_metrics(true);
    }
    eta2_obs::trace::seed_ids(seed);

    let durable_root = args.get("wal-dir").map(std::path::PathBuf::from);
    if args.has("fsync") && durable_root.is_none() {
        return Err("--fsync requires --wal-dir".into());
    }
    let engine = if let Some(root) = &durable_root {
        let raw = args.get("fsync").unwrap_or("per-batch");
        let fsync = eta2::wal::FsyncPolicy::parse(raw).ok_or_else(|| {
            format!("invalid value for --fsync: {raw:?} (expected per-record, per-batch or off)")
        })?;
        let mut wal_cfg = eta2::wal::WalConfig::new(root.join("wal"));
        wal_cfg.fsync = fsync;
        let (engine, recovered) = ServeEngine::recover(cfg, &root.join("checkpoints"), wal_cfg)
            .map_err(|e| e.to_string())?;
        eta2_obs::progress!(
            "serve-bench: durable mode in {} ({raw} fsync): recovered to wal position {} \
             ({} log record(s) replayed on top of {}, {} torn byte(s) dropped)",
            root.display(),
            recovered.checkpoint_position + recovered.records_replayed,
            recovered.records_replayed,
            recovered
                .checkpoint_path
                .as_ref()
                .map_or("an empty state".to_string(), |p| p.display().to_string()),
            recovered.torn_bytes,
        );
        engine
    } else {
        ServeEngine::new(cfg)
    };
    let specs: Vec<TaskSpec> = (0..n_tasks)
        .map(|j| TaskSpec::new(DomainId(j % n_domains), 1.0, 1.0))
        .collect();
    let ids = engine.register_tasks(&specs).map_err(|e| e.to_string())?;
    let plan = FaultPlan::new(faults, seed);

    // Producer traffic only ever touches the "hot" pool: the tasks whose
    // domain index falls below ceil(--dirty-frac * --domains). At the
    // default fraction of 1 that is every task (the historical uniform
    // workload); smaller fractions leave the remaining domains untouched
    // so the incremental flush path re-solves only the dirty subset.
    let dirty_domains = ((n_domains as f64 * dirty_frac).ceil() as u32).clamp(1, n_domains);
    let hot: Vec<_> = (0..n_tasks as usize)
        .filter(|j| (*j as u32) % n_domains < dirty_domains)
        .map(|j| ids[j])
        .collect();
    // Zipf touch skew without an external sampler: rank r (0-based) gets
    // weight 1/(r+1)^s, and a binary search over the cumulative table
    // turns one splitmix64 draw into a rank. s = 0 degenerates to the
    // uniform pick this bench always used.
    let cumw: Vec<f64> = {
        let mut acc = 0.0;
        hot.iter()
            .enumerate()
            .map(|(r, _)| {
                acc += 1.0 / ((r + 1) as f64).powf(zipf_s);
                acc
            })
            .collect()
    };
    let total_w = *cumw.last().expect("hot pool is never empty");

    // splitmix64 finalizer: deterministic per-(producer, report) values.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    let done = AtomicBool::new(false);
    let submitted = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let delayed = AtomicU64::new(0);
    let snapshot_reads = AtomicU64::new(0);
    // Submit latency is two different populations: a submit that stays
    // under the batch threshold only appends to a shard queue, while one
    // that crosses it runs the MLE inline. Recording them separately (and
    // separately from snapshot reads) keeps each distribution honest.
    let mut read_ns: Vec<u64> = Vec::new();
    let mut enqueue_ns: Vec<u64> = Vec::new();
    let mut flush_ns: Vec<u64> = Vec::new();
    let wall = Instant::now();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let (engine, plan, hot, cumw) = (&engine, &plan, &hot, &cumw);
                let (submitted, dropped, delayed) = (&submitted, &dropped, &delayed);
                s.spawn(move || {
                    let mut enqueue_ns: Vec<u64> = Vec::with_capacity(reports as usize);
                    let mut flush_ns: Vec<u64> = Vec::new();
                    for r in 0..reports {
                        // One submit per "collection round": a handful of
                        // reports from this producer's user cohort.
                        let mut obs = ObservationSet::new();
                        for k in 0..8u64 {
                            let h = mix(seed ^ mix(p as u64) ^ mix(r) ^ k);
                            // 53 high bits -> uniform in [0, total_w), then
                            // rank by cumulative-weight binary search.
                            let u = (h >> 11) as f64 / (1u64 << 53) as f64 * total_w;
                            let task = hot[cumw.partition_point(|&c| c <= u).min(hot.len() - 1)];
                            let user = UserId((mix(h) % engine.config().n_users as u64) as u32);
                            let clean = 10.0 + (task.0 % 7) as f64 + (h % 100) as f64 * 0.01;
                            match plan.apply(r as usize, user, task, clean).0 {
                                FaultAction::Deliver(v) => {
                                    obs.insert(user, task, v);
                                }
                                FaultAction::Drop => {
                                    dropped.fetch_add(1, Ordering::Relaxed);
                                }
                                FaultAction::Delay { .. } => {
                                    delayed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        let t0 = Instant::now();
                        let receipt = engine.submit(&obs);
                        let dt = t0.elapsed().as_nanos() as u64;
                        if receipt.flushes.is_empty() {
                            enqueue_ns.push(dt);
                        } else {
                            // This submit crossed the batch threshold and
                            // ran the MLE inline: these calls bound how
                            // long a flush holds a shard lock.
                            flush_ns.push(dt);
                        }
                        submitted.fetch_add(receipt.accepted as u64, Ordering::Relaxed);
                    }
                    (enqueue_ns, flush_ns)
                })
            })
            .collect();

        // The reader races the producers: every read goes through an
        // immutable epoch snapshot, so its latency stays flat even while
        // flushes are running.
        let reader = s.spawn(|| {
            let mut last_epoch = 0u64;
            let mut n = 0u64;
            let mut read_ns: Vec<u64> = Vec::new();
            while !done.load(Ordering::Acquire) {
                let t0 = Instant::now();
                let snap = engine.snapshot();
                let _ = snap.truth(ids[(n % ids.len() as u64) as usize]);
                read_ns.push(t0.elapsed().as_nanos() as u64);
                assert!(
                    snap.epoch() >= last_epoch,
                    "epoch went backwards: {} -> {}",
                    last_epoch,
                    snap.epoch()
                );
                last_epoch = snap.epoch();
                if n % 64 == 0 {
                    snap.validate().expect("torn epoch observed");
                }
                n += 1;
                std::thread::yield_now();
            }
            (n, read_ns)
        });

        for h in handles {
            let (e, f) = h.join().expect("producer panicked");
            enqueue_ns.extend(e);
            flush_ns.extend(f);
        }
        done.store(true, Ordering::Release);
        let (n, r) = reader.join().expect("reader panicked");
        snapshot_reads.store(n, Ordering::Relaxed);
        read_ns = r;
    });

    // Fold any sub-batch remainder through a final epoch flush.
    engine.tick();
    let elapsed = wall.elapsed();
    let snap = engine.snapshot();
    snap.validate()
        .map_err(|e| format!("final snapshot invalid: {e}"))?;

    eta2_obs::progress!(
        "serve-bench: {} producers x {} rounds over {} tasks / {} domains / {} shards",
        producers,
        reports,
        n_tasks,
        n_domains,
        engine.config().n_shards
    );
    if dirty_frac < 1.0 || zipf_s > 0.0 {
        eta2_obs::progress!(
            "  touch distribution: {} of {} domains hot ({} of {} tasks, \
             --dirty-frac {dirty_frac}), zipf skew s = {zipf_s}",
            dirty_domains,
            n_domains,
            hot.len(),
            n_tasks
        );
    }
    eta2_obs::progress!(
        "  accepted {} reports in {:.2}s ({:.0} reports/s), dropped {}, delayed {}",
        submitted.load(Ordering::Relaxed),
        elapsed.as_secs_f64(),
        submitted.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64().max(1e-9),
        dropped.load(Ordering::Relaxed),
        delayed.load(Ordering::Relaxed)
    );
    eta2_obs::progress!(
        "  epochs published: {}, truths: {}, shard flushes: {:?}",
        snap.epoch(),
        snap.truth_count(),
        snap.shard_flushes()
    );
    match percentiles_ns(&mut read_ns) {
        Some((p50, p99, max)) => eta2_obs::progress!(
            "  snapshot-read latency: p50/p99/max = {:.1}/{:.1}/{:.1} us \
             over {} concurrent reads",
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            max as f64 / 1e3,
            snapshot_reads.load(Ordering::Relaxed)
        ),
        None => eta2_obs::progress!("  snapshot-read latency: no reads sampled"),
    }
    match percentiles_ns(&mut enqueue_ns) {
        Some((p50, p99, max)) => eta2_obs::progress!(
            "  submit latency (enqueue-only, no flush crossed): \
             p50/p99/max = {:.1}/{:.1}/{:.1} us over {} calls",
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            max as f64 / 1e3,
            enqueue_ns.len()
        ),
        None => eta2_obs::progress!("  submit latency (enqueue-only): no calls stayed sub-batch"),
    }
    match percentiles_ns(&mut flush_ns) {
        Some((p50, p99, max)) => eta2_obs::progress!(
            "  submit latency (flush-crossing, MLE ran inline): \
             p50/p99/max = {:.3}/{:.3}/{:.3} ms over {} calls",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6,
            max as f64 / 1e6,
            flush_ns.len()
        ),
        None => eta2_obs::progress!("  submit latency (flush-crossing): no submit crossed a flush"),
    }
    if let Some(root) = &durable_root {
        let path = engine
            .checkpoint_durable(&root.join("checkpoints"))
            .map_err(|e| e.to_string())?;
        eta2_obs::progress!(
            "  durable checkpoint written to {} (log truncated behind it)",
            path.display()
        );
    }
    if let Some(path) = &metrics_out {
        eta2_bench::harness::write_output(path, eta2_obs::expose_prometheus())?;
        eta2_obs::progress!("  wrote Prometheus metrics to {path}");
    }
    if let Some(path) = &metrics_json {
        eta2_bench::harness::write_output(path, eta2_obs::expose_json())?;
        eta2_obs::progress!("  wrote JSON metrics snapshot to {path}");
    }
    Ok(())
}

/// Sorts a nanosecond latency sample in place and returns
/// `(p50, p99, max)`, or `None` for an empty sample.
fn percentiles_ns(ns: &mut [u64]) -> Option<(u64, u64, u64)> {
    if ns.is_empty() {
        return None;
    }
    ns.sort_unstable();
    let n = ns.len();
    let pct = |q: f64| ns[(((n - 1) as f64) * q).round() as usize];
    Some((pct(0.50), pct(0.99), ns[n - 1]))
}

/// `serve` — the wire-level front door: bind a TCP listener and serve the
/// versioned binary protocol (plus the HTTP/1.1 fallback) over a fresh
/// engine with bounded admission.
pub fn serve(args: &Args) -> Result<(), String> {
    use eta2::net::{NetConfig, NetServer};
    use eta2_core::model::DomainId;
    use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
    use std::sync::Arc;

    let listen = args
        .get("listen")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| "missing --listen ADDR:PORT (e.g. --listen 127.0.0.1:4980)".to_string())?;
    let n_tasks: u32 = args.get_parsed("tasks", 64u32)?;
    let n_domains: u32 = args.get_parsed("domains", 16u32)?;
    if n_domains == 0 {
        return Err("--domains must be at least 1".into());
    }
    let mut cfg = ServeConfig::default();
    cfg.n_users = args.get_parsed("users", 1024usize)?;
    cfg.n_shards = args.get_parsed("shards", 8usize)?;
    cfg.batch_capacity = args.get_parsed("batch", 256usize)?;
    cfg.threads = args.get_parsed("threads", 0usize)?;
    cfg.validate();
    if cfg.n_users == 0 {
        return Err("--users must be at least 1".into());
    }

    let engine = Arc::new(ServeEngine::new(cfg));
    if n_tasks > 0 {
        let specs: Vec<TaskSpec> = (0..n_tasks)
            .map(|j| TaskSpec::new(DomainId(j % n_domains), 1.0, 1.0))
            .collect();
        engine.register_tasks(&specs).map_err(|e| e.to_string())?;
    }

    let mut net = NetConfig::default();
    net.max_connections = args.get_parsed("max-conns", net.max_connections)?;
    net.queue_capacity = args.get_parsed("queue-cap", net.queue_capacity)?;
    net.retry_after_ms = args.get_parsed("retry-after-ms", net.retry_after_ms)?;
    net.tick_ms = args.get_parsed("tick-ms", net.tick_ms)?;
    let server = NetServer::serve(engine, listen, net)
        .map_err(|e| format!("cannot serve on {listen}: {e}"))?;
    let addr = server.local_addr();
    eta2_obs::progress!(
        "serving the ETA2 wire protocol on {addr} \
         ({n_tasks} pre-registered task(s); try: curl http://{addr}/healthz)"
    );

    let for_secs: u64 = args.get_parsed("for-secs", 0u64)?;
    if for_secs > 0 {
        std::thread::sleep(std::time::Duration::from_secs(for_secs));
        server.shutdown();
        eta2_obs::progress!("serve: --for-secs {for_secs} elapsed, shut down cleanly");
        Ok(())
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
}

/// `load-gen` — drive a front door (self-hosted by default) with the
/// open-loop wire-protocol load harness and print/write the latency
/// report.
pub fn load_gen(args: &Args) -> Result<(), String> {
    use eta2_bench::loadgen::{run, LoadGenConfig};

    let defaults = LoadGenConfig::default();
    let cfg = LoadGenConfig {
        addr: args.get("addr").filter(|a| !a.is_empty()).map(String::from),
        clients: args.get_parsed("clients", defaults.clients)?,
        requests: args.get_parsed("requests", defaults.requests)?,
        connections: args.get_parsed("connections", defaults.connections)?,
        batch: args.get_parsed("batch", defaults.batch)?,
        tasks: args.get_parsed("tasks", defaults.tasks)?,
        domains: args.get_parsed("domains", defaults.domains)?,
        read_every: args.get_parsed("read-every", defaults.read_every)?,
        zipf_s: args.get_parsed("zipf", defaults.zipf_s)?,
        rate: match args.get("rate") {
            None | Some("") => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --rate: {v:?}"))?,
            ),
        },
        queue_capacity: args.get_parsed("queue-cap", defaults.queue_capacity)?,
        tick_ms: args.get_parsed("tick-ms", defaults.tick_ms)?,
        seed: args.get_parsed("seed", defaults.seed)?,
        shed_retries: args.get_parsed("shed-retries", defaults.shed_retries)?,
        max_backoff_ms: args.get_parsed("max-backoff-ms", defaults.max_backoff_ms)?,
    };
    if !cfg.zipf_s.is_finite() || cfg.zipf_s < 0.0 {
        return Err(format!(
            "--zipf must be a finite skew >= 0, got {}",
            cfg.zipf_s
        ));
    }
    if let Some(r) = cfg.rate {
        if !(r.is_finite() && r > 0.0) {
            return Err(format!("--rate must be finite and positive, got {r}"));
        }
    }

    let out = args.get("out").filter(|p| !p.is_empty());
    let report = run(&cfg, out)?;
    eta2_obs::progress!(
        "load-gen: {} requests from {} simulated clients over {} connections -> {}",
        report.requests,
        report.clients,
        report.connections,
        report.target
    );
    eta2_obs::progress!(
        "  {:.2}s wall, {:.0} req/s: {} submits ok ({} reports), {} shed \
         ({} backoffs), {} reads ok, {} errors",
        report.elapsed_secs,
        report.throughput_rps,
        report.submits_ok,
        report.reports_accepted,
        report.shed,
        report.backoffs,
        report.reads_ok,
        report.errors
    );
    if let Some(l) = &report.ingest_latency {
        eta2_obs::progress!(
            "  ingest latency: p50/p99/p999/max = {}/{}/{}/{} us over {} submits",
            l.p50_us,
            l.p99_us,
            l.p999_us,
            l.max_us,
            l.count
        );
    }
    if let Some(l) = &report.read_latency {
        eta2_obs::progress!(
            "  read latency:   p50/p99/p999/max = {}/{}/{}/{} us over {} reads",
            l.p50_us,
            l.p99_us,
            l.p999_us,
            l.max_us,
            l.count
        );
    }
    if let Some(path) = out {
        eta2_obs::progress!("  wrote load report to {path}");
    }
    if report.errors > 0 {
        return Err(format!(
            "{} request(s) answered with typed errors",
            report.errors
        ));
    }
    Ok(())
}

/// Parses a seed in decimal or `0x`-hex, matching the corpus format.
fn parse_seed(raw: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse::<u64>()
    };
    parsed.map_err(|e| format!("cannot parse seed {raw:?}: {e}"))
}

/// `check` — replay differential correctness scenarios.
pub fn check(args: &Args) -> Result<(), String> {
    use eta2::check;

    // --net-fuzz: the protocol half of the harness — seeded adversarial
    // frames through the wire codec instead of differential scenarios.
    // A panic anywhere in the decoder aborts the run; typed rejection is
    // the expected outcome for most mutants.
    if args.has("net-fuzz") {
        let iterations: u64 = match args.get("net-fuzz") {
            None | Some("") => 10_000,
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --net-fuzz: {v:?}"))?,
        };
        let seed = match args.get("seed") {
            Some(raw) => parse_seed(raw)?,
            None => 0xE7A2,
        };
        let report = eta2::net::fuzz::fuzz_decoder(seed, iterations);
        eta2_obs::progress!(
            "net-fuzz: {} mutant frame(s), seed {seed:#x}: {} decoded, \
             {} rejected with typed errors, 0 panics",
            report.iterations,
            report.decoded_ok,
            report.rejected
        );
        return Ok(());
    }

    // Count mode reports every breach with its seed attached; --strict
    // aborts at the first breach instead (same switch CI's strict build
    // flips at compile time via the `strict` cargo feature).
    if args.has("strict") {
        check::gate::set_mode(check::gate::Mode::Panic);
    } else {
        check::gate::set_mode(check::gate::Mode::Count);
    }

    let (seeds, source): (Vec<u64>, String) = if let Some(raw) = args.get("seed") {
        let seed = parse_seed(raw)?;
        (vec![seed], format!("seed {seed:#x}"))
    } else if args.get("seeds").is_some() {
        let n: u64 = args.get_parsed("seeds", 64u64)?;
        ((0..n).collect(), format!("seeds 0..{n}"))
    } else {
        let path = args.get("corpus").unwrap_or("corpus/seeds.txt");
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read corpus {path}: {e}"))?;
        let corpus = check::gate::corpus::parse(&text)?;
        if !corpus.duplicates.is_empty() {
            eta2_obs::progress!("warning: duplicate corpus seeds: {:?}", corpus.duplicates);
        }
        (corpus.seeds, format!("corpus {path}"))
    };

    if args.has("crash") {
        return check_crash(args, &seeds, &source);
    }

    let mut failed = 0usize;
    for &seed in &seeds {
        let outcome = check::run_seed(seed);
        if outcome.passed() {
            eta2_obs::detail!("seed {:#x}: ok ({} ops)", seed, outcome.ops_run);
            continue;
        }
        failed += 1;
        match &outcome.divergence {
            Some(d) => eta2_obs::progress!("FAIL {d}"),
            None => eta2_obs::progress!(
                "FAIL seed {:#x}: {} invariant breach(es)",
                seed,
                outcome.new_breaches
            ),
        }
        for b in check::gate::breaches() {
            eta2_obs::progress!("  breach [{}] {}", b.name, b.detail);
        }
        check::gate::reset_breaches();
        // Shrink to the shortest failing op prefix and hand the user a
        // line ready to append to corpus/seeds.txt.
        let full = check::gate::scenario::Scenario::generate(seed);
        let minimized = check::minimize(&full);
        check::gate::reset_breaches();
        let pair = outcome
            .divergence
            .as_ref()
            .map_or("invariant breach", |d| d.pair);
        eta2_obs::progress!(
            "  minimized: fails within the first {} of {} ops",
            minimized.ops.len(),
            full.ops.len()
        );
        eta2_obs::progress!(
            "  corpus line: {}",
            check::gate::corpus::entry_line(seed, &format!("{pair} regression")).trim_end()
        );
    }
    if failed > 0 {
        return Err(format!(
            "{failed}/{} scenario(s) failed ({source})",
            seeds.len()
        ));
    }
    eta2_obs::progress!("{} scenario(s) replayed clean ({source})", seeds.len());
    Ok(())
}

/// `check --crash` — the durable-ingest kill-replay sweep: every seed's
/// workload runs on a WAL-backed engine and every kill point (each record
/// boundary, plus torn-tail and corrupted-checksum variants of each
/// record) is recovered and bit-compared against an uninterrupted twin.
fn check_crash(args: &Args, seeds: &[u64], source: &str) -> Result<(), String> {
    use eta2::check::crash;

    let scratch = match args.get("scratch") {
        Some("") => return Err("--scratch requires a directory path".into()),
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::temp_dir().join(format!("eta2-crash-{}", std::process::id())),
    };
    let mut failed = 0usize;
    let mut kill_points = 0usize;
    for &seed in seeds {
        let report =
            crash::run_crash_seed(seed, &scratch).map_err(|e| format!("seed {seed:#x}: {e}"))?;
        kill_points += report.kill_points;
        if report.passed() {
            eta2_obs::detail!(
                "seed {:#x}: ok ({} ops, {} kill point(s) recovered)",
                seed,
                report.ops,
                report.kill_points
            );
            continue;
        }
        failed += 1;
        eta2_obs::progress!(
            "FAIL seed {:#x}: {} of {} kill point(s) diverged from the twin",
            seed,
            report.failures.len(),
            report.kill_points
        );
        for f in &report.failures {
            eta2_obs::progress!("  {f}");
        }
    }
    if failed > 0 {
        return Err(format!(
            "{failed}/{} crash sweep(s) failed ({source})",
            seeds.len()
        ));
    }
    eta2_obs::progress!(
        "{} crash sweep(s) recovered clean at {kill_points} kill point(s) ({source})",
        seeds.len()
    );
    Ok(())
}
