//! End-to-end tests of the `eta2-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eta2-cli"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("eta2_cli_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
}

#[test]
fn no_args_prints_usage_successfully() {
    let out = cli().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn generate_writes_loadable_dataset() {
    let path = temp_dir().join("cli_synthetic.json");
    let out = cli()
        .args([
            "generate",
            "--dataset",
            "synthetic",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let ds = eta2_datasets::io::load_dataset(&path).unwrap();
    assert_eq!(ds.name, "synthetic");
    assert_eq!(ds.users.len(), 100);
    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_requires_dataset_flag() {
    let out = cli().arg("generate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("missing --dataset"));
}

#[test]
fn simulate_runs_on_generated_file() {
    let path = temp_dir().join("cli_sim_input.json");
    // A small dataset so the debug-build simulation is quick.
    let ds = eta2_datasets::synthetic::SyntheticConfig {
        n_users: 10,
        n_tasks: 30,
        n_domains: 2,
        ..eta2_datasets::synthetic::SyntheticConfig::default()
    }
    .generate(0);
    eta2_datasets::io::save_dataset(&ds, &path).unwrap();

    let out = cli()
        .args([
            "simulate",
            "--dataset",
            path.to_str().unwrap(),
            "--approach",
            "baseline",
            "--seeds",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("overall error"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_rejects_unknown_approach() {
    let out = cli()
        .args(["simulate", "--dataset", "synthetic", "--approach", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown approach"));
}
