//! End-to-end tests of the `eta2-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eta2-cli"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("eta2_cli_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
}

#[test]
fn no_args_prints_usage_successfully() {
    let out = cli().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn generate_writes_loadable_dataset() {
    let path = temp_dir().join("cli_synthetic.json");
    let out = cli()
        .args([
            "generate",
            "--dataset",
            "synthetic",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ds = eta2_datasets::io::load_dataset(&path).unwrap();
    assert_eq!(ds.name, "synthetic");
    assert_eq!(ds.users.len(), 100);
    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_requires_dataset_flag() {
    let out = cli().arg("generate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("missing --dataset"));
}

#[test]
fn simulate_runs_on_generated_file() {
    let path = temp_dir().join("cli_sim_input.json");
    // A small dataset so the debug-build simulation is quick.
    let ds = eta2_datasets::synthetic::SyntheticConfig {
        n_users: 10,
        n_tasks: 30,
        n_domains: 2,
        ..eta2_datasets::synthetic::SyntheticConfig::default()
    }
    .generate(0);
    eta2_datasets::io::save_dataset(&ds, &path).unwrap();

    let out = cli()
        .args([
            "simulate",
            "--dataset",
            path.to_str().unwrap(),
            "--approach",
            "baseline",
            "--seeds",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("overall error"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn quiet_simulate_prints_nothing() {
    let path = temp_dir().join("cli_quiet_input.json");
    let ds = eta2_datasets::synthetic::SyntheticConfig {
        n_users: 10,
        n_tasks: 30,
        n_domains: 2,
        ..eta2_datasets::synthetic::SyntheticConfig::default()
    }
    .generate(0);
    eta2_datasets::io::save_dataset(&ds, &path).unwrap();

    let out = cli()
        .args([
            "simulate",
            "--dataset",
            path.to_str().unwrap(),
            "--approach",
            "baseline",
            "--seeds",
            "1",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.stdout.is_empty(),
        "quiet run was not quiet: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_flag_writes_jsonl_events() {
    let dir = temp_dir();
    let input = dir.join("cli_trace_input.json");
    let trace = dir.join("cli_trace_out.jsonl");
    let ds = eta2_datasets::synthetic::SyntheticConfig {
        n_users: 10,
        n_tasks: 30,
        n_domains: 2,
        ..eta2_datasets::synthetic::SyntheticConfig::default()
    }
    .generate(0);
    eta2_datasets::io::save_dataset(&ds, &input).unwrap();

    let out = cli()
        .args([
            "simulate",
            "--dataset",
            input.to_str().unwrap(),
            "--approach",
            "eta2",
            "--seeds",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&trace).unwrap();
    assert!(!body.is_empty(), "trace file is empty");
    for line in body.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap_or_else(|e| {
            panic!("unparseable trace line {line:?}: {e}");
        });
        assert!(v.get("seq").is_some(), "{line}");
        assert!(v.get("ts_ms").is_some(), "{line}");
        assert!(v.get("type").is_some(), "{line}");
    }
    for kind in ["mle_iteration", "alloc_pick", "sim_day", "run_summary"] {
        assert!(
            body.contains(&format!("\"type\":\"{kind}\"")),
            "no {kind} event in trace"
        );
    }
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn simulate_rejects_unknown_approach() {
    let out = cli()
        .args(["simulate", "--dataset", "synthetic", "--approach", "magic"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown approach"));
}
